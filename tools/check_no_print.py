#!/usr/bin/env python
"""Lint guard: no bare ``print(`` calls in library code.

Library output must go through ``repro.obs.logs`` (structured, contextual,
off by default) — a stray ``print`` in the pipeline pollutes stdout that
``segugio`` subcommands own.  The CLI module is the one legitimate printer.

AST-based on purpose: a grep would false-positive on ``print(`` inside
docstrings and comments (e.g. usage examples in ``repro/__init__.py``).

Usage: ``python tools/check_no_print.py [root]`` (default ``src/repro``).
Exits 1 listing every offending ``file:line``.
"""

from __future__ import annotations

import ast
import os
import sys

ALLOWED_FILES = frozenset({"cli.py"})


def find_prints(path: str) -> list:
    with open(path, "rb") as stream:
        source = stream.read()
    tree = ast.parse(source, filename=path)
    offenses = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            offenses.append(node.lineno)
    return offenses


def main(argv: list) -> int:
    root = argv[1] if len(argv) > 1 else os.path.join("src", "repro")
    if not os.path.isdir(root):
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    failed = False
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for name in sorted(filenames):
            if not name.endswith(".py") or name in ALLOWED_FILES:
                continue
            path = os.path.join(dirpath, name)
            for line in find_prints(path):
                print(
                    f"{path}:{line}: bare print() in library code — "
                    f"use repro.obs.logs.get_logger instead",
                    file=sys.stderr,
                )
                failed = True
    if failed:
        return 1
    print(f"check_no_print: OK ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

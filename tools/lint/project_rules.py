"""Phase 2 of the whole-program analyzer: interprocedural rules.

These rules run on the :class:`tools.lint.index.ProjectIndex` built by
phase 1 — never on raw source — so they see across file boundaries:

* **SEG101** — determinism taint: every RNG constructor's seed argument
  must flow (transitively, through helper calls and loop variables) from
  a parameter or config field whose name matches the seed allowlist, or
  from a constant.  Entropy sources (``os.urandom``, ``secrets.*``,
  ``uuid.uuid4``) as seeds are always findings.
* **SEG102** — pool-callable safety: every callable handed to
  ``supervised_map`` / ``ProcessPoolExecutor.submit`` must be a
  module-level function (picklable by construction) that neither writes
  ``global`` names nor mutates module-level state.
* **SEG103** — manifest contract: string keys written by the manifest
  producers (``repro.obs.run``, ``repro.obs.manifest``) are checked
  against keys read by the consumers (``repro.obs.manifest``,
  ``repro.eval.{profile,monitor,chaos}``, ``repro.cli``).  A key read
  but never produced is an error; a key produced but never read is a
  warning (unless allowlisted as archival).
* **SEG104** — span-name registry: every ``span("segugio_*")`` literal
  must be declared in :data:`repro.obs.spans.SPAN_NAMES`; registry
  entries with no call site are warnings.
* **SEG105** — worker-telemetry isolation: code transitively reachable
  from a pool-submitted callable must not call the ambient telemetry
  getters (``current_tracer`` and friends).  Inside a worker those
  resolve to whatever :mod:`repro.obs.workerctx` installed — or, on the
  in-process serial floor, to the *parent's* tracer — so direct ambient
  emission either dodges the sidecar merge or double-counts into the
  parent span tree.  Worker-side telemetry goes through the worker
  context API (the one module allowlisted here).

Each finding carries a ``trace`` — the hop-by-hop flow path — rendered
by ``python -m tools.lint --explain SEGxxx``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.lint.engine import Finding
from tools.lint.index import ProjectIndex
from tools.lint.rules import (
    DETERMINISM_EXEMPT_MODULES,
    DETERMINISM_EXEMPT_PREFIXES,
)

#: parameter/attribute names allowed to carry seed material
SEED_NAME_RE = re.compile(r"(^|_)(seed|seeds|random_state|entropy)($|_)")

#: canonical (alias-resolved) names that construct an RNG; the value is
#: the position/keyword their seed argument arrives at
RNG_CONSTRUCTORS = {
    "numpy.random.default_rng": ("seed",),
    "numpy.random.Generator": ("bit_generator",),
    "numpy.random.PCG64": ("seed",),
    "numpy.random.SeedSequence": ("entropy",),
    "random.Random": ("x",),
    "repro.utils.rng.RngFactory": ("seed",),
}

#: canonical names that read the OS entropy pool — never a valid seed
ENTROPY_SOURCES = ("os.urandom", "secrets.", "uuid.uuid4")

#: pure pass-through callables a seed may flow through unchanged
_SEED_TRANSPARENT_CALLS = frozenset({"int", "abs", "round", "hash", "str"})
#: iteration wrappers whose elements carry their arguments' taint
_SEED_TRANSPARENT_ITERS = frozenset({"enumerate", "zip", "sorted", "list", "tuple", "reversed", "range"})
#: method/function suffixes that *derive* seeds (SeedSequence.spawn, RngFactory.stream_seed)
_SEED_DERIVERS = frozenset({"spawn", "child"})

_TAINT_DEPTH_LIMIT = 12

#: (module, function) entry points that ship their first argument to a
#: worker process
POOL_ENTRYPOINTS = frozenset({("repro.runtime.supervisor", "supervised_map")})

#: SEG103 contract endpoints: module -> receiver names that *are* the
#: manifest in that module.  Producers contribute written keys,
#: consumers contribute read keys; a module may be both.
MANIFEST_PRODUCERS: Dict[str, Tuple[str, ...]] = {
    "repro.obs.run": ("manifest",),
    "repro.obs.manifest": ("payload",),
    "repro.datasets.edgestore": ("manifest",),
}
MANIFEST_CONSUMERS: Dict[str, Tuple[str, ...]] = {
    "repro.obs.manifest": ("payload", "manifest"),
    "repro.datasets.edgestore": ("manifest",),
    "repro.eval.profile": ("manifest",),
    "repro.eval.monitor": ("manifest", "self.manifest"),
    "repro.eval.chaos": ("manifest",),
    "repro.cli": ("manifest",),
}

#: produced keys that are deliberately write-only (archival record, not
#: a reader contract) — key -> documented reason
MANIFEST_ARCHIVAL_KEYS: Dict[str, str] = {
    "config": "full config archived verbatim for reproducibility; "
    "readers use config_sha256",
}

SPAN_REGISTRY_MODULE = "repro.obs.spans"
SPAN_REGISTRY_NAME = "SPAN_NAMES"

#: SEG105: the ambient telemetry getters — resolving one of these inside
#: a pool-callable's transitive closure is a finding
AMBIENT_GETTERS = frozenset(
    {
        ("repro.obs.tracing", "current_tracer"),
        ("repro.obs.events", "current_event_log"),
        ("repro.obs.resources", "current_monitor"),
        ("repro.obs.metrics", "get_registry"),
        ("repro.obs.provenance", "current_decision_log"),
    }
)

#: SEG105: modules allowed to touch the ambient getters from worker
#: context — the sanctioned bridge that installs the worker stack
WORKER_TELEMETRY_MODULES = frozenset({"repro.obs.workerctx"})


class _SnippetCache:
    """Lazy source-line lookup for finding snippets (findings are rare;
    summaries deliberately do not retain source text)."""

    def __init__(self) -> None:
        self._lines: Dict[str, List[str]] = {}

    def line(self, path: str, lineno: int) -> str:
        if path not in self._lines:
            try:
                with open(path, "r", encoding="utf-8", errors="replace") as stream:
                    self._lines[path] = stream.read().splitlines()
            except OSError:
                self._lines[path] = []
        lines = self._lines[path]
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


class ProjectRule:
    """Base class for whole-program rules (phase 2)."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self) -> None:
        self._snippets = _SnippetCache()

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        path: str,
        lineno: int,
        message: str,
        severity: str = "error",
        trace: Sequence[str] = (),
    ) -> Finding:
        return Finding(
            path=path,
            line=int(lineno),
            col=1,
            rule=self.rule_id,
            message=message,
            snippet=self._snippets.line(path, int(lineno)),
            severity=severity,
            trace=tuple(trace),
        )


def canonical_name(name: str, imports: Dict[str, str]) -> str:
    """Alias-resolve a dotted call name: ``np.random.default_rng`` with
    ``import numpy as np`` becomes ``numpy.random.default_rng``."""
    head, sep, rest = name.partition(".")
    target = imports.get(head)
    if target is None:
        return name
    return f"{target}.{rest}" if sep else target


def _determinism_scoped(module: str) -> bool:
    if module in DETERMINISM_EXEMPT_MODULES:
        return False
    return not any(
        module == p or module.startswith(p + ".")
        for p in DETERMINISM_EXEMPT_PREFIXES
    )


class _Taint:
    """Verdict of a seed-flow trace: seeded, violated, or unknown."""

    SEEDED = "seeded"
    VIOLATION = "violation"

    def __init__(self, verdict: str, reason: str = "") -> None:
        self.verdict = verdict
        self.reason = reason

    @property
    def ok(self) -> bool:
        return self.verdict == self.SEEDED


class DeterminismTaintRule(ProjectRule):
    """SEG101 — RNG seeds must flow from the seed allowlist."""

    rule_id = "SEG101"
    name = "determinism-taint"
    rationale = (
        "bit-identical reruns require every RNG to be constructed from "
        "checkpointed seed material; the seed argument must trace back "
        "to an allowlisted parameter, config field, or constant"
    )

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        for module, summary in sorted(index.modules.items()):
            if not _determinism_scoped(module):
                continue
            imports: Dict[str, str] = summary["imports"]  # type: ignore[assignment]
            functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
            for qualname, info in sorted(functions.items()):
                for call in info["calls"]:  # type: ignore[union-attr]
                    fn = canonical_name(str(call["fn"]), imports)
                    spec = RNG_CONSTRUCTORS.get(fn)
                    if spec is None:
                        continue
                    trace = [
                        f"{summary['path']}:{call['lineno']}: "
                        f"{call['fn']}(...) in {module}:{qualname}"
                    ]
                    seed = self._seed_arg(call, spec)
                    if seed is None:
                        verdict = _Taint(
                            _Taint.VIOLATION,
                            f"{call['fn']}() called without a seed argument "
                            "— draws OS entropy at construction",
                        )
                    else:
                        verdict = self._taint(
                            index, module, info, seed, trace, set(), 0
                        )
                    if verdict.ok:
                        continue
                    lineno = int(call["lineno"])
                    if index.is_suppressed(str(summary["path"]), lineno, self.rule_id):
                        continue
                    yield self.finding(
                        str(summary["path"]),
                        lineno,
                        f"seed for {call['fn']}() does not flow from the "
                        f"seed allowlist: {verdict.reason}",
                        trace=trace,
                    )

    @staticmethod
    def _seed_arg(call: Dict[str, object], spec: Tuple[str, ...]) -> Optional[Dict[str, object]]:
        args: List[Dict[str, object]] = call["args"]  # type: ignore[assignment]
        kw: Dict[str, Dict[str, object]] = call["kw"]  # type: ignore[assignment]
        if args:
            return args[0]
        for name in spec + ("seed", "random_state"):
            if name in kw:
                return kw[name]
        return None

    def _taint(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        expr: Dict[str, object],
        trace: List[str],
        visited: Set[Tuple[str, str, str]],
        depth: int,
    ) -> _Taint:
        if depth > _TAINT_DEPTH_LIMIT:
            return _Taint(_Taint.VIOLATION, "flow too deep to analyze")
        kind = expr.get("k")
        if kind == "const":
            if expr.get("v") is None:
                return _Taint(
                    _Taint.VIOLATION,
                    "explicit None seed draws OS entropy",
                )
            trace.append(f"  = constant {expr.get('v')!r} (seeded)")
            return _Taint(_Taint.SEEDED)
        if kind == "name":
            return self._taint_name(
                index, module, fn_info, str(expr["id"]), trace, visited, depth
            )
        if kind == "attr":
            chain = str(expr["dotted"])
            last = chain.rsplit(".", 1)[-1]
            if SEED_NAME_RE.search(last):
                trace.append(f"  = {chain} (allowlisted field name)")
                return _Taint(_Taint.SEEDED)
            return _Taint(
                _Taint.VIOLATION,
                f"attribute {chain!r} is not an allowlisted seed field",
            )
        if kind == "call":
            return self._taint_call(index, module, fn_info, expr, trace, visited, depth)
        if kind == "binop":
            left = self._taint(
                index, module, fn_info, expr["l"], trace, visited, depth + 1  # type: ignore[arg-type]
            )
            if not left.ok:
                return left
            return self._taint(
                index, module, fn_info, expr["r"], trace, visited, depth + 1  # type: ignore[arg-type]
            )
        if kind == "sub":
            trace.append("  = element of:")
            return self._taint(
                index, module, fn_info, expr["v"], trace, visited, depth + 1  # type: ignore[arg-type]
            )
        if kind == "unpack":
            return self._taint(
                index, module, fn_info, expr["v"], trace, visited, depth + 1  # type: ignore[arg-type]
            )
        if kind == "lambda":
            return _Taint(_Taint.VIOLATION, "seed computed by a lambda")
        return _Taint(_Taint.VIOLATION, "seed provenance is unanalyzable")

    def _taint_name(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        name: str,
        trace: List[str],
        visited: Set[Tuple[str, str, str]],
        depth: int,
    ) -> _Taint:
        qualname = str(fn_info["qualname"])
        key = (module, qualname, name)
        if key in visited:
            trace.append(f"  = {name} (cycle; assumed seeded)")
            return _Taint(_Taint.SEEDED)
        visited.add(key)
        assigns: Dict[str, Dict[str, object]] = fn_info["assigns"]  # type: ignore[assignment]
        for_iters: Dict[str, Dict[str, object]] = fn_info["for_iters"]  # type: ignore[assignment]
        params: List[str] = fn_info["params"]  # type: ignore[assignment]
        if name in assigns:
            trace.append(f"  = local {name} assigned in {qualname}:")
            return self._taint(
                index, module, fn_info, assigns[name], trace, visited, depth + 1
            )
        if name in for_iters:
            trace.append(f"  = loop variable {name} iterating over:")
            return self._taint(
                index, module, fn_info, for_iters[name], trace, visited, depth + 1
            )
        if name in params:
            if SEED_NAME_RE.search(name):
                trace.append(
                    f"  = parameter {name!r} of {qualname} (allowlisted name)"
                )
                return _Taint(_Taint.SEEDED)
            return self._taint_param(
                index, module, fn_info, name, trace, visited, depth
            )
        summary = index.modules.get(module)
        if summary is not None:
            module_assigns: Dict[str, Dict[str, object]] = summary["module_assigns"]  # type: ignore[assignment]
            if name in module_assigns:
                trace.append(f"  = module-level {name}:")
                module_fn = index.function(module, "<module>")
                return self._taint(
                    index,
                    module,
                    module_fn if module_fn is not None else fn_info,
                    module_assigns[name],
                    trace,
                    visited,
                    depth + 1,
                )
        if SEED_NAME_RE.search(name):
            trace.append(f"  = {name} (allowlisted name, provenance unknown)")
            return _Taint(_Taint.SEEDED)
        return _Taint(
            _Taint.VIOLATION,
            f"name {name!r} in {qualname} has no seed provenance",
        )

    def _taint_param(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        name: str,
        trace: List[str],
        visited: Set[Tuple[str, str, str]],
        depth: int,
    ) -> _Taint:
        """Trace a non-allowlisted parameter through every caller."""
        qualname = str(fn_info["qualname"])
        params: List[str] = fn_info["params"]  # type: ignore[assignment]
        position = params.index(name)
        if bool(fn_info.get("in_class")) and params and params[0] in ("self", "cls"):
            position -= 1  # callers do not pass self/cls explicitly
        callers = index.callers_of(module, qualname)
        if not callers:
            return _Taint(
                _Taint.VIOLATION,
                f"parameter {name!r} of {qualname} is not in the seed "
                "allowlist and has no analyzable caller",
            )
        for site in callers:
            call = site["call"]
            args: List[Dict[str, object]] = call["args"]  # type: ignore[index]
            kw: Dict[str, Dict[str, object]] = call["kw"]  # type: ignore[index]
            if name in kw:
                arg = kw[name]
            elif 0 <= position < len(args):
                arg = args[position]
            else:
                continue  # default value — defaults are module constants
            caller_fn = index.function(str(site["module"]), str(site["function"]))
            if caller_fn is None:
                continue
            trace.append(
                f"  <- passed as {name!r} from "
                f"{site['module']}:{site['function']} (line {call['lineno']}):"  # type: ignore[index]
            )
            verdict = self._taint(
                index,
                str(site["module"]),
                caller_fn,
                arg,
                trace,
                visited,
                depth + 1,
            )
            if not verdict.ok:
                return verdict
        trace.append(f"  (all callers of {qualname} pass seeded values)")
        return _Taint(_Taint.SEEDED)

    def _taint_call(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        expr: Dict[str, object],
        trace: List[str],
        visited: Set[Tuple[str, str, str]],
        depth: int,
    ) -> _Taint:
        summary = index.modules.get(module)
        imports: Dict[str, str] = summary["imports"] if summary else {}  # type: ignore[assignment]
        fn = str(expr.get("fn", "<dynamic>"))
        canon = canonical_name(fn, imports)
        args: List[Dict[str, object]] = expr.get("args", [])  # type: ignore[assignment]
        for source in ENTROPY_SOURCES:
            if canon == source or (source.endswith(".") and canon.startswith(source)):
                return _Taint(
                    _Taint.VIOLATION,
                    f"seed drawn from entropy source {canon}()",
                )
        last = fn.rsplit(".", 1)[-1]
        if fn in _SEED_TRANSPARENT_CALLS and args:
            trace.append(f"  = {fn}(...) of:")
            return self._taint(
                index, module, fn_info, args[0], trace, visited, depth + 1
            )
        if fn in _SEED_TRANSPARENT_ITERS:
            for arg in args:
                verdict = self._taint(
                    index, module, fn_info, arg, trace, visited, depth + 1
                )
                if not verdict.ok:
                    return verdict
            trace.append(f"  = elements of {fn}(...) (seeded)")
            return _Taint(_Taint.SEEDED)
        spec = RNG_CONSTRUCTORS.get(canon)
        if spec is not None:
            inner = args[0] if args else None
            kw: Dict[str, Dict[str, object]] = expr.get("kw", {})  # type: ignore[assignment]
            if inner is None:
                for key in spec + ("seed", "random_state"):
                    if key in kw:
                        inner = kw[key]
                        break
            if inner is None:
                return _Taint(
                    _Taint.VIOLATION,
                    f"nested {fn}() constructed without a seed",
                )
            trace.append(f"  = nested {fn}(...) seeded by:")
            return self._taint(
                index, module, fn_info, inner, trace, visited, depth + 1
            )
        if SEED_NAME_RE.search(last) or last in _SEED_DERIVERS:
            trace.append(f"  = {fn}(...) (seed-deriving helper)")
            return _Taint(_Taint.SEEDED)
        resolved = index.resolve_call(module, fn)
        if resolved is not None:
            target = index.function(*resolved)
            if target is not None:
                returns: List[Dict[str, object]] = target["returns"]  # type: ignore[assignment]
                if returns:
                    trace.append(
                        f"  = return value of {resolved[0]}:{resolved[1]}:"
                    )
                    for ret in returns:
                        verdict = self._taint(
                            index,
                            resolved[0],
                            target,
                            ret,
                            trace,
                            visited,
                            depth + 1,
                        )
                        if not verdict.ok:
                            return verdict
                    return _Taint(_Taint.SEEDED)
        return _Taint(
            _Taint.VIOLATION,
            f"seed produced by unanalyzable call {fn}()",
        )


def pool_submitted_callable(
    index: ProjectIndex,
    module: str,
    fn_info: Dict[str, object],
    fn: str,
    call: Dict[str, object],
) -> Optional[Dict[str, object]]:
    """The esum of the callable argument, if this call ships one to a
    worker process; ``None`` otherwise.  Shared by SEG102 and SEG105."""
    args: List[Dict[str, object]] = call["args"]  # type: ignore[assignment]
    if not args:
        return None
    resolved = index.resolve_call(module, fn)
    if resolved in POOL_ENTRYPOINTS:
        return args[0]
    head, _, method = fn.rpartition(".")
    if method == "submit" and head:
        receiver = head.split(".")[0]
        assigns: Dict[str, Dict[str, object]] = fn_info["assigns"]  # type: ignore[assignment]
        origin = assigns.get(receiver)
        if origin is not None and origin.get("k") == "call":
            origin_fn = str(origin.get("fn", ""))
            if origin_fn.rsplit(".", 1)[-1] == "ProcessPoolExecutor":
                return args[0]
        if receiver in ("pool", "executor"):
            return args[0]
    return None


class PoolCallableRule(ProjectRule):
    """SEG102 — callables crossing the process-pool boundary."""

    rule_id = "SEG102"
    name = "pool-callable-safety"
    rationale = (
        "the supervised pool pickles its callable into worker processes; "
        "lambdas, nested functions, and bound methods fail (or worse, "
        "silently fork state), and module-global mutation in a worker "
        "never propagates back"
    )

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        for module, summary in sorted(index.modules.items()):
            imports: Dict[str, str] = summary["imports"]  # type: ignore[assignment]
            functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
            for qualname, info in sorted(functions.items()):
                for call in info["calls"]:  # type: ignore[union-attr]
                    fn = str(call["fn"])
                    submitted = self._submitted_callable(
                        index, module, info, fn, call
                    )
                    if submitted is None:
                        continue
                    lineno = int(call["lineno"])
                    path = str(summary["path"])
                    trace = [
                        f"{path}:{lineno}: {fn}(...) in {module}:{qualname}"
                    ]
                    for problem in self._check_callable(
                        index, module, info, submitted, trace, set(), 0
                    ):
                        if index.is_suppressed(path, lineno, self.rule_id):
                            continue
                        yield self.finding(
                            path, lineno, problem, trace=trace
                        )

    def _submitted_callable(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        fn: str,
        call: Dict[str, object],
    ) -> Optional[Dict[str, object]]:
        return pool_submitted_callable(index, module, fn_info, fn, call)

    def _check_callable(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        expr: Dict[str, object],
        trace: List[str],
        visited: Set[Tuple[str, str, str]],
        depth: int,
    ) -> List[str]:
        if depth > _TAINT_DEPTH_LIMIT:
            return []
        kind = expr.get("k")
        if kind == "lambda":
            return [
                "lambda submitted to the process pool — lambdas are not "
                "picklable; define a module-level function"
            ]
        if kind == "attr":
            chain = str(expr["dotted"])
            if chain.startswith("self.") or chain.startswith("cls."):
                return [
                    f"bound method {chain} submitted to the process pool — "
                    "pickling drags the whole instance into every worker; "
                    "use a module-level function"
                ]
            # mod.fn via an import alias: resolve and inspect
            resolved = index.resolve_call(module, chain)
            if resolved is not None:
                return self._check_resolved(index, resolved, trace)
            return []
        if kind == "call":
            fn = str(expr.get("fn", ""))
            if fn.rsplit(".", 1)[-1] == "partial":
                args: List[Dict[str, object]] = expr.get("args", [])  # type: ignore[assignment]
                if args:
                    trace.append("  = functools.partial wrapping:")
                    return self._check_callable(
                        index, module, fn_info, args[0], trace, visited, depth + 1
                    )
            return []
        if kind != "name":
            return []
        name = str(expr["id"])
        qualname = str(fn_info["qualname"])
        key = (module, qualname, name)
        if key in visited:
            return []
        visited.add(key)
        assigns: Dict[str, Dict[str, object]] = fn_info["assigns"]  # type: ignore[assignment]
        params: List[str] = fn_info["params"]  # type: ignore[assignment]
        if name in assigns:
            trace.append(f"  = local {name} assigned in {qualname}:")
            return self._check_callable(
                index, module, fn_info, assigns[name], trace, visited, depth + 1
            )
        if name in params:
            problems: List[str] = []
            position = params.index(name)
            if bool(fn_info.get("in_class")) and params and params[0] in ("self", "cls"):
                position -= 1
            for site in index.callers_of(module, qualname):
                call = site["call"]
                cargs: List[Dict[str, object]] = call["args"]  # type: ignore[index]
                ckw: Dict[str, Dict[str, object]] = call["kw"]  # type: ignore[index]
                if name in ckw:
                    arg = ckw[name]
                elif 0 <= position < len(cargs):
                    arg = cargs[position]
                else:
                    continue
                caller_fn = index.function(
                    str(site["module"]), str(site["function"])
                )
                if caller_fn is None:
                    continue
                trace.append(
                    f"  <- passed as {name!r} from "
                    f"{site['module']}:{site['function']}:"
                )
                problems.extend(
                    self._check_callable(
                        index,
                        str(site["module"]),
                        caller_fn,
                        arg,
                        trace,
                        visited,
                        depth + 1,
                    )
                )
            return problems
        # a nested def shadows nothing the resolver sees: look for it under
        # the enclosing function's qualname first
        summary = index.modules.get(module)
        if summary is not None:
            nested_qualname = f"{qualname}.{name}"
            functions: Dict[str, object] = summary["functions"]  # type: ignore[assignment]
            if nested_qualname in functions:
                trace.append(f"  = {module}:{nested_qualname}")
                return self._check_resolved(
                    index, (module, nested_qualname), trace
                )
        resolved = index.resolve_call(module, name)
        if resolved is not None:
            trace.append(f"  = {resolved[0]}:{resolved[1]}")
            return self._check_resolved(index, resolved, trace)
        return []

    def _check_resolved(
        self,
        index: ProjectIndex,
        resolved: Tuple[str, str],
        trace: List[str],
    ) -> List[str]:
        target = index.function(*resolved)
        if target is None:
            return []
        problems: List[str] = []
        label = f"{resolved[0]}:{resolved[1]}"
        if bool(target.get("nested")):
            problems.append(
                f"pool callable {label} is a nested function — not "
                "picklable; hoist it to module level"
            )
        if bool(target.get("in_class")):
            problems.append(
                f"pool callable {label} is defined inside a class — "
                "submit a module-level function instead"
            )
        global_writes: List[str] = target.get("global_writes", [])  # type: ignore[assignment]
        for name in global_writes:
            problems.append(
                f"pool callable {label} declares `global {name}` — "
                "worker-side writes to module globals never propagate "
                "back to the parent process"
            )
        mutations: List[Dict[str, object]] = target.get("mutations", [])  # type: ignore[assignment]
        for mutation in mutations:
            problems.append(
                f"pool callable {label} mutates module-level "
                f"{mutation['name']!r} ({mutation['how']}, line "
                f"{mutation['lineno']}) — worker-side state diverges "
                "silently from the parent"
            )
        if problems:
            trace.append(f"  ! {label} fails picklable-by-construction checks")
        return problems


class ManifestContractRule(ProjectRule):
    """SEG103 — manifest keys: every read produced, every write read."""

    rule_id = "SEG103"
    name = "manifest-contract"
    rationale = (
        "the manifest is the only interface between a run and its "
        "consumers (profile/monitor/chaos/cli); a key read but never "
        "produced renders 'n/a' forever, a key produced but never read "
        "is dead weight in every run artifact"
    )

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        produced: Dict[str, Tuple[str, int]] = {}
        for module, receivers in MANIFEST_PRODUCERS.items():
            summary = index.modules.get(module)
            if summary is None:
                continue
            path = str(summary["path"])
            for entry in summary["dict_literals"]:  # type: ignore[union-attr]
                if entry["recv"] in receivers:
                    produced.setdefault(
                        str(entry["key"]), (path, int(entry["lineno"]))
                    )
            for entry in summary["key_writes"]:  # type: ignore[union-attr]
                if entry["recv"] in receivers:
                    produced.setdefault(
                        str(entry["key"]), (path, int(entry["lineno"]))
                    )
        consumed: Dict[str, Tuple[str, int]] = {}
        for module, receivers in MANIFEST_CONSUMERS.items():
            summary = index.modules.get(module)
            if summary is None:
                continue
            path = str(summary["path"])
            for entry in summary["key_reads"]:  # type: ignore[union-attr]
                if entry["recv"] in receivers:
                    consumed.setdefault(
                        str(entry["key"]), (path, int(entry["lineno"]))
                    )
        if not produced:
            return  # producers absent (partial checkout) — nothing to check
        for key in sorted(consumed):
            if key in produced:
                continue
            path, lineno = consumed[key]
            if index.is_suppressed(path, lineno, self.rule_id):
                continue
            yield self.finding(
                path,
                lineno,
                f"manifest key {key!r} is read here but never produced by "
                f"{' or '.join(sorted(MANIFEST_PRODUCERS))} — consumers "
                "will see 'n/a' on every run",
                trace=(
                    f"read at {path}:{lineno}",
                    f"produced keys: {', '.join(sorted(produced))}",
                ),
            )
        for key in sorted(produced):
            if key in consumed:
                continue
            if key in MANIFEST_ARCHIVAL_KEYS:
                continue
            path, lineno = produced[key]
            if index.is_suppressed(path, lineno, self.rule_id):
                continue
            yield self.finding(
                path,
                lineno,
                f"manifest key {key!r} is produced here but no consumer "
                "reads it — wire it into a reader or add it to the "
                "archival allowlist with a reason",
                severity="warning",
                trace=(
                    f"written at {path}:{lineno}",
                    f"consumed keys: {', '.join(sorted(consumed))}",
                ),
            )


class SpanRegistryRule(ProjectRule):
    """SEG104 — every span literal must appear in the central registry."""

    rule_id = "SEG104"
    name = "span-registry"
    rationale = (
        "the manifest and dashboards key on span names; one central "
        "registry (repro.obs.spans.SPAN_NAMES) makes renames reviewable "
        "diffs instead of silent telemetry forks"
    )

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        registry = index.modules.get(SPAN_REGISTRY_MODULE)
        sites = index.span_sites()
        if registry is None:
            if sites:
                path, _, lineno = sites[0]
                yield self.finding(
                    path,
                    lineno,
                    f"span registry module {SPAN_REGISTRY_MODULE} is missing "
                    f"— declare {SPAN_REGISTRY_NAME} there and register "
                    "every segugio_* span name",
                )
            return
        names = self._registry_names(registry)
        registry_path = str(registry["path"])
        if names is None:
            yield self.finding(
                registry_path,
                1,
                f"{SPAN_REGISTRY_MODULE}.{SPAN_REGISTRY_NAME} must be a "
                "frozenset/set/tuple of string literals",
            )
            return
        used: Set[str] = set()
        for path, name, lineno in sites:
            if path == registry_path:
                continue
            used.add(name)
            if name in names:
                continue
            if index.is_suppressed(path, lineno, self.rule_id):
                continue
            yield self.finding(
                path,
                lineno,
                f"span name {name!r} is not declared in "
                f"{SPAN_REGISTRY_MODULE}.{SPAN_REGISTRY_NAME} — register it "
                "in the same change that adds the call site",
                trace=(
                    f"span literal at {path}:{lineno}",
                    f"registry: {registry_path}",
                ),
            )
        for name in sorted(names - used):
            lineno = self._registry_line(registry_path, name)
            if index.is_suppressed(registry_path, lineno, self.rule_id):
                continue
            yield self.finding(
                registry_path,
                lineno,
                f"registered span name {name!r} has no call site — remove "
                "it from the registry or restore the span",
                severity="warning",
                trace=(f"declared in {registry_path}",),
            )

    @staticmethod
    def _registry_names(summary: Dict[str, object]) -> Optional[Set[str]]:
        assigns: Dict[str, Dict[str, object]] = summary["module_assigns"]  # type: ignore[assignment]
        esum = assigns.get(SPAN_REGISTRY_NAME)
        if esum is None:
            return None
        if esum.get("k") == "strs":
            return set(esum["v"])  # type: ignore[arg-type]
        if esum.get("k") == "call" and esum.get("fn") in ("frozenset", "set", "tuple"):
            args: List[Dict[str, object]] = esum.get("args", [])  # type: ignore[assignment]
            if args and args[0].get("k") == "strs":
                return set(args[0]["v"])  # type: ignore[arg-type]
        return None

    def _registry_line(self, path: str, name: str) -> int:
        """Line of the registry entry (for precise warnings)."""
        lineno = 1
        needle = f'"{name}"'
        try:
            with open(path, "r", encoding="utf-8") as stream:
                for i, text in enumerate(stream, start=1):
                    if needle in text:
                        return i
        except OSError:
            pass
        return lineno


class WorkerTelemetryRule(ProjectRule):
    """SEG105 — no ambient telemetry getters inside pool-callable code."""

    rule_id = "SEG105"
    name = "worker-telemetry-isolation"
    rationale = (
        "pool-callable code runs both in forked workers (where the "
        "ambient getters resolve to the stack repro.obs.workerctx "
        "installed) and on the in-process serial floor (where they "
        "resolve to the parent's tracer); emitting through them directly "
        "either dodges the sidecar merge or double-counts into the "
        "parent span tree — worker telemetry must flow through the "
        "worker context API"
    )

    def run(self, index: ProjectIndex) -> Iterator[Finding]:
        reported: Set[Tuple[str, int, str]] = set()
        for module, summary in sorted(index.modules.items()):
            functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
            for qualname, info in sorted(functions.items()):
                for call in info["calls"]:  # type: ignore[union-attr]
                    fn = str(call["fn"])
                    submitted = pool_submitted_callable(
                        index, module, info, fn, call
                    )
                    if submitted is None:
                        continue
                    submit_site = (
                        f"{summary['path']}:{call['lineno']}: "
                        f"{fn}(...) in {module}:{qualname}"
                    )
                    for root in self._roots(index, module, info, submitted):
                        yield from self._walk(
                            index, root, submit_site, reported
                        )

    def _roots(
        self,
        index: ProjectIndex,
        module: str,
        fn_info: Dict[str, object],
        expr: Dict[str, object],
    ) -> List[Tuple[str, str]]:
        """Resolve the submitted-callable esum to closure entry points."""
        kind = expr.get("k")
        if kind == "name":
            name = str(expr["id"])
            summary = index.modules.get(module)
            if summary is not None:
                nested = f"{fn_info['qualname']}.{name}"
                if nested in summary["functions"]:  # type: ignore[operator]
                    return [(module, nested)]
            resolved = index.resolve_call(module, name)
            return [resolved] if resolved is not None else []
        if kind == "attr":
            resolved = index.resolve_call(module, str(expr["dotted"]))
            return [resolved] if resolved is not None else []
        if kind == "call":
            fn = str(expr.get("fn", ""))
            if fn.rsplit(".", 1)[-1] == "partial":
                args: List[Dict[str, object]] = expr.get("args", [])  # type: ignore[assignment]
                if args:
                    return self._roots(index, module, fn_info, args[0])
        return []

    def _walk(
        self,
        index: ProjectIndex,
        root: Tuple[str, str],
        submit_site: str,
        reported: Set[Tuple[str, int, str]],
    ) -> Iterator[Finding]:
        """BFS the resolved call graph from *root*, flagging getters."""
        if root[0] in WORKER_TELEMETRY_MODULES:
            return
        seen: Set[Tuple[str, str]] = {root}
        # each queue entry carries the hop chain that reached it
        queue: List[Tuple[Tuple[str, str], List[str]]] = [
            (root, [f"  -> pool callable {root[0]}:{root[1]}"])
        ]
        while queue:
            (module, qualname), chain = queue.pop(0)
            info = index.function(module, qualname)
            if info is None:
                continue
            summary = index.modules.get(module)
            path = str(summary["path"]) if summary is not None else ""
            for call in info["calls"]:  # type: ignore[union-attr]
                resolved = index.resolve_call(module, str(call["fn"]))
                if resolved is None:
                    continue
                lineno = int(call["lineno"])
                if resolved in AMBIENT_GETTERS:
                    key = (path, lineno, f"{resolved[0]}:{resolved[1]}")
                    if key in reported:
                        continue
                    reported.add(key)
                    if index.is_suppressed(path, lineno, self.rule_id):
                        continue
                    yield self.finding(
                        path,
                        lineno,
                        f"{call['fn']}() called inside pool-callable code "
                        f"({module}:{qualname}, reachable from the process-"
                        "pool boundary) — worker telemetry must go through "
                        "the worker context API (repro.obs.workerctx), "
                        "never the ambient getters",
                        trace=[submit_site]
                        + chain
                        + [f"  ! {module}:{qualname} line {lineno} calls "
                           f"{resolved[0]}:{resolved[1]}"],
                    )
                    continue
                if (
                    resolved not in seen
                    and resolved[0] not in WORKER_TELEMETRY_MODULES
                ):
                    seen.add(resolved)
                    queue.append(
                        (
                            resolved,
                            chain
                            + [f"  -> {resolved[0]}:{resolved[1]} "
                               f"(line {lineno})"],
                        )
                    )


def build_project_rules() -> Tuple[ProjectRule, ...]:
    return (
        DeterminismTaintRule(),
        PoolCallableRule(),
        ManifestContractRule(),
        SpanRegistryRule(),
        WorkerTelemetryRule(),
    )


PROJECT_RULE_IDS = tuple(r.rule_id for r in build_project_rules())


def run_project_rules(
    index: ProjectIndex,
    select: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run all (or ``select``-ed) phase-2 rules over the index."""
    findings: List[Finding] = []
    for rule in build_project_rules():
        if select is not None and rule.rule_id not in select:
            continue
        findings.extend(rule.run(index))
    findings.sort(key=Finding.sort_key)
    return findings

"""segugio-lint rule engine.

A single pass over every Python file under a target tree:

1. the file is read and parsed **once** into an AST;
2. every AST node is dispatched to each rule that registered interest in
   that node type (``Rule.node_types``), with the ancestor stack available
   on the :class:`ModuleContext` for structural rules;
3. every raw source line is dispatched to rules that opted into the line
   channel (``Rule.wants_lines``) — for invariants that live outside the
   AST (whitespace, encoding cruft);
4. findings on a line carrying ``# seg: ignore[SEGxxx]`` (or a blanket
   ``# seg: ignore``) are dropped before reporting.

Rules are plain classes; the engine owns traversal so each rule stays a
few lines of "what is wrong", not "how to walk". Parse failures are
reported as rule ``SEG000`` findings rather than crashing the run, so one
broken file cannot hide findings in the rest of the tree.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

PARSE_ERROR_RULE = "SEG000"

_SUPPRESS_RE = re.compile(
    r"#\s*seg:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


class LintConfigError(Exception):
    """Bad engine configuration or an unreadable baseline file."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line:col``.

    ``severity`` is ``"error"`` (fails the run) or ``"warning"``
    (reported, annotated in CI, but exit-code neutral — used by the
    contract rules for "produced but never consumed" findings).
    ``trace`` is the interprocedural flow path behind a whole-program
    finding, one hop per line, rendered by ``--explain``.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str
    severity: str = "error"
    trace: Tuple[str, ...] = ()

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["trace"] = list(self.trace)
        return payload


class ModuleContext:
    """Everything a rule may ask about the file being linted."""

    def __init__(self, path: str, module: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        #: ancestor nodes of the node currently being dispatched (outermost
        #: first, excluding the node itself); maintained by the engine walk.
        self.stack: List[ast.AST] = []

    @property
    def package(self) -> str:
        """Top-two dotted segments (``repro.core``) — the layering unit."""
        parts = self.module.split(".")
        return ".".join(parts[:2])

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self) -> Optional[ast.AST]:
        return self.stack[-1] if self.stack else None

    def enclosing(self, *types: type) -> Optional[ast.AST]:
        """Innermost ancestor that is an instance of ``types``, if any."""
        for node in reversed(self.stack):
            if isinstance(node, types):
                return node
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``name``/``rationale`` and implement any of
    the three visitor channels. The engine instantiates one rule object per
    run and reuses it across files (``start_module`` resets per-file state).
    """

    rule_id: str = ""
    name: str = ""
    #: one-line statement of which runtime/paper guarantee the rule protects
    rationale: str = ""
    #: AST node classes this rule wants dispatched to :meth:`check_node`
    node_types: Tuple[Type[ast.AST], ...] = ()
    #: opt into the raw-line channel (:meth:`check_line`)
    wants_lines: bool = False

    def start_module(self, ctx: ModuleContext) -> None:
        """Reset per-file state before a new file is walked."""

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_line(self, lineno: int, text: str, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def finish_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Emit findings that need the whole file to have been seen."""
        return iter(())

    def finding(
        self,
        ctx: ModuleContext,
        where: object,
        message: str,
    ) -> Finding:
        """Build a finding anchored at an AST node or an ``(line, col)`` pair."""
        if isinstance(where, ast.AST):
            line = getattr(where, "lineno", 1)
            col = getattr(where, "col_offset", 0) + 1
        else:
            line, col = where  # type: ignore[misc]
        return Finding(
            path=ctx.path,
            line=int(line),
            col=int(col),
            rule=self.rule_id,
            message=message,
            snippet=ctx.snippet(int(line)),
        )


def module_name_for(path: str, package_root: str) -> str:
    """Dotted module name of ``path`` relative to ``package_root``.

    ``src/repro/core/graph.py`` under root ``src`` → ``repro.core.graph``;
    package ``__init__.py`` files map to the package name itself. Returns
    ``""`` when the file does not live under the root.
    """
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(package_root))
    if rel.startswith(".."):
        return ""
    parts = rel.replace(os.sep, "/").split("/")
    if not parts or not parts[-1].endswith(".py"):
        return ""
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def suppressed_rules(lines: Sequence[str]) -> Dict[int, Optional[frozenset]]:
    """Map 1-based line number → suppressed rule ids (``None`` = all rules).

    Recognizes ``# seg: ignore`` (blanket) and ``# seg: ignore[SEG001]`` /
    ``# seg: ignore[SEG001, SEG005]`` (targeted) trailing comments.
    """
    table: Dict[int, Optional[frozenset]] = {}
    for idx, text in enumerate(lines, start=1):
        if "seg:" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        raw = match.group("rules")
        if raw is None:
            table[idx] = None
        else:
            ids = frozenset(part.strip().upper() for part in raw.split(",") if part.strip())
            table[idx] = ids if ids else None
    return table


def statement_extents(tree: ast.AST) -> List[Tuple[int, int]]:
    """``(first_line, last_line)`` of every statement, innermost-friendly.

    Sorted by (start, -end) so a linear scan finds the *innermost*
    statement containing a line last.  Used to honor ``# seg: ignore``
    comments on any physical line of a multi-line statement — a finding
    anchors at the statement's first line, but black-style call wrapping
    puts the trailing comment on the closing-paren line.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt) or not hasattr(node, "lineno"):
            continue
        end = node.end_lineno or node.lineno
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # compound statement (def/if/for/with/...): only its *header*
            # lines count as one logical statement — a comment inside the
            # body must not suppress a finding on the header
            end = max(node.lineno, body[0].lineno - 1)
        extents.append((node.lineno, end))
    extents.sort(key=lambda pair: (pair[0], -pair[1]))
    return extents


def innermost_extent(
    extents: Sequence[Tuple[int, int]], line: int
) -> Tuple[int, int]:
    """Smallest statement span containing *line* (falls back to the line)."""
    best = (line, line)
    best_size = None
    for start, end in extents:
        if start > line:
            break
        if start <= line <= end:
            size = end - start
            if best_size is None or size <= best_size:
                best = (start, end)
                best_size = size
    return best


def is_suppressed(
    table: Dict[int, Optional[frozenset]],
    extents: Sequence[Tuple[int, int]],
    line: int,
    rule: str,
) -> bool:
    """True when *rule* is ignored on *line* or any continuation line of
    the innermost statement containing it."""
    if not table:
        return False
    start, end = innermost_extent(extents, line)
    for candidate in range(start, end + 1):
        ids = table.get(candidate, "absent")
        if ids == "absent":
            continue
        if ids is None or rule in ids:
            return True
    return False


class Engine:
    """Walks a tree of Python files once, dispatching to pluggable rules."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        seen: Dict[str, Rule] = {}
        for rule in rules:
            if not rule.rule_id:
                raise LintConfigError(f"rule {type(rule).__name__} has no rule_id")
            if rule.rule_id in seen:
                raise LintConfigError(f"duplicate rule id {rule.rule_id}")
            seen[rule.rule_id] = rule
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._node_rules: List[Tuple[Tuple[Type[ast.AST], ...], Rule]] = [
            (rule.node_types, rule) for rule in self.rules if rule.node_types
        ]
        self._line_rules: Tuple[Rule, ...] = tuple(
            rule for rule in self.rules if rule.wants_lines
        )

    # ------------------------------------------------------------------ #

    def lint_source(self, source: str, path: str, module: str = "") -> List[Finding]:
        """Lint one in-memory module; ``path`` is used verbatim in findings."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            col = (error.offset or 1)
            lines = source.splitlines()
            snippet = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
            return [
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule=PARSE_ERROR_RULE,
                    message=f"file does not parse: {error.msg}",
                    snippet=snippet,
                )
            ]
        ctx = ModuleContext(path=path, module=module, source=source, tree=tree)
        findings: List[Finding] = []
        for rule in self.rules:
            rule.start_module(ctx)
        self._walk(tree, ctx, findings)
        for lineno, text in enumerate(ctx.lines, start=1):
            for rule in self._line_rules:
                findings.extend(rule.check_line(lineno, text, ctx))
        for rule in self.rules:
            findings.extend(rule.finish_module(ctx))
        findings = self._apply_suppressions(ctx, findings)
        findings.sort(key=Finding.sort_key)
        return findings

    def lint_file(self, path: str, package_root: str, report_path: str) -> List[Finding]:
        with open(path, "r", encoding="utf-8") as stream:
            source = stream.read()
        module = module_name_for(path, package_root)
        return self.lint_source(source, path=report_path, module=module)

    def lint_tree(
        self, root: str, package_root: Optional[str] = None, relative_to: Optional[str] = None
    ) -> Tuple[List[Finding], int]:
        """Lint every ``*.py`` under ``root``; returns (findings, files seen).

        ``package_root`` anchors dotted module names (defaults to ``root``);
        ``relative_to`` anchors the paths used in findings (defaults to the
        current directory), so baselines stay stable across machines.
        """
        package_root = package_root or root
        relative_to = relative_to or os.getcwd()
        findings: List[Finding] = []
        count = 0
        for dirpath, dirnames, filenames in os.walk(root):
            # prune in place (so the walk never descends) and sort for a
            # deterministic traversal order
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                report_path = os.path.relpath(path, relative_to).replace(os.sep, "/")
                findings.extend(self.lint_file(path, package_root, report_path))
                count += 1
        findings.sort(key=Finding.sort_key)
        return findings, count

    # ------------------------------------------------------------------ #

    def _walk(self, node: ast.AST, ctx: ModuleContext, findings: List[Finding]) -> None:
        for child in ast.iter_child_nodes(node):
            for node_types, rule in self._node_rules:
                if isinstance(child, node_types):
                    findings.extend(rule.check_node(child, ctx))
            ctx.stack.append(child)
            self._walk(child, ctx, findings)
            ctx.stack.pop()

    @staticmethod
    def _apply_suppressions(ctx: ModuleContext, findings: Iterable[Finding]) -> List[Finding]:
        table = suppressed_rules(ctx.lines)
        if not table:
            return list(findings)
        extents = statement_extents(ctx.tree)
        return [
            finding
            for finding in findings
            if not is_suppressed(table, extents, finding.line, finding.rule)
        ]

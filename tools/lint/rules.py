"""The segugio-lint rule set (SEG001–SEG012).

Each rule protects a guarantee the runtime or the paper reproduction
relies on; the ``rationale`` string is surfaced by ``--list-rules`` and
documented in DESIGN.md §9. Scope notes:

* ``repro.obs`` is the ambient telemetry layer — it is *allowed* to read
  wall-clock time (it stamps logs and run ids) and is exempt from the
  telemetry-name rule because it forwards caller-supplied names.
* ``repro.runtime.retry`` owns backoff, the one sanctioned source of
  wall-clock sleep/jitter in the pipeline.
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Iterator, List, Optional, Set, Tuple

from tools.lint.engine import Finding, ModuleContext, Rule

#: modules whose job is wall-clock / entropy handling (SEG002 exempt)
DETERMINISM_EXEMPT_PREFIXES = ("repro.obs",)
DETERMINISM_EXEMPT_MODULES = frozenset({"repro.runtime.retry"})

#: the one module allowed to print: the CLI owns stdout
PRINT_ALLOWED_MODULES = frozenset({"repro.cli"})

#: packages that must never import presentation / evaluation layers
LAYERED_PACKAGES = frozenset({"repro.core", "repro.ml", "repro.dns"})
FORBIDDEN_FOR_LAYERED = ("repro.cli", "repro.eval", "repro.obs.run")

#: packages whose public functions must be fully annotated
ANNOTATED_PACKAGES = frozenset(
    {"repro.core", "repro.ml", "repro.runtime", "repro.dns", "repro.intel"}
)

#: the one module allowed to call process-kill primitives (SEG011): the
#: fault-injection layer kills workers *on purpose*; anywhere else a kill
#: is an unsupervised crash the degradation ladder cannot absorb
FAULT_PRIMITIVE_ALLOWED_MODULES = frozenset({"repro.runtime.faults"})

_FAULT_PRIMITIVE_CALLS = frozenset(
    {
        "os._exit",
        "os.kill",
        "os.killpg",
        "os.abort",
        "signal.raise_signal",
        "signal.pthread_kill",
    }
)

#: the one module allowed raw resource-accounting reads (SEG012): the
#: resource monitor normalizes platform quirks (ru_maxrss units, missing
#: /proc) once; a second reader would re-learn them wrong
RESOURCE_READ_ALLOWED_MODULES = frozenset({"repro.obs.resources"})

_RESOURCE_READ_CALLS = frozenset(
    {
        "resource.getrusage",
        "os.times",
        "tracemalloc.start",
        "tracemalloc.stop",
        "tracemalloc.get_traced_memory",
        "tracemalloc.take_snapshot",
        "tracemalloc.reset_peak",
        "tracemalloc.is_tracing",
    }
)

#: names whose bare ``from``-import smuggles a resource primitive past
#: the SEG012 dotted-call check, keyed by source module
_RESOURCE_SMUGGLED_NAMES = {
    "resource": frozenset({"getrusage"}),
    "os": frozenset({"times"}),
    "tracemalloc": frozenset(
        {
            "start",
            "stop",
            "get_traced_memory",
            "take_snapshot",
            "reset_peak",
            "is_tracing",
        }
    ),
}

#: the one repro.eval module allowed raw perf_counter reads (SEG010): the
#: benchmark harness measures best-of-N wall time *as its output*, and
#: routing it through a Stopwatch would add per-lap span bookkeeping to
#: the very path being measured
PERF_TIMING_EXEMPT_MODULES = frozenset({"repro.eval.bench"})

_PERF_TIMING_CALLS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

TELEMETRY_NAME_RE = re.compile(r"^segugio_[a-z0-9]+_[a-z0-9_]+$")

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random attributes that are deterministic constructors, not draws
#: from the hidden global-state RNG
_NP_RANDOM_OK = frozenset(
    {"default_rng", "Generator", "BitGenerator", "PCG64", "PCG64DXSM", "SeedSequence", "Philox", "MT19937"}
)

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class NoPrintRule(Rule):
    """SEG001 — bare ``print()`` in library code.

    Absorbs ``tools/check_no_print.py``: library output must go through
    ``repro.obs.logs`` so ``segugio`` subcommands own their stdout.
    """

    rule_id = "SEG001"
    name = "no-print"
    rationale = (
        "library output must flow through repro.obs.logs; a stray print "
        "pollutes the stdout that segugio subcommands own"
    )
    node_types = (ast.Call,)

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and ctx.module not in PRINT_ALLOWED_MODULES
        ):
            yield self.finding(
                ctx,
                node,
                "bare print() in library code — use repro.obs.logs.get_logger instead",
            )


class DeterminismRule(Rule):
    """SEG002 — wall-clock reads and unseeded randomness.

    Detection results must be bit-identical run-to-run (checkpoint resume
    is verified byte-for-byte); any ambient entropy breaks that. Only
    ``repro.obs`` (timestamps) and ``repro.runtime.retry`` (backoff
    jitter/sleep) may touch the clock.
    """

    rule_id = "SEG002"
    name = "determinism"
    rationale = (
        "bit-identical reruns (checkpoint resume, run manifests) forbid "
        "wall-clock reads and unseeded RNGs outside repro.obs and "
        "repro.runtime.retry"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def _exempt(self, ctx: ModuleContext) -> bool:
        if ctx.module in DETERMINISM_EXEMPT_MODULES:
            return True
        return any(
            ctx.module == p or ctx.module.startswith(p + ".")
            for p in DETERMINISM_EXEMPT_PREFIXES
        )

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if self._exempt(ctx):
            return
        if isinstance(node, ast.ImportFrom):
            yield from self._check_import(node, ctx)
            return
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _WALLCLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"wall-clock read {name}() breaks run-to-run reproducibility — "
                "take timestamps via repro.obs or thread them in as data",
            )
        elif name.startswith("random.") and name.count(".") == 1:
            yield self.finding(
                ctx,
                node,
                f"{name}() draws from the unseeded process-global RNG — "
                "use utils.rng.RngFactory / a seeded np.random.default_rng",
            )
        elif name in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed is entropy-seeded — "
                    "pass an explicit seed (utils.rng.RngFactory derives them)",
                )
        elif name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's hidden global RNG state — "
                    "draw from an explicitly seeded Generator instead",
                )

    def _check_import(self, node: ast.ImportFrom, ctx: ModuleContext) -> Iterator[Finding]:
        if node.module == "random" and node.level == 0:
            yield self.finding(
                ctx,
                node,
                "importing from the stdlib random module pulls in the "
                "process-global RNG — use a seeded generator",
            )
        elif node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in ("time", "time_ns"):
                    yield self.finding(
                        ctx,
                        node,
                        "from time import time smuggles a wall-clock read past "
                        "the determinism guard — import the module and go "
                        "through repro.obs",
                    )


class LayeringRule(Rule):
    """SEG003 — import layering between pipeline layers.

    ``repro.core`` / ``repro.ml`` / ``repro.dns`` are the algorithmic
    layers; importing the CLI, the evaluation harness, or the per-run
    telemetry bundle from them inverts the dependency direction and drags
    presentation concerns into checkpointed state. ``repro.obs`` must stay
    ambient and zero-dep: it may import nothing from ``repro.*`` outside
    itself, or instrumented code could recurse into its own telemetry.
    """

    rule_id = "SEG003"
    name = "layering"
    rationale = (
        "core/ml/dns must not depend on cli/eval/obs.run; repro.obs must "
        "import nothing from repro.* so instrumentation stays ambient"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def _imported_modules(self, node: ast.AST, ctx: ModuleContext) -> List[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        assert isinstance(node, ast.ImportFrom)
        base = node.module or ""
        if node.level:  # resolve "from .x import y" against the current package
            parts = ctx.module.split(".")
            # level 1 = current package for __init__-style modules; for plain
            # modules the last component is the module itself.
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        # `from repro.obs import run` imports repro.obs.run — include both the
        # base and each base.name candidate so submodule imports are caught.
        names = [base] if base else []
        for alias in node.names:
            if base and alias.name != "*":
                names.append(f"{base}.{alias.name}")
        return names

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        imported = self._imported_modules(node, ctx)
        if ctx.package in LAYERED_PACKAGES:
            for target in imported:
                for forbidden in FORBIDDEN_FOR_LAYERED:
                    if target == forbidden or target.startswith(forbidden + "."):
                        yield self.finding(
                            ctx,
                            node,
                            f"{ctx.package} must not import {forbidden} "
                            "(layering: algorithmic layers stay free of "
                            "presentation/evaluation/run-bundle code)",
                        )
                        break
        if ctx.module == "repro.obs" or ctx.module.startswith("repro.obs."):
            for target in imported:
                if target == "repro" or (
                    target.startswith("repro.") and not target.startswith("repro.obs")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"repro.obs must not import {target} — the telemetry "
                        "layer stays zero-dep and ambient",
                    )
                    break


class ExceptionHygieneRule(Rule):
    """SEG004 — bare ``except:`` and silent broad swallows.

    Blacklist-quality work (Zhao et al.) shows silent data-handling bugs
    corrupting ground truth; a swallowed exception in a feed loader is
    exactly that failure mode. Broad handlers must either re-raise or
    leave a structured-log trace.
    """

    rule_id = "SEG004"
    name = "exception-hygiene"
    rationale = (
        "silent swallows corrupt ground truth; broad handlers must "
        "re-raise or log through repro.obs.logs"
    )
    node_types = (ast.ExceptHandler,)

    _LOG_METHODS = frozenset({"debug", "info", "warning", "error", "exception", "critical"})

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except: catches SystemExit/KeyboardInterrupt too — "
                "name the exception types (or BaseException + re-raise)",
            )
            return
        caught = dotted_name(node.type)
        if caught in ("Exception", "BaseException") and self._swallows(node):
            yield self.finding(
                ctx,
                node,
                f"except {caught}: swallows the error without logging — "
                "narrow the type, re-raise, or log via repro.obs.logs",
            )

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(stmt, ast.Raise):
                return False
            if isinstance(stmt, ast.Call):
                func = stmt.func
                if isinstance(func, ast.Attribute) and func.attr in self._LOG_METHODS:
                    return False
        return True


class MutableDefaultRule(Rule):
    """SEG005 — mutable default arguments.

    A mutable default is shared across calls: accumulated state leaks
    between runs and silently breaks reproducibility of results built
    through repeated calls (exactly the tracker/ledger access pattern).
    """

    rule_id = "SEG005"
    name = "mutable-default"
    rationale = (
        "mutable defaults share state across calls, leaking data between "
        "runs and corrupting repeated-call results"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        args = node.args  # type: ignore[union-attr]
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            reason = self._mutable(default)
            if reason:
                yield self.finding(
                    ctx,
                    default,
                    f"mutable default argument ({reason}) is shared across "
                    "calls — default to None and construct inside the body",
                )

    @staticmethod
    def _mutable(node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
                return f"{name}()"
        return None


class TelemetryNameRule(Rule):
    """SEG006 — metric/span names must be ``segugio_<area>_<name>`` literals.

    The run manifest pins per-day numbers by metric/span name; a name
    computed at runtime (or off-convention) silently forks the telemetry
    namespace and breaks manifest diffing across runs.
    """

    rule_id = "SEG006"
    name = "telemetry-names"
    rationale = (
        "manifest diffing keys on telemetry names; they must be grep-able "
        "string literals in the segugio_<area>_<name> namespace"
    )
    node_types = (ast.Call,)

    _METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        # repro.obs itself forwards caller-supplied names (Stopwatch shim,
        # Tracer internals) — the contract binds call sites, not the plumbing.
        if ctx.module == "repro.obs" or ctx.module.startswith("repro.obs."):
            return
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in self._METRIC_METHODS and self._is_registry(func.value):
            yield from self._check_name(node, ctx, kind=f"metric ({func.attr})")
        elif func.attr == "span" and self._is_tracer(func.value):
            yield from self._check_name(node, ctx, kind="span")

    @staticmethod
    def _is_registry(receiver: ast.AST) -> bool:
        name = dotted_name(receiver)
        if name is not None:
            return name == "registry" or name.endswith("_registry") or name.endswith(".registry")
        if isinstance(receiver, ast.Call):
            callee = dotted_name(receiver.func)
            return callee is not None and callee.split(".")[-1] == "get_registry"
        return False

    @staticmethod
    def _is_tracer(receiver: ast.AST) -> bool:
        name = dotted_name(receiver)
        if name is not None:
            return name == "tracer" or name.endswith("_tracer") or name.endswith(".tracer")
        if isinstance(receiver, ast.Call):
            callee = dotted_name(receiver.func)
            return callee is not None and callee.split(".")[-1] == "current_tracer"
        return False

    def _check_name(self, node: ast.Call, ctx: ModuleContext, kind: str) -> Iterator[Finding]:
        name_arg: Optional[ast.expr] = None
        if node.args:
            name_arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    name_arg = kw.value
                    break
        if name_arg is None:
            return
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            yield self.finding(
                ctx,
                name_arg,
                f"{kind} name must be a string literal — computed names "
                "fork the telemetry namespace at runtime",
            )
            return
        if not TELEMETRY_NAME_RE.match(name_arg.value):
            yield self.finding(
                ctx,
                name_arg,
                f"{kind} name {name_arg.value!r} does not match "
                "segugio_<area>_<name>",
            )


class AnnotationRule(Rule):
    """SEG007 — complete type annotations on public functions.

    ``repro.core`` / ``repro.ml`` / ``repro.runtime`` form the checkpointed
    surface: annotations there are load-bearing documentation for what
    crosses a checkpoint/manifest boundary, and keep the public API
    mechanically checkable.
    """

    rule_id = "SEG007"
    name = "public-annotations"
    rationale = (
        "core/ml/runtime public APIs cross checkpoint boundaries; complete "
        "annotations keep that surface mechanically checkable"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if ctx.package not in ANNOTATED_PACKAGES:
            return
        if node.name.startswith("_"):
            return
        if ctx.enclosing(ast.FunctionDef, ast.AsyncFunctionDef) is not None:
            return  # nested helpers are not public API
        enclosing_class = ctx.enclosing(ast.ClassDef)
        if enclosing_class is not None and enclosing_class.name.startswith("_"):
            return
        missing: List[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(a.arg for a in args.kwonlyargs if a.annotation is None)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name}() is missing annotations for: "
                + ", ".join(missing),
            )


class WhitespaceRule(Rule):
    """SEG008 — no tab indentation or trailing whitespace (raw-line rule).

    Keeps diffs reviewable and baseline snippets stable: baseline matching
    keys on stripped source lines, and invisible whitespace churn would
    expire entries for no semantic change.
    """

    rule_id = "SEG008"
    name = "whitespace"
    rationale = (
        "tab indents and trailing whitespace churn diffs and destabilize "
        "baseline snippet matching"
    )
    wants_lines = True

    def check_line(self, lineno: int, text: str, ctx: ModuleContext) -> Iterator[Finding]:
        stripped = text[: len(text) - len(text.lstrip())]
        if "\t" in stripped:
            yield self.finding(
                ctx, (lineno, stripped.index("\t") + 1), "tab character in indentation"
            )
        if text != text.rstrip():
            yield self.finding(
                ctx, (lineno, len(text.rstrip()) + 1), "trailing whitespace"
            )


class AnnotationNameRule(Rule):
    """SEG009 — annotation names that are neither imported nor defined.

    Under ``from __future__ import annotations`` every annotation is a
    deferred string, so a missing import (``Optional[int]`` with only
    ``Iterable, Tuple`` imported) survives import, tests, and deployment —
    and only explodes when something calls ``typing.get_type_hints()``
    (runtime schema/validation passes, dataclass introspection).  This rule
    resolves annotation names statically against everything the module
    binds, making that whole bug class a lint failure instead of a latent
    crash.
    """

    rule_id = "SEG009"
    name = "annotation-names"
    rationale = (
        "from __future__ import annotations defers evaluation, so an "
        "unimported annotation name only crashes under get_type_hints(); "
        "resolve annotations statically instead"
    )

    _BUILTIN_NAMES = frozenset(dir(builtins))

    def finish_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        bound, has_star_import = self._bound_names(ctx.tree)
        if has_star_import:
            return  # a wildcard import can bind anything; stay silent
        known = bound | self._BUILTIN_NAMES
        for annotation in self._annotations(ctx.tree):
            yield from self._check_annotation(annotation, known, ctx)

    # -------------------------------------------------------------- #

    @staticmethod
    def _bound_names(tree: ast.AST) -> Tuple[Set[str], bool]:
        """Every name the module could bind, at any scope.

        Deliberately over-approximates (function-local bindings count):
        postponed evaluation means an annotation may legally reference a
        name bound later, and a false "undefined" on a real name would
        train people to suppress the rule.
        """
        bound: Set[str] = set()
        star = False
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name == "*":
                        star = True
                    else:
                        bound.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
            elif isinstance(node, ast.arg):
                bound.add(node.arg)
        return bound, star

    @staticmethod
    def _annotations(tree: ast.AST) -> Iterator[ast.expr]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                every = (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + [args.vararg, args.kwarg]
                )
                for arg in every:
                    if arg is not None and arg.annotation is not None:
                        yield arg.annotation
                if node.returns is not None:
                    yield node.returns
            elif isinstance(node, ast.AnnAssign):
                yield node.annotation

    def _check_annotation(
        self, annotation: ast.expr, known: Set[str], ctx: ModuleContext
    ) -> Iterator[Finding]:
        # A string as the *whole* annotation is an explicit forward
        # reference — parse and resolve it too.  Strings nested inside an
        # annotation are left alone: they may be Literal[...] values.
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                parsed = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return
            for name in self._undefined_names(parsed, known):
                yield self.finding(
                    ctx,
                    annotation,
                    f"annotation name {name!r} is neither imported nor "
                    "defined — invisible under from __future__ import "
                    "annotations until get_type_hints() runs",
                )
            return
        for node in ast.walk(annotation):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in known
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"annotation name {node.id!r} is neither imported nor "
                    "defined — invisible under from __future__ import "
                    "annotations until get_type_hints() runs",
                )

    @staticmethod
    def _undefined_names(expr: ast.expr, known: Set[str]) -> List[str]:
        return [
            node.id
            for node in ast.walk(expr)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id not in known
        ]


class PerfTimingRule(Rule):
    """SEG010 — bare perf-clock reads in the evaluation layer.

    ``repro.eval`` timings feed reports and manifests; a raw
    ``time.perf_counter()`` pair produces a number that bypasses the span
    tree, so ``segugio telemetry`` cannot account for it and the trace
    disagrees with the report.  Evaluation code must time work through
    ``repro.obs.tracing`` (``Stopwatch`` phases or tracer spans), which
    yields the same float *and* lands in the manifest.  The benchmark
    harness (``repro.eval.bench``) is exempt: best-of-N lap timing is its
    output, and span bookkeeping inside the lap would skew the very
    measurement.
    """

    rule_id = "SEG010"
    name = "eval-perf-timing"
    rationale = (
        "repro.eval must time work through repro.obs.tracing spans/"
        "Stopwatch so manifests account for every reported second; bare "
        "perf-clock pairs bypass the trace"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def _in_scope(self, ctx: ModuleContext) -> bool:
        if ctx.module in PERF_TIMING_EXEMPT_MODULES:
            return False
        return ctx.module == "repro.eval" or ctx.module.startswith("repro.eval.")

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in (
                        "perf_counter",
                        "perf_counter_ns",
                        "monotonic",
                        "monotonic_ns",
                        "process_time",
                        "process_time_ns",
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"from time import {alias.name} smuggles a bare "
                            "perf clock into repro.eval — time work through "
                            "repro.obs.tracing (Stopwatch/span)",
                        )
            return
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _PERF_TIMING_CALLS:
            yield self.finding(
                ctx,
                node,
                f"bare {name}() in repro.eval bypasses the span tree — "
                "time work through repro.obs.tracing (Stopwatch/span) so "
                "the manifest accounts for it",
            )


class FaultContainmentRule(Rule):
    """SEG011 — process-kill primitives outside the fault-injection layer.

    ``repro.runtime.faults`` kills pool workers *deliberately* so the
    supervisor's degradation ladder can be exercised; that is the one
    legitimate use.  Anywhere else, ``os._exit`` / ``os.kill`` /
    ``os.abort`` bypasses ``finally`` blocks, atexit handlers, and the
    atomic-write staging discipline — an un-absorbable crash dressed up as
    control flow.  Library code signals failure by raising; only the
    fault layer gets to pull the trigger.
    """

    rule_id = "SEG011"
    name = "fault-containment"
    rationale = (
        "process-kill primitives (os._exit, os.kill, os.abort, ...) are "
        "confined to repro.runtime.faults; elsewhere they are crashes the "
        "supervisor cannot absorb"
    )
    node_types = (ast.Call, ast.ImportFrom)

    _SMUGGLED_NAMES = frozenset(
        {"_exit", "kill", "killpg", "abort", "raise_signal", "pthread_kill"}
    )

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in FAULT_PRIMITIVE_ALLOWED_MODULES:
            return
        if isinstance(node, ast.ImportFrom):
            if node.module in ("os", "signal") and node.level == 0:
                for alias in node.names:
                    if alias.name in self._SMUGGLED_NAMES:
                        yield self.finding(
                            ctx,
                            node,
                            f"from {node.module} import {alias.name} smuggles a "
                            "process-kill primitive past the fault-containment "
                            "guard — only repro.runtime.faults may kill processes",
                        )
            return
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _FAULT_PRIMITIVE_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{name}() outside repro.runtime.faults is an unsupervised "
                "crash — raise an exception and let the supervisor's "
                "degradation ladder handle it",
            )


class ResourceReadContainmentRule(Rule):
    """SEG012 — raw resource-accounting reads outside the resource monitor.

    ``repro.obs.resources`` owns every platform quirk of resource
    accounting: ``ru_maxrss`` is KiB on Linux but bytes on macOS,
    ``/proc/self/io`` needs privileges some containers drop, and
    ``tracemalloc`` left running skews every later measurement.  A second
    call site re-learns those lessons wrong — and numbers that bypass the
    :class:`ResourceMonitor` never reach the manifest's ``resources`` key,
    so ``segugio profile`` disagrees with whatever ad-hoc figure was
    printed.  Everyone else reads through the monitor (or its
    ``process_clock`` helper for worker self-timing).
    """

    rule_id = "SEG012"
    name = "resource-read-containment"
    rationale = (
        "raw resource reads (resource.getrusage, os.times, tracemalloc, "
        "/proc/self/*) are confined to repro.obs.resources; elsewhere "
        "they bypass the ResourceMonitor and its platform fallbacks"
    )
    node_types = (ast.Call, ast.ImportFrom)

    def check_node(self, node: ast.AST, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in RESOURCE_READ_ALLOWED_MODULES:
            return
        if isinstance(node, ast.ImportFrom):
            smuggled = _RESOURCE_SMUGGLED_NAMES.get(node.module or "")
            if smuggled and node.level == 0:
                for alias in node.names:
                    if alias.name in smuggled:
                        yield self.finding(
                            ctx,
                            node,
                            f"from {node.module} import {alias.name} smuggles a "
                            "raw resource read past the ResourceMonitor — go "
                            "through repro.obs.resources",
                        )
            return
        assert isinstance(node, ast.Call)
        name = dotted_name(node.func)
        if name in _RESOURCE_READ_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{name}() outside repro.obs.resources bypasses the "
                "ResourceMonitor and its platform fallbacks — read through "
                "repro.obs.resources instead",
            )
            return
        if (
            name in ("open", "os.open", "io.open")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("/proc/")
        ):
            yield self.finding(
                ctx,
                node,
                f"reading {node.args[0].value} outside repro.obs.resources "
                "bypasses the ResourceMonitor — use its ResourceReader, "
                "which degrades gracefully when /proc is absent",
            )


def build_rules() -> Tuple[Rule, ...]:
    """One fresh instance of every shipped rule, in rule-id order."""
    return (
        NoPrintRule(),
        DeterminismRule(),
        LayeringRule(),
        ExceptionHygieneRule(),
        MutableDefaultRule(),
        TelemetryNameRule(),
        AnnotationRule(),
        WhitespaceRule(),
        AnnotationNameRule(),
        PerfTimingRule(),
        FaultContainmentRule(),
        ResourceReadContainmentRule(),
    )


ALL_RULE_IDS: Tuple[str, ...] = tuple(rule.rule_id for rule in build_rules())

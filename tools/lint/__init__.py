"""segugio-lint: AST-based static analysis enforcing the repo's contracts.

Runnable as ``python -m tools.lint`` from the repository root (zero
dependencies, stdlib only). The rule set (SEG001–SEG008) machine-checks
the determinism, layering, exception-hygiene, and telemetry-naming
invariants that PR 1 (bit-identical checkpoint resume) and PR 2 (pinned
run manifests) established — see DESIGN.md §9 for the rule catalogue and
``# seg: ignore[SEGxxx]`` suppression syntax.
"""

from tools.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from tools.lint.engine import (
    Engine,
    Finding,
    LintConfigError,
    ModuleContext,
    Rule,
    module_name_for,
)
from tools.lint.reporting import FORMATS, render
from tools.lint.rules import ALL_RULE_IDS, build_rules

__all__ = [
    "ALL_RULE_IDS",
    "BaselineEntry",
    "Engine",
    "FORMATS",
    "Finding",
    "LintConfigError",
    "ModuleContext",
    "Rule",
    "apply_baseline",
    "build_rules",
    "load_baseline",
    "module_name_for",
    "render",
    "render_baseline",
]

"""segugio-lint: AST-based static analysis enforcing the repo's contracts.

Runnable as ``python -m tools.lint`` from the repository root (zero
dependencies, stdlib only). Two phases: per-file rules (SEG001–SEG012)
machine-check the determinism, layering, exception-hygiene, and
telemetry-naming invariants; whole-program rules (SEG101–SEG104) run on
an incrementally cached project index (import graph + call graph +
symbol summaries) and check interprocedural contracts — seed taint,
pool-callable picklability, the manifest producer/consumer contract, and
the span-name registry. See DESIGN.md §9 for the rule catalogue and
``# seg: ignore[SEGxxx]`` suppression syntax.
"""

from tools.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from tools.lint.engine import (
    Engine,
    Finding,
    LintConfigError,
    ModuleContext,
    Rule,
    module_name_for,
)
from tools.lint.index import ProjectIndex, build_index
from tools.lint.project_rules import (
    PROJECT_RULE_IDS,
    ProjectRule,
    build_project_rules,
    run_project_rules,
)
from tools.lint.reporting import FORMATS, render
from tools.lint.rules import ALL_RULE_IDS, build_rules

__all__ = [
    "ALL_RULE_IDS",
    "BaselineEntry",
    "Engine",
    "FORMATS",
    "Finding",
    "LintConfigError",
    "ModuleContext",
    "PROJECT_RULE_IDS",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "build_index",
    "build_project_rules",
    "build_rules",
    "load_baseline",
    "module_name_for",
    "render",
    "render_baseline",
    "run_project_rules",
]

"""Output formats for segugio-lint: human, JSON, GitHub annotations.

Severity shapes the output: ``error`` findings keep the classic
``path:line:col: RULE message`` shape (and ``::error`` annotations),
``warning`` findings are marked as such (and ``::warning`` annotations)
so CI surfaces them without failing the job.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from tools.lint.baseline import BaselineEntry
from tools.lint.engine import Finding

FORMATS = ("human", "json", "github")


def _severity_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    counts = {"error": 0, "warning": 0}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts


def render_human(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
    stats: Optional[Dict[str, object]] = None,
) -> str:
    lines: List[str] = []
    for finding in findings:
        marker = "" if finding.severity == "error" else f"{finding.severity}: "
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {marker}{finding.message}"
        )
    for entry in stale:
        lines.append(
            f"baseline: stale entry {entry.rule} for {entry.path} "
            f"({entry.snippet!r}) matches nothing — remove it"
        )
    if findings or stale:
        counts = _severity_counts(findings)
        breakdown = (
            f" ({counts['error']} error(s), {counts['warning']} warning(s))"
            if counts["warning"]
            else ""
        )
        lines.append(
            f"segugio-lint: {len(findings)} finding(s){breakdown}, "
            f"{len(stale)} stale "
            f"baseline entr{'y' if len(stale) == 1 else 'ies'} "
            f"across {files_scanned} file(s)"
        )
    else:
        lines.append(f"segugio-lint: OK ({files_scanned} files clean)")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
    stats: Optional[Dict[str, object]] = None,
) -> str:
    payload = {
        "version": 1,
        "files_scanned": files_scanned,
        "findings": [finding.to_dict() for finding in findings],
        "stale_baseline": [entry.to_dict() for entry in stale],
    }
    if stats is not None:
        payload["stats"] = stats
    return json.dumps(payload, indent=2)


def _escape_annotation(text: str) -> str:
    """Escape message data per the GitHub workflow-command grammar."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
    stats: Optional[Dict[str, object]] = None,
) -> str:
    lines: List[str] = []
    for finding in findings:
        command = "error" if finding.severity == "error" else "warning"
        lines.append(
            f"::{command} file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::"
            + _escape_annotation(finding.message)
        )
    for entry in stale:
        lines.append(
            f"::error file={entry.path},title=stale-baseline::"
            + _escape_annotation(
                f"stale baseline entry {entry.rule} ({entry.snippet!r}) "
                "matches nothing — remove it from tools/lint/baseline.json"
            )
        )
    lines.append(
        f"segugio-lint: {len(findings)} finding(s), {len(stale)} stale, "
        f"{files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render_explain(findings: Sequence[Finding], rule: str) -> str:
    """The ``--explain SEGxxx`` view: each finding with its flow path."""
    matched = [f for f in findings if f.rule == rule]
    if not matched:
        return f"segugio-lint: no {rule} findings to explain"
    lines: List[str] = []
    for finding in matched:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
        if finding.trace:
            lines.append("  flow path:")
            for hop in finding.trace:
                lines.append(f"    {hop}")
        else:
            lines.append("  (no interprocedural flow recorded)")
        lines.append("")
    lines.append(f"{len(matched)} {rule} finding(s) explained")
    return "\n".join(lines)


def render(
    fmt: str,
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
    stats: Optional[Dict[str, object]] = None,
) -> str:
    if fmt == "human":
        return render_human(findings, stale, files_scanned, stats)
    if fmt == "json":
        return render_json(findings, stale, files_scanned, stats)
    if fmt == "github":
        return render_github(findings, stale, files_scanned, stats)
    raise ValueError(f"unknown format {fmt!r} (expected one of {FORMATS})")

"""Output formats for segugio-lint: human, JSON, GitHub annotations."""

from __future__ import annotations

import json
from typing import List, Sequence

from tools.lint.baseline import BaselineEntry
from tools.lint.engine import Finding

FORMATS = ("human", "json", "github")


def render_human(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    for entry in stale:
        lines.append(
            f"baseline: stale entry {entry.rule} for {entry.path} "
            f"({entry.snippet!r}) matches nothing — remove it"
        )
    if findings or stale:
        lines.append(
            f"segugio-lint: {len(findings)} finding(s), {len(stale)} stale "
            f"baseline entr{'y' if len(stale) == 1 else 'ies'} "
            f"across {files_scanned} file(s)"
        )
    else:
        lines.append(f"segugio-lint: OK ({files_scanned} files clean)")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
) -> str:
    payload = {
        "version": 1,
        "files_scanned": files_scanned,
        "findings": [finding.to_dict() for finding in findings],
        "stale_baseline": [entry.to_dict() for entry in stale],
    }
    return json.dumps(payload, indent=2)


def _escape_annotation(text: str) -> str:
    """Escape message data per the GitHub workflow-command grammar."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
) -> str:
    lines: List[str] = []
    for finding in findings:
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col},title={finding.rule}::"
            + _escape_annotation(finding.message)
        )
    for entry in stale:
        lines.append(
            f"::error file={entry.path},title=stale-baseline::"
            + _escape_annotation(
                f"stale baseline entry {entry.rule} ({entry.snippet!r}) "
                "matches nothing — remove it from tools/lint/baseline.json"
            )
        )
    lines.append(
        f"segugio-lint: {len(findings)} finding(s), {len(stale)} stale, "
        f"{files_scanned} file(s) scanned"
    )
    return "\n".join(lines)


def render(
    fmt: str,
    findings: Sequence[Finding],
    stale: Sequence[BaselineEntry],
    files_scanned: int,
) -> str:
    if fmt == "human":
        return render_human(findings, stale, files_scanned)
    if fmt == "json":
        return render_json(findings, stale, files_scanned)
    if fmt == "github":
        return render_github(findings, stale, files_scanned)
    raise ValueError(f"unknown format {fmt!r} (expected one of {FORMATS})")

"""Phase 1 of the whole-program analyzer: the project index.

One pass over every Python file under the index roots (``src`` + ``tools``
+ ``benchmarks``) extracts a compact, JSON-serializable *module summary*:
the import table, every function with its parameters / call sites /
assignment provenance, span-name literals, manifest key reads and writes,
and the file's ``# seg: ignore`` table.  Phase 2 (the SEG101–SEG104
project rules in :mod:`tools.lint.project_rules`) runs entirely on these
summaries — it never re-reads source.

The index is cached incrementally: summaries are keyed on the SHA-256 of
each file's content, so an unchanged file is never re-parsed.  Derived
structures (the import graph, the call graph, the reverse call index) are
cheap and rebuilt from summaries on every run.  The cache is a plain JSON
file (atomic stage+rename write); a corrupt or version-mismatched cache
is silently discarded and rebuilt.

Expression provenance is recorded as bounded-depth "expression summaries"
(dicts with a ``k`` kind tag) — enough structure for the determinism
taint and pool-safety rules to trace a seed or a callable across function
boundaries, without persisting ASTs.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import time
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.lint.engine import module_name_for, statement_extents, suppressed_rules

INDEX_CACHE_VERSION = 1
DEFAULT_CACHE_PATH = os.path.join("tools", "lint", ".index-cache.json")

#: trees the whole-program index covers (package_root applies to ``src``)
INDEX_ROOTS = ("src", "tools", "benchmarks")

_EXPR_DEPTH_LIMIT = 4

#: dict/set/list methods that mutate the receiver in place
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "extend",
        "insert",
        "sort",
    }
)


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def summarize_expr(node: ast.AST, depth: int = 0) -> Dict[str, object]:
    """Bounded-depth provenance summary of an expression.

    Kinds: ``const`` (literal), ``name``, ``attr`` (dotted chain),
    ``call`` (callee + summarized args), ``lambda``, ``binop``, ``sub``
    (subscript of a value), ``unpack`` is produced by the for-loop walker,
    ``other`` for everything else.
    """
    if depth >= _EXPR_DEPTH_LIMIT:
        return {"k": "other"}
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, (int, float, str, bool)) or value is None:
            return {"k": "const", "v": value}
        return {"k": "const", "v": repr(value)}
    if isinstance(node, ast.Name):
        return {"k": "name", "id": node.id}
    if isinstance(node, ast.Attribute):
        chain = dotted(node)
        if chain is not None:
            return {"k": "attr", "dotted": chain}
        return {"k": "other"}
    if isinstance(node, ast.Lambda):
        return {"k": "lambda"}
    if isinstance(node, ast.Call):
        fn = dotted(node.func)
        return {
            "k": "call",
            "fn": fn if fn is not None else "<dynamic>",
            "args": [summarize_expr(a, depth + 1) for a in node.args[:4]],
            "kw": {
                kw.arg: summarize_expr(kw.value, depth + 1)
                for kw in node.keywords
                if kw.arg is not None
            },
        }
    if isinstance(node, ast.BinOp):
        return {
            "k": "binop",
            "l": summarize_expr(node.left, depth + 1),
            "r": summarize_expr(node.right, depth + 1),
        }
    if isinstance(node, ast.UnaryOp):
        return summarize_expr(node.operand, depth + 1)
    if isinstance(node, ast.Subscript):
        return {"k": "sub", "v": summarize_expr(node.value, depth + 1)}
    if isinstance(node, ast.IfExp):
        return {
            "k": "binop",  # either branch may flow through; treat like a join
            "l": summarize_expr(node.body, depth + 1),
            "r": summarize_expr(node.orelse, depth + 1),
        }
    if isinstance(node, ast.Starred):
        return summarize_expr(node.value, depth + 1)
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)) and node.elts:
        if all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts
        ):
            return {"k": "strs", "v": [e.value for e in node.elts]}  # type: ignore[union-attr]
    return {"k": "other"}


class _ModuleWalker(ast.NodeVisitor):
    """Single AST pass building one module summary."""

    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.imports: Dict[str, str] = {}
        self.imported_modules: Set[str] = set()
        self.functions: Dict[str, Dict[str, object]] = {}
        self.module_assigns: Dict[str, Dict[str, object]] = {}
        self.span_literals: List[Dict[str, object]] = []
        self.key_reads: List[Dict[str, object]] = []
        self.key_writes: List[Dict[str, object]] = []
        self._scope: List[str] = []
        self._fn_stack: List[Dict[str, object]] = []
        self._class_depth = 0
        # module-level code is recorded as the pseudo-function "<module>"
        self._module_fn = self._new_function("<module>", 1, [], nested=False)
        self.functions["<module>"] = self._module_fn

    # ---------------------------------------------------------------- #

    @staticmethod
    def _new_function(
        qualname: str, lineno: int, params: List[str], nested: bool
    ) -> Dict[str, object]:
        return {
            "qualname": qualname,
            "lineno": lineno,
            "params": params,
            "nested": nested,
            "in_class": False,
            "calls": [],
            "assigns": {},
            "for_iters": {},
            "returns": [],
            "global_writes": [],
            "mutations": [],
        }

    def _current(self) -> Dict[str, object]:
        return self._fn_stack[-1] if self._fn_stack else self._module_fn

    def _qualname(self, name: str) -> str:
        return ".".join(self._scope + [name]) if self._scope else name

    # ------------------------------ imports ------------------------- #

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            self.imported_modules.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            parts = self.module.split(".")
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        if base:
            self.imported_modules.add(base)
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.imports[alias.asname or alias.name] = target
        self.generic_visit(node)

    # ------------------------------ scopes -------------------------- #

    def _visit_function(self, node) -> None:
        qualname = self._qualname(node.name)
        args = node.args
        params = [
            a.arg
            for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ]
        if args.vararg is not None:
            params.append(args.vararg.arg)
        if args.kwarg is not None:
            params.append(args.kwarg.arg)
        info = self._new_function(
            qualname, node.lineno, params, nested=bool(self._fn_stack)
        )
        info["in_class"] = self._class_depth > 0 and not self._fn_stack
        self.functions[qualname] = info
        self._scope.append(node.name)
        self._fn_stack.append(info)
        for child in node.body:
            self.visit(child)
        self._fn_stack.pop()
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self._class_depth += 1
        for child in node.body:
            self.visit(child)
        self._class_depth -= 1
        self._scope.pop()

    # ------------------------------ statements ----------------------- #

    def visit_Assign(self, node: ast.Assign) -> None:
        summary = summarize_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._record_assign(target.id, summary)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self._record_assign(elt.id, {"k": "unpack", "v": summary})
            elif isinstance(target, ast.Subscript):
                self._record_key_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._record_assign(node.target.id, summarize_expr(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            name = node.target.id
            fn = self._current()
            if self._fn_stack and name in self.module_assigns and (
                name not in fn["params"]  # type: ignore[operator]
                and name not in fn["assigns"]  # type: ignore[operator]
            ):
                fn["mutations"].append(  # type: ignore[union-attr]
                    {"name": name, "lineno": node.lineno, "how": "augmented assignment"}
                )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        fn = self._current()
        for name in node.names:
            if name not in fn["global_writes"]:  # type: ignore[operator]
                fn["global_writes"].append(name)  # type: ignore[union-attr]
        self.generic_visit(node)

    def _record_loop_targets(self, target: ast.AST, iter_node: ast.AST) -> None:
        summary = summarize_expr(iter_node)
        targets = (
            target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
        )
        for item in targets:
            if isinstance(item, ast.Name):
                self._current()["for_iters"][item.id] = summary  # type: ignore[index]

    def visit_For(self, node: ast.For) -> None:
        self._record_loop_targets(node.target, node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._record_loop_targets(node.target, node.iter)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._current()["returns"].append(summarize_expr(node.value))  # type: ignore[union-attr]
        self.generic_visit(node)

    def _record_assign(self, name: str, summary: Dict[str, object]) -> None:
        self._current()["assigns"][name] = summary  # type: ignore[index]
        if not self._fn_stack:
            self.module_assigns[name] = summary

    # ------------------------------ expressions ---------------------- #

    def visit_Call(self, node: ast.Call) -> None:
        fn_name = dotted(node.func)
        record = {
            "fn": fn_name if fn_name is not None else "<dynamic>",
            "lineno": node.lineno,
            "args": [summarize_expr(a) for a in node.args[:6]],
            "kw": {
                kw.arg: summarize_expr(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            },
        }
        self._current()["calls"].append(record)  # type: ignore[union-attr]
        func = node.func
        span_call = (isinstance(func, ast.Attribute) and func.attr == "span") or (
            isinstance(func, ast.Name) and func.id == "span"
        )
        if (
            span_call
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.startswith("segugio_")
        ):
            self.span_literals.append(
                {"name": node.args[0].value, "lineno": node.lineno}
            )
        if isinstance(func, ast.Attribute):
            receiver = dotted(func.value)
            if (
                func.attr in ("get", "setdefault")
                and receiver is not None
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                entry = {
                    "recv": receiver,
                    "key": node.args[0].value,
                    "lineno": node.lineno,
                }
                if func.attr == "get":
                    self.key_reads.append(entry)
                else:
                    self.key_writes.append(entry)
            if (
                func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and self._fn_stack
            ):
                name = func.value.id
                fn = self._current()
                if name in self.module_assigns and (
                    name not in fn["params"]  # type: ignore[operator]
                    and name not in fn["assigns"]  # type: ignore[operator]
                ):
                    fn["mutations"].append(  # type: ignore[union-attr]
                        {
                            "name": name,
                            "lineno": node.lineno,
                            "how": f".{func.attr}() call",
                        }
                    )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            receiver = dotted(node.value)
            if receiver is not None:
                self.key_reads.append(
                    {"recv": receiver, "key": node.slice.value, "lineno": node.lineno}
                )
        self.generic_visit(node)

    def _record_key_write(self, target: ast.Subscript, lineno: int) -> None:
        if isinstance(target.slice, ast.Constant) and isinstance(
            target.slice.value, str
        ):
            receiver = dotted(target.value)
            if receiver is not None:
                self.key_writes.append(
                    {"recv": receiver, "key": target.slice.value, "lineno": lineno}
                )
        # a subscript-store on a module global is a mutation whatever the key
        if (
            isinstance(target.value, ast.Name)
            and self._fn_stack
            and target.value.id in self.module_assigns
        ):
            fn = self._current()
            if target.value.id not in fn["params"] and (  # type: ignore[operator]
                target.value.id not in fn["assigns"]  # type: ignore[operator]
            ):
                fn["mutations"].append(  # type: ignore[union-attr]
                    {
                        "name": target.value.id,
                        "lineno": lineno,
                        "how": "subscript store",
                    }
                )


def _dict_literal_keys(tree: ast.AST) -> Iterator[Tuple[str, str, int]]:
    """(bound name, key, line) for every all-string-key dict literal bound
    to a simple name or returned — the manifest-producer shape."""
    for node in ast.walk(tree):
        value: Optional[ast.AST] = None
        recv: Optional[str] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                recv, value = target.id, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            recv, value = node.target.id, node.value
        elif isinstance(node, ast.Return):
            recv, value = "<return>", node.value
        if not isinstance(value, ast.Dict) or not value.keys:
            continue
        keys = [
            k.value
            for k in value.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        ]
        if len(keys) != len(value.keys):
            continue
        for key in keys:
            yield recv or "<return>", key, value.lineno


def summarize_module(source: str, path: str, module: str) -> Dict[str, object]:
    """Build one module summary; a syntax error yields a stub summary."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return {
            "module": module,
            "path": path,
            "parse_error": True,
            "imports": {},
            "imported_modules": [],
            "functions": {},
            "module_assigns": {},
            "span_literals": [],
            "key_reads": [],
            "key_writes": [],
            "dict_literals": [],
            "suppressed": {},
            "extents": [],
        }
    walker = _ModuleWalker(module, path)
    walker.visit(tree)
    lines = source.splitlines()
    suppressed = {
        str(line): (None if ids is None else sorted(ids))
        for line, ids in suppressed_rules(lines).items()
    }
    return {
        "module": module,
        "path": path,
        "parse_error": False,
        "imports": walker.imports,
        "imported_modules": sorted(walker.imported_modules),
        "functions": walker.functions,
        "module_assigns": walker.module_assigns,
        "span_literals": walker.span_literals,
        "key_reads": walker.key_reads,
        "key_writes": walker.key_writes,
        "dict_literals": [
            {"recv": recv, "key": key, "lineno": lineno}
            for recv, key, lineno in _dict_literal_keys(tree)
        ],
        "suppressed": suppressed,
        "extents": statement_extents(tree),
    }


# -------------------------------------------------------------------- #
# the index
# -------------------------------------------------------------------- #


class ProjectIndex:
    """All module summaries plus the derived graphs and lookups."""

    def __init__(self, summaries: Dict[str, Dict[str, object]]) -> None:
        #: path -> summary
        self.files = summaries
        #: dotted module -> summary
        self.modules: Dict[str, Dict[str, object]] = {}
        for summary in summaries.values():
            module = str(summary.get("module") or "")
            if module:
                self.modules[module] = summary
        self._reverse_calls: Optional[Dict[Tuple[str, str], List[Dict[str, object]]]] = None

    # ------------------------------ resolution ----------------------- #

    def resolve_call(
        self, module: str, call_name: str
    ) -> Optional[Tuple[str, str]]:
        """Resolve a call-site name to ``(defining module, function)``.

        Handles local top-level functions, ``from x import f`` aliases,
        and ``mod.f`` via an ``import mod`` alias.  Returns ``None`` for
        builtins, methods, and anything outside the index.
        """
        summary = self.modules.get(module)
        if summary is None or call_name == "<dynamic>":
            return None
        imports: Dict[str, str] = summary["imports"]  # type: ignore[assignment]
        head, _, rest = call_name.partition(".")
        if not rest:
            functions: Dict[str, object] = summary["functions"]  # type: ignore[assignment]
            if call_name in functions:
                return (module, call_name)
            target = imports.get(call_name)
            if target is not None:
                target_module, _, target_name = target.rpartition(".")
                if target_module in self.modules and target_name in self.modules[
                    target_module
                ]["functions"]:  # type: ignore[operator]
                    return (target_module, target_name)
            return None
        target = imports.get(head)
        if target is None:
            return None
        # "np.random.default_rng" -> module numpy (not indexed) -> None;
        # "supervisor.supervised_map" with import repro.runtime.supervisor
        if target in self.modules:
            candidate = rest
            if candidate in self.modules[target]["functions"]:  # type: ignore[operator]
                return (target, candidate)
        return None

    def callers_of(self, module: str, function: str) -> List[Dict[str, object]]:
        """Call sites (with caller context) resolving to ``module:function``.

        Each record: ``{"module", "function" (caller qualname), "call"}``.
        """
        if self._reverse_calls is None:
            table: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
            for mod_name, summary in self.modules.items():
                functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
                for qualname, info in functions.items():
                    for call in info["calls"]:  # type: ignore[union-attr]
                        resolved = self.resolve_call(mod_name, str(call["fn"]))
                        if resolved is None:
                            continue
                        table.setdefault(resolved, []).append(
                            {"module": mod_name, "function": qualname, "call": call}
                        )
            self._reverse_calls = table
        return self._reverse_calls.get((module, function), [])

    def function(self, module: str, qualname: str) -> Optional[Dict[str, object]]:
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary["functions"].get(qualname)  # type: ignore[union-attr]

    def is_suppressed(self, path: str, line: int, rule: str) -> bool:
        """Honor ``# seg: ignore`` tables recorded in the summaries."""
        summary = self.files.get(path)
        if summary is None:
            return False
        table = {
            int(lineno): (None if ids is None else frozenset(ids))
            for lineno, ids in summary["suppressed"].items()  # type: ignore[union-attr]
        }
        if not table:
            return False
        extents = [tuple(pair) for pair in summary["extents"]]  # type: ignore[union-attr]
        from tools.lint.engine import is_suppressed as _is_suppressed

        return _is_suppressed(table, extents, line, rule)

    # ------------------------------ graphs --------------------------- #

    def import_graph(self) -> Dict[str, List[str]]:
        """Edges between *indexed* modules only (external imports dropped)."""
        graph: Dict[str, List[str]] = {}
        for module, summary in sorted(self.modules.items()):
            targets = sorted(
                t
                for t in summary["imported_modules"]  # type: ignore[union-attr]
                if t in self.modules and t != module
            )
            graph[module] = targets
        return graph

    def call_graph(self) -> Dict[str, List[str]]:
        """``module:function`` -> sorted resolved callees."""
        graph: Dict[str, List[str]] = {}
        for module, summary in sorted(self.modules.items()):
            functions: Dict[str, Dict[str, object]] = summary["functions"]  # type: ignore[assignment]
            for qualname, info in sorted(functions.items()):
                callees: Set[str] = set()
                for call in info["calls"]:  # type: ignore[union-attr]
                    resolved = self.resolve_call(module, str(call["fn"]))
                    if resolved is not None:
                        callees.add(f"{resolved[0]}:{resolved[1]}")
                graph[f"{module}:{qualname}"] = sorted(callees)
        return graph

    def span_sites(self) -> List[Tuple[str, str, int]]:
        """Every ``span("segugio_*")`` literal as ``(path, name, line)``."""
        sites: List[Tuple[str, str, int]] = []
        for path, summary in sorted(self.files.items()):
            for literal in summary["span_literals"]:  # type: ignore[union-attr]
                sites.append((path, str(literal["name"]), int(literal["lineno"])))
        return sites


def render_graph_dot(index: ProjectIndex) -> str:
    """Both graphs as DOT (two digraphs in one document)."""
    lines = ["digraph imports {"]
    for module, targets in index.import_graph().items():
        if not targets:
            lines.append(f'  "{module}";')
        for target in targets:
            lines.append(f'  "{module}" -> "{target}";')
    lines.append("}")
    lines.append("digraph calls {")
    for source, targets in index.call_graph().items():
        for target in targets:
            lines.append(f'  "{source}" -> "{target}";')
    lines.append("}")
    return "\n".join(lines)


def render_graph_json(index: ProjectIndex) -> str:
    return json.dumps(
        {
            "version": INDEX_CACHE_VERSION,
            "imports": index.import_graph(),
            "calls": index.call_graph(),
        },
        indent=2,
        sort_keys=True,
    )


# -------------------------------------------------------------------- #
# building & caching
# -------------------------------------------------------------------- #


def _iter_python_files(root: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def _load_cache(path: str) -> Dict[str, Dict[str, object]]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if (
        not isinstance(payload, dict)
        or payload.get("version") != INDEX_CACHE_VERSION
        or not isinstance(payload.get("files"), dict)
    ):
        return {}
    return payload["files"]


def _save_cache(path: str, files: Dict[str, Dict[str, object]]) -> None:
    payload = {"version": INDEX_CACHE_VERSION, "files": files}
    staging = f"{path}.tmp.{os.getpid()}"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    try:
        with open(staging, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True)
        os.replace(staging, path)
    except OSError:
        # a read-only checkout must not fail the lint run; the cache is
        # purely an acceleration
        try:
            os.remove(staging)
        except OSError:
            pass


def build_index(
    roots: Sequence[str] = INDEX_ROOTS,
    relative_to: Optional[str] = None,
    cache_path: Optional[str] = DEFAULT_CACHE_PATH,
    package_root: str = "src",
) -> Tuple[ProjectIndex, Dict[str, object]]:
    """Build (or incrementally refresh) the project index.

    Returns ``(index, stats)`` where stats records file counts, cache
    reuse, and wall-clock — surfaced by ``--stats`` and the CI timing
    gate.  ``cache_path=None`` disables caching entirely.
    """
    started = time.perf_counter()
    relative_to = relative_to or os.getcwd()
    cached: Dict[str, Dict[str, object]] = {}
    if cache_path is not None:
        cached = _load_cache(cache_path)
    summaries: Dict[str, Dict[str, object]] = {}
    fresh_cache: Dict[str, Dict[str, object]] = {}
    n_parsed = 0
    n_reused = 0
    for root in roots:
        root_abs = os.path.join(relative_to, root)
        if not os.path.isdir(root_abs):
            continue
        anchor = (
            os.path.join(relative_to, package_root)
            if root == package_root
            else relative_to
        )
        for path in _iter_python_files(root_abs):
            report_path = os.path.relpath(path, relative_to).replace(os.sep, "/")
            try:
                with open(path, "rb") as stream:
                    raw = stream.read()
            except OSError:
                continue
            digest = hashlib.sha256(raw).hexdigest()
            entry = cached.get(report_path)
            if entry is not None and entry.get("sha256") == digest:
                summary = entry["summary"]
                n_reused += 1
            else:
                source = raw.decode("utf-8", errors="replace")
                module = module_name_for(path, anchor)
                if not module:
                    module = report_path[: -len(".py")].replace("/", ".")
                summary = summarize_module(source, report_path, module)
                n_parsed += 1
            summaries[report_path] = summary  # type: ignore[assignment]
            fresh_cache[report_path] = {"sha256": digest, "summary": summary}
    if cache_path is not None:
        _save_cache(cache_path, fresh_cache)
    elapsed = time.perf_counter() - started
    stats: Dict[str, object] = {
        "files": len(summaries),
        "parsed": n_parsed,
        "reused": n_reused,
        "build_seconds": round(elapsed, 6),
        "cold": n_reused == 0,
    }
    return ProjectIndex(summaries), stats

"""Command-line entry point: ``python -m tools.lint`` from the repo root.

Two phases. The per-file phase walks each target with the SEG0xx rules
(exactly as before). The whole-program phase builds the project index
(phase 1, incrementally cached on file content hashes) over ``src`` +
``tools`` + ``benchmarks`` and runs the interprocedural SEG1xx rules on
it; it runs on full (default-target) invocations and is skipped for
explicit partial targets unless ``--graph``/``--explain`` asks for it.

Exit codes: 0 = clean (modulo baseline; warnings alone do not fail),
1 = error findings or stale baseline entries, 2 = usage/configuration
error (bad baseline file, bad target, unknown rule).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Set

from tools.lint.baseline import apply_baseline, load_baseline, render_baseline
from tools.lint.engine import Engine, Finding, LintConfigError
from tools.lint.index import (
    DEFAULT_CACHE_PATH,
    INDEX_ROOTS,
    build_index,
    render_graph_dot,
    render_graph_json,
)
from tools.lint.project_rules import (
    PROJECT_RULE_IDS,
    build_project_rules,
    run_project_rules,
)
from tools.lint.reporting import FORMATS, render, render_explain
from tools.lint.rules import ALL_RULE_IDS, build_rules

DEFAULT_BASELINE = os.path.join("tools", "lint", "baseline.json")

#: trees outside the package that still carry the determinism contract:
#: benchmark numbers and example transcripts must be reproducible, but
#: the rest of the library rule set (layering, annotations, print) is
#: deliberately out of scope for scripts.
DETERMINISM_ONLY_TREES = ("benchmarks", "examples")
DETERMINISM_ONLY_RULES = frozenset({"SEG000", "SEG002"})
#: whole-program rules that still bind determinism-only trees
DETERMINISM_ONLY_PROJECT_RULES = frozenset({"SEG101"})


def _determinism_only(target: str) -> bool:
    parts = os.path.normpath(os.path.relpath(target)).split(os.sep)
    return bool(parts) and parts[0] in DETERMINISM_ONLY_TREES


def _default_targets() -> List[str]:
    """``src`` plus any determinism-only trees present in the checkout."""
    return ["src"] + [d for d in DETERMINISM_ONLY_TREES if os.path.isdir(d)]


def _package_root_for(target: str) -> str:
    """Directory that anchors dotted module names for files under ``target``.

    ``src`` (or anything containing a ``src`` path component) anchors at
    that component so ``src/repro/core/x.py`` → ``repro.core.x``; other
    targets anchor at themselves.
    """
    parts = os.path.normpath(target).split(os.sep)
    if "src" in parts:
        idx = parts.index("src")
        return os.sep.join(parts[: idx + 1]) or "src"
    return target if os.path.isdir(target) else os.path.dirname(target) or "."


def _parse_select(raw: Optional[str]) -> Optional[Set[str]]:
    if raw is None:
        return None
    known = set(ALL_RULE_IDS) | set(PROJECT_RULE_IDS)
    selected = {item.strip().upper() for item in raw.split(",") if item.strip()}
    unknown = selected - known
    if unknown:
        raise LintConfigError(
            f"unknown rule id(s) in --select: {', '.join(sorted(unknown))}"
        )
    return selected


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="segugio-lint: enforce determinism, layering, and "
        "telemetry contracts over the source tree — per-file rules "
        "(SEG0xx) plus whole-program analyses (SEG101-SEG105)",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src plus, with only "
        "the determinism rule SEG002, benchmarks/ and examples/; the "
        "whole-program phase runs only on default-target invocations)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (e.g. SEG002,SEG101); "
        "default: all rules",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of documented intentional findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit "
        "(entries for files outside this run's scope are preserved)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--graph",
        choices=("dot", "json"),
        default=None,
        help="dump the whole-program import and call graphs and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="SEGXXX",
        default=None,
        help="run the lint and render each finding of the given rule with "
        "its interprocedural flow path",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print phase timing and index-cache statistics to stderr "
        "(always embedded in --format json output)",
    )
    parser.add_argument(
        "--index-cache",
        default=DEFAULT_CACHE_PATH,
        metavar="PATH",
        help=f"project-index cache file (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--no-index-cache",
        action="store_true",
        help="rebuild the project index from scratch, ignoring the cache",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the whole-program phase (SEG101-SEG105) entirely",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    engine = Engine(build_rules())

    if args.list_rules:
        for rule in engine.rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.rationale}")
        for project_rule in build_project_rules():
            print(
                f"{project_rule.rule_id}  {project_rule.name} "
                f"[whole-program]: {project_rule.rationale}"
            )
        return 0

    try:
        select = _parse_select(args.select)
    except LintConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    explain_rule: Optional[str] = None
    if args.explain is not None:
        explain_rule = args.explain.strip().upper()
        if explain_rule not in set(ALL_RULE_IDS) | set(PROJECT_RULE_IDS):
            print(f"error: unknown rule id: {args.explain}", file=sys.stderr)
            return 2

    cache_path = None if args.no_index_cache else args.index_cache
    stats: Dict[str, object] = {}

    # --graph needs only phase 1
    if args.graph is not None:
        index, index_stats = build_index(INDEX_ROOTS, cache_path=cache_path)
        stats["index"] = index_stats
        print(
            render_graph_dot(index)
            if args.graph == "dot"
            else render_graph_json(index)
        )
        if args.stats:
            print(f"segugio-lint stats: {stats}", file=sys.stderr)
        return 0

    explicit_targets = bool(args.targets)
    run_project = not args.no_project and (
        not explicit_targets or explain_rule in PROJECT_RULE_IDS
    )

    # ------------------------------ per-file phase -------------------- #
    t0 = time.perf_counter()
    findings: List[Finding] = []
    scanned_paths: Set[str] = set()
    files_scanned = 0
    for target in args.targets if args.targets else _default_targets():
        if os.path.isdir(target):
            batch, count = engine.lint_tree(
                target, package_root=_package_root_for(target)
            )
            files_scanned += count
        elif os.path.isfile(target):
            report_path = os.path.relpath(target).replace(os.sep, "/")
            batch = engine.lint_file(
                target, _package_root_for(target), report_path
            )
            files_scanned += 1
        else:
            print(f"error: no such file or directory: {target}", file=sys.stderr)
            return 2
        if _determinism_only(target):
            batch = [f for f in batch if f.rule in DETERMINISM_ONLY_RULES]
        findings.extend(batch)
    scanned_paths.update(f.path for f in findings)
    scanned_paths.update(_scanned_tree_paths(args.targets or _default_targets()))
    stats["per_file_seconds"] = round(time.perf_counter() - t0, 6)

    # ------------------------------ whole-program phase --------------- #
    if run_project:
        t1 = time.perf_counter()
        index, index_stats = build_index(INDEX_ROOTS, cache_path=cache_path)
        project_findings = run_project_rules(index, select=None)
        project_findings = [
            f
            for f in project_findings
            if not (
                _determinism_only(f.path)
                and f.rule not in DETERMINISM_ONLY_PROJECT_RULES
            )
        ]
        findings.extend(project_findings)
        scanned_paths.update(index.files)
        stats["index"] = index_stats
        stats["project_seconds"] = round(time.perf_counter() - t1, 6)
    stats["total_seconds"] = round(time.perf_counter() - t0, 6)

    if select is not None:
        findings = [f for f in findings if f.rule in select]
    findings.sort(key=Finding.sort_key)

    # ------------------------------ baseline -------------------------- #
    if args.write_baseline:
        existing_reasons = {}
        preserved = []
        if os.path.isfile(args.baseline):
            try:
                previous = load_baseline(args.baseline)
                existing_reasons = {
                    entry.key(): entry.reason for entry in previous
                }
                # a partial run must not truncate entries it never scanned
                preserved = [
                    Finding(
                        path=e.path,
                        line=0,
                        col=0,
                        rule=e.rule,
                        message="",
                        snippet=e.snippet,
                    )
                    for e in previous
                    if e.path not in scanned_paths and os.path.exists(e.path)
                ]
            except LintConfigError:
                pass  # rewriting a corrupt baseline from scratch is the point
        combined = findings + preserved
        with open(args.baseline, "w", encoding="utf-8") as stream:
            stream.write(render_baseline(combined, existing_reasons))
        n = len({(f.rule, f.path, f.snippet) for f in combined})
        print(f"wrote {args.baseline}: {n} entr{'y' if n == 1 else 'ies'}")
        return 0

    stale = []
    if not args.no_baseline and os.path.isfile(args.baseline):
        try:
            entries = load_baseline(args.baseline)
        except LintConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, entries, scanned_paths)

    # ------------------------------ report ---------------------------- #
    if explain_rule is not None:
        print(render_explain(findings, explain_rule))
    else:
        print(
            render(
                args.format,
                findings,
                stale,
                files_scanned,
                stats if args.format == "json" else None,
            )
        )
    if args.stats:
        print(f"segugio-lint stats: {stats}", file=sys.stderr)
    errors = [f for f in findings if f.severity == "error"]
    return 1 if errors or stale else 0


def _scanned_tree_paths(targets: List[str]) -> Set[str]:
    """Every ``.py`` report path under the scanned targets (for baseline
    scope awareness — findings alone miss clean files)."""
    paths: Set[str] = set()
    for target in targets:
        if os.path.isfile(target):
            paths.add(os.path.relpath(target).replace(os.sep, "/"))
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in filenames:
                if name.endswith(".py"):
                    paths.add(
                        os.path.relpath(os.path.join(dirpath, name)).replace(
                            os.sep, "/"
                        )
                    )
    return paths


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away mid-report (e.g. `--graph dot | head`); the
        # truncation was the reader's choice, not a lint failure
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)

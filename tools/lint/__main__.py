"""Command-line entry point: ``python -m tools.lint`` from the repo root.

Exit codes: 0 = clean (modulo baseline), 1 = findings or stale baseline
entries, 2 = usage/configuration error (bad baseline file, bad target).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from tools.lint.baseline import apply_baseline, load_baseline, render_baseline
from tools.lint.engine import Engine, Finding, LintConfigError
from tools.lint.reporting import FORMATS, render
from tools.lint.rules import build_rules

DEFAULT_BASELINE = os.path.join("tools", "lint", "baseline.json")

#: trees outside the package that still carry the determinism contract:
#: benchmark numbers and example transcripts must be reproducible, but
#: the rest of the library rule set (layering, annotations, print) is
#: deliberately out of scope for scripts.
DETERMINISM_ONLY_TREES = ("benchmarks", "examples")
DETERMINISM_ONLY_RULES = frozenset({"SEG000", "SEG002"})


def _determinism_only(target: str) -> bool:
    parts = os.path.normpath(os.path.relpath(target)).split(os.sep)
    return bool(parts) and parts[0] in DETERMINISM_ONLY_TREES


def _default_targets() -> List[str]:
    """``src`` plus any determinism-only trees present in the checkout."""
    return ["src"] + [d for d in DETERMINISM_ONLY_TREES if os.path.isdir(d)]


def _package_root_for(target: str) -> str:
    """Directory that anchors dotted module names for files under ``target``.

    ``src`` (or anything containing a ``src`` path component) anchors at
    that component so ``src/repro/core/x.py`` → ``repro.core.x``; other
    targets anchor at themselves.
    """
    parts = os.path.normpath(target).split(os.sep)
    if "src" in parts:
        idx = parts.index("src")
        return os.sep.join(parts[: idx + 1]) or "src"
    return target if os.path.isdir(target) else os.path.dirname(target) or "."


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="segugio-lint: enforce determinism, layering, and "
        "telemetry contracts over the source tree",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=None,
        help="files or directories to lint (default: src plus, with only "
        "the determinism rule SEG002, benchmarks/ and examples/)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of documented intentional findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    engine = Engine(build_rules())

    if args.list_rules:
        for rule in engine.rules:
            print(f"{rule.rule_id}  {rule.name}: {rule.rationale}")
        return 0

    findings: List[Finding] = []
    files_scanned = 0
    for target in args.targets if args.targets else _default_targets():
        if os.path.isdir(target):
            batch, count = engine.lint_tree(
                target, package_root=_package_root_for(target)
            )
            files_scanned += count
        elif os.path.isfile(target):
            report_path = os.path.relpath(target).replace(os.sep, "/")
            batch = engine.lint_file(
                target, _package_root_for(target), report_path
            )
            files_scanned += 1
        else:
            print(f"error: no such file or directory: {target}", file=sys.stderr)
            return 2
        if _determinism_only(target):
            batch = [f for f in batch if f.rule in DETERMINISM_ONLY_RULES]
        findings.extend(batch)
    findings.sort(key=Finding.sort_key)

    if args.write_baseline:
        existing_reasons = {}
        if os.path.isfile(args.baseline):
            try:
                existing_reasons = {
                    entry.key(): entry.reason for entry in load_baseline(args.baseline)
                }
            except LintConfigError:
                pass  # rewriting a corrupt baseline from scratch is the point
        with open(args.baseline, "w", encoding="utf-8") as stream:
            stream.write(render_baseline(findings, existing_reasons))
        print(
            f"wrote {args.baseline}: {len(findings)} entr"
            f"{'y' if len(findings) == 1 else 'ies'}"
        )
        return 0

    stale = []
    if not args.no_baseline and os.path.isfile(args.baseline):
        try:
            entries = load_baseline(args.baseline)
        except LintConfigError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, entries)

    print(render(args.format, findings, stale, files_scanned))
    return 1 if findings or stale else 0


if __name__ == "__main__":
    sys.exit(main())

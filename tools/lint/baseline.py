"""Baseline handling: explicit, documented suppression of known findings.

The baseline is a checked-in JSON file listing findings that are
*deliberate* (each entry carries a ``reason``). Matching is content-based
— ``(rule, path, stripped source line)`` — not line-number-based, so
unrelated edits above a baselined site do not expire it, while any edit
to the offending line itself does (and forces the author to re-justify
or fix it).

Semantics enforced by :func:`apply_baseline`:

* **suppress** — findings matching an entry are dropped from the report;
* **expire** — entries matching no current finding are *stale* and fail
  the run until removed, so the baseline can only shrink silently, never
  rot.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from tools.lint.engine import Finding, LintConfigError

BASELINE_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    reason: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "reason": self.reason,
        }


def load_baseline(path: str) -> List[BaselineEntry]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except FileNotFoundError:
        raise LintConfigError(f"baseline file not found: {path}")
    except json.JSONDecodeError as error:
        raise LintConfigError(f"baseline file {path} is not valid JSON: {error}")
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise LintConfigError(
            f"baseline file {path} must be an object with version={BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    seen: set = set()
    for raw in payload.get("entries", []):
        try:
            entry = BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                snippet=raw["snippet"],
                reason=raw.get("reason", ""),
            )
        except (TypeError, KeyError) as error:
            raise LintConfigError(f"malformed baseline entry in {path}: {raw!r} ({error})")
        if entry.key() in seen:
            raise LintConfigError(f"duplicate baseline entry in {path}: {entry.key()}")
        seen.add(entry.key())
        entries.append(entry)
    return entries


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[BaselineEntry],
    scanned_paths: Optional[AbstractSet[str]] = None,
) -> Tuple[List[Finding], List[BaselineEntry]]:
    """Split findings against the baseline → (kept findings, stale entries).

    An entry suppresses every finding with the same ``(rule, path,
    snippet)`` — duplicate identical lines in one file are deliberate
    duplicates of the same decision.

    Staleness depends on scope. With ``scanned_paths=None`` (the historic
    behavior) every entry that suppressed nothing is stale. When the
    caller passes the set of paths this run actually scanned, an unmatched
    entry is stale only if its file was scanned (content mismatch) **or**
    its file no longer exists on disk (the finding can never match again);
    entries for unscanned-but-present files are kept silently, so a
    partial run (``python -m tools.lint src/repro/core``) cannot expire
    entries it never looked at.
    """
    table = {entry.key(): entry for entry in entries}
    used: set = set()
    kept: List[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        if key in table:
            used.add(key)
        else:
            kept.append(finding)
    stale: List[BaselineEntry] = []
    for entry in entries:
        if entry.key() in used:
            continue
        if scanned_paths is None or entry.path in scanned_paths:
            stale.append(entry)
        elif not os.path.exists(entry.path):
            # never scanned, and it never can be: the file is gone
            stale.append(entry)
    return kept, stale


def render_baseline(
    findings: Sequence[Finding], reasons: Optional[Dict[Tuple[str, str, str], str]] = None
) -> str:
    """Serialize ``findings`` as a fresh baseline document (sorted, stable)."""
    reasons = reasons or {}
    entries: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        entries[key] = BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            snippet=finding.snippet,
            reason=reasons.get(key, "TODO: document why this finding is intentional"),
        )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entries[key].to_dict() for key in sorted(entries)],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"

# Developer entry points (all zero-dependency beyond the dev extras).
#
#   make lint        — byte-compile + segugio-lint, both phases (the CI gate)
#   make lint-tests  — determinism hygiene (SEG002) over tests/ (CI lint-tests)
#   make graph       — whole-program import/call graph as DOT on stdout
#   make test        — tier-1 suite
#   make check       — lint + lint-tests + test

PYTHON ?= python

.PHONY: lint lint-tests graph test check

lint:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m tools.lint

lint-tests:
	$(PYTHON) -m tools.lint --select SEG002 tests

graph:
	$(PYTHON) -m tools.lint --graph dot

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

check: lint lint-tests test

# Developer entry points (all zero-dependency beyond the dev extras).
#
#   make lint   — byte-compile + segugio-lint (same gate CI runs)
#   make test   — tier-1 suite
#   make check  — both

PYTHON ?= python

.PHONY: lint test check

lint:
	$(PYTHON) -m compileall -q src
	$(PYTHON) -m tools.lint

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

check: lint test

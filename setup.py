"""Legacy shim so `python setup.py develop` works on offline machines
without the `wheel` package (PEP 660 editable installs require it)."""

from setuptools import setup

setup()

"""Popular-domain whitelists derived from a daily ranking archive.

The paper's benign ground truth (§III) is built in three steps:

1. Collect the Alexa top-1M list every day for one year.
2. Keep only effective 2LDs that appeared in the top list *every* day
   ("consistently top"), which filters out briefly-popular malicious domains.
3. Remove e2LDs that offer free registration of subdomains (dynamic DNS,
   blog hosting, ...), whose subdomains are routinely abused — while
   acknowledging that this filtering is imperfect and some noise remains
   (the source of the false-positive analysis in Table III).

:class:`RankingArchive` models step 1-2; :class:`DomainWhitelist` models the
final filtered e2LD set and FQD membership checks via the public-suffix list.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, TextIO, Union

from repro.dns.names import normalize_domain
from repro.dns.publicsuffix import PublicSuffixList
from repro.utils.errors import FeedFormatError


def parse_whitelist_line(
    line: str, *, source: str = "whitelist", lineno: int = 0
) -> str:
    """Parse one e2LD line, or raise a located :class:`FeedFormatError`.

    A valid line is a single domain token; embedded whitespace or tabs
    (the signature of a truncated or mis-delimited file) and empty domain
    names raise with the file name and 1-based line number.
    """
    token = line.strip()
    if len(token.split()) != 1 or "\t" in token:
        raise FeedFormatError(
            f"expected a single domain per line, got {line!r}",
            source=source,
            line=lineno,
            category="bad_columns",
        )
    try:
        return normalize_domain(token)
    except ValueError as error:
        raise FeedFormatError(
            str(error), source=source, line=lineno, category="bad_domain"
        ) from None


class RankingArchive:
    """An archive of daily popular-e2LD snapshots (an Alexa-style feed)."""

    def __init__(self) -> None:
        self._days: Dict[int, Set[str]] = {}

    def record_day(self, day: int, e2lds: Iterable[str]) -> None:
        """Store the top list observed on *day* (replaces a prior snapshot)."""
        self._days[day] = {normalize_domain(d) for d in e2lds}

    def days(self) -> Set[int]:
        return set(self._days)

    def snapshot(self, day: int) -> Set[str]:
        if day not in self._days:
            raise KeyError(f"no ranking snapshot for day {day}")
        return set(self._days[day])

    def consistent_top(self, min_days: Optional[int] = None) -> Set[str]:
        """e2LDs present in (at least) *min_days* snapshots.

        With the default ``min_days=None`` an e2LD must appear in *every*
        snapshot, reproducing the paper's "consistently appeared in the top
        one-million list for the entire year" criterion.
        """
        if not self._days:
            return set()
        required = len(self._days) if min_days is None else min_days
        counts: Dict[str, int] = {}
        for snapshot in self._days.values():
            for e2ld in snapshot:
                counts[e2ld] = counts.get(e2ld, 0) + 1
        return {e2ld for e2ld, count in counts.items() if count >= required}

    def __len__(self) -> int:
        return len(self._days)

    def __repr__(self) -> str:
        return f"RankingArchive(days={len(self._days)})"


class DomainWhitelist:
    """A set of benign effective 2LDs with FQD membership checks."""

    def __init__(
        self,
        e2lds: Iterable[str],
        psl: Optional[PublicSuffixList] = None,
        name: str = "whitelist",
    ) -> None:
        self.name = name
        self._psl = psl if psl is not None else PublicSuffixList()
        self._e2lds = {normalize_domain(d) for d in e2lds}

    @classmethod
    def from_archive(
        cls,
        archive: RankingArchive,
        free_registration_e2lds: Iterable[str] = (),
        psl: Optional[PublicSuffixList] = None,
        min_days: Optional[int] = None,
        name: str = "whitelist",
    ) -> "DomainWhitelist":
        """Build the paper's whitelist: consistent-top minus free-registration.

        ``free_registration_e2lds`` is the (deliberately incomplete, in the
        synthetic scenarios) list of known subdomain-hosting services to
        exclude.
        """
        consistent = archive.consistent_top(min_days=min_days)
        excluded = {normalize_domain(d) for d in free_registration_e2lds}
        return cls(consistent - excluded, psl=psl, name=name)

    @property
    def e2lds(self) -> Set[str]:
        return set(self._e2lds)

    def contains_e2ld(self, e2ld: str) -> bool:
        return normalize_domain(e2ld) in self._e2lds

    def is_whitelisted(self, fqd: str) -> bool:
        """True when the FQD's effective 2LD is in the whitelist.

        Mirrors the paper's example: ``www.bbc.co.uk`` is whitelisted because
        its e2LD ``bbc.co.uk`` is in the list.
        """
        e2ld = self._psl.e2ld_or_self(fqd)
        return e2ld in self._e2lds

    def remove(self, e2lds: Iterable[str]) -> "DomainWhitelist":
        """A copy with the given e2LDs removed (used by the Notos setup)."""
        removed = {normalize_domain(d) for d in e2lds}
        return DomainWhitelist(
            self._e2lds - removed, psl=self._psl, name=self.name
        )

    def restrict_to(self, e2lds: Iterable[str]) -> "DomainWhitelist":
        """A copy intersected with the given e2LDs (e.g. top-100K only)."""
        kept = {normalize_domain(d) for d in e2lds}
        return DomainWhitelist(
            self._e2lds & kept, psl=self._psl, name=self.name
        )

    # ------------------------------------------------------------------ #
    # serialization (one e2LD per line)
    # ------------------------------------------------------------------ #

    def save(self, stream_or_path: Union[str, TextIO]) -> None:
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path, "w") if own else stream_or_path
        try:
            for e2ld in sorted(self._e2lds):
                stream.write(e2ld + "\n")
        finally:
            if own:
                stream.close()

    @classmethod
    def load(
        cls,
        stream_or_path: Union[str, TextIO],
        psl: Optional[PublicSuffixList] = None,
        name: str = "whitelist",
    ) -> "DomainWhitelist":
        """Read one e2LD per line; blanks and ``#`` comments are skipped.

        Malformed lines raise :class:`FeedFormatError` naming the file and
        1-based line number.
        """
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path) if own else stream_or_path
        source = (
            stream_or_path
            if own
            else getattr(stream, "name", "<whitelist stream>")
        )
        try:
            e2lds = []
            for lineno, line in enumerate(stream, start=1):
                if not line.strip() or line.lstrip().startswith("#"):
                    continue
                e2lds.append(
                    parse_whitelist_line(line, source=source, lineno=lineno)
                )
            return cls(e2lds, psl=psl, name=name)
        finally:
            if own:
                stream.close()

    def __contains__(self, fqd: str) -> bool:
        return self.is_whitelisted(fqd)

    def __iter__(self) -> Iterator[str]:
        return iter(self._e2lds)

    def __len__(self) -> int:
        return len(self._e2lds)

    def __repr__(self) -> str:
        return f"DomainWhitelist(name={self.name!r}, e2lds={len(self)})"

"""Database of network traces from sandboxed malware executions.

The paper vets candidate false positives against "a separate large database
of malware network traces obtained by executing malware samples in a sandbox"
(Table III bottom row) and uses the same evidence to break down Notos's false
positives (Table IV).  This substrate records, per executed sample, the
domains it queried and the IPs it contacted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.dns.names import normalize_domain
from repro.dns.records import prefix24


@dataclass(frozen=True)
class SandboxRun:
    """One malware-sample execution.

    Attributes:
        sample_id: Stable identifier (e.g. content hash) of the sample.
        family: Malware family label, if known.
        domains: Domains the sample queried during execution.
        ips: IPs the sample contacted directly, as 32-bit integers.
    """

    sample_id: str
    family: Optional[str]
    domains: Tuple[str, ...] = field(default_factory=tuple)
    ips: Tuple[int, ...] = field(default_factory=tuple)


class SandboxTraceDB:
    """Aggregated evidence from many sandbox runs."""

    def __init__(self) -> None:
        self._runs: Dict[str, SandboxRun] = {}
        self._domains: Set[str] = set()
        self._ips: Set[int] = set()
        self._prefixes: Set[int] = set()

    def add_run(
        self,
        sample_id: str,
        domains: Iterable[str] = (),
        ips: Iterable[int] = (),
        family: Optional[str] = None,
    ) -> None:
        normalized = tuple(sorted({normalize_domain(d) for d in domains}))
        ip_tuple = tuple(sorted({int(ip) for ip in ips}))
        run = SandboxRun(sample_id, family, normalized, ip_tuple)
        self._runs[sample_id] = run
        self._domains.update(normalized)
        self._ips.update(ip_tuple)
        self._prefixes.update(prefix24(ip) for ip in ip_tuple)

    # ------------------------------------------------------------------ #
    # evidence queries
    # ------------------------------------------------------------------ #

    def domain_queried_by_malware(self, domain: str) -> bool:
        """Was the domain queried by any executed sample?"""
        return normalize_domain(domain) in self._domains

    def ip_contacted_by_malware(self, ip: int) -> bool:
        """Was the exact IP contacted directly by any sample?"""
        return int(ip) in self._ips

    def prefix24_contacted_by_malware(self, ip: int) -> bool:
        """Does the IP's /24 contain an IP contacted by any sample?"""
        return prefix24(int(ip)) in self._prefixes

    def queried_domains(self) -> Set[str]:
        return set(self._domains)

    def contacted_ips(self) -> Set[int]:
        return set(self._ips)

    def runs(self) -> Tuple[SandboxRun, ...]:
        return tuple(self._runs.values())

    def __len__(self) -> int:
        return len(self._runs)

    def __repr__(self) -> str:
        return (
            f"SandboxTraceDB(runs={len(self._runs)}, "
            f"domains={len(self._domains)}, ips={len(self._ips)})"
        )

"""Malware C&C domain blacklists.

Models both the commercial blacklist the paper uses (tens of thousands of
vetted C&C domains with malware-family labels, each with the day it was
added) and the smaller public blacklists (§IV-E).  Matching is on the entire
fully-qualified domain-name string, exactly as in the paper ("we check if its
entire domain name string matches a domain in our C&C blacklist").

Time-stamped additions are what enable the early-detection experiment
(Fig. 11): a domain can be an *eventual* blacklist entry while still being
unknown to any ``as_of_day`` snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, TextIO, Union

from repro.dns.names import normalize_domain
from repro.utils.errors import FeedFormatError


def parse_blacklist_line(
    line: str, *, source: str = "blacklist", lineno: int = 0
) -> "tuple[str, int, Optional[str]]":
    """Parse one ``domain\\tadded_day\\tfamily`` record, or raise located.

    Raises :class:`FeedFormatError` naming *source* and the 1-based
    *lineno* for wrong column counts, empty domains, and non-numeric or
    negative addition days.
    """
    parts = line.split("\t")
    if len(parts) != 3:
        raise FeedFormatError(
            f"expected 3 tab-separated fields "
            f"(domain, added_day, family), got {len(parts)}",
            source=source,
            line=lineno,
            category="bad_columns",
        )
    domain, added_text, family = parts
    if not domain:
        raise FeedFormatError(
            "domain field must be non-empty",
            source=source,
            line=lineno,
            category="empty_field",
        )
    try:
        added_day = int(added_text)
    except ValueError:
        raise FeedFormatError(
            f"non-numeric added_day {added_text!r}",
            source=source,
            line=lineno,
            category="bad_day",
        ) from None
    if added_day < 0:
        raise FeedFormatError(
            f"added_day must be non-negative, got {added_day}",
            source=source,
            line=lineno,
            category="bad_day",
        )
    return domain, added_day, family or None


@dataclass(frozen=True)
class BlacklistEntry:
    """One blacklisted C&C domain.

    Attributes:
        domain: Normalized FQD.
        family: Malware family (or finer-grained criminal-group) label, if
            the feed provides one.
        added_day: Absolute day the entry appeared in the feed.
    """

    domain: str
    family: Optional[str]
    added_day: int


class CncBlacklist:
    """A time-stamped, family-labeled C&C domain blacklist."""

    def __init__(self, name: str = "blacklist") -> None:
        self.name = name
        self._entries: Dict[str, BlacklistEntry] = {}

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(
        self, domain: str, added_day: int, family: Optional[str] = None
    ) -> None:
        """Add an entry; the earliest addition day wins on duplicates."""
        domain = normalize_domain(domain)
        existing = self._entries.get(domain)
        if existing is None or added_day < existing.added_day:
            self._entries[domain] = BlacklistEntry(domain, family, added_day)

    def snapshot(self, as_of_day: int, name: Optional[str] = None) -> "CncBlacklist":
        """A frozen copy containing only entries published by *as_of_day*.

        Used by comparison experiments that must pin a system's ground-truth
        knowledge to its training day (paper §V: "both Notos and Segugio
        were trained using only ground truth gathered before t_train").
        """
        frozen = CncBlacklist(name or f"{self.name}@{as_of_day}")
        for entry in self:
            if entry.added_day <= as_of_day:
                frozen.add(entry.domain, entry.added_day, entry.family)
        return frozen

    def union(self, other: "CncBlacklist", name: Optional[str] = None) -> "CncBlacklist":
        """Merge two blacklists (earliest addition day wins per domain)."""
        merged = CncBlacklist(name or f"{self.name}+{other.name}")
        for entry in self:
            merged.add(entry.domain, entry.added_day, entry.family)
        for entry in other:
            merged.add(entry.domain, entry.added_day, entry.family)
        return merged

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def contains(self, domain: str, as_of_day: Optional[int] = None) -> bool:
        """Whole-string match; restricted to the feed snapshot *as_of_day*."""
        entry = self._entries.get(normalize_domain(domain))
        if entry is None:
            return False
        return as_of_day is None or entry.added_day <= as_of_day

    def entry(self, domain: str) -> Optional[BlacklistEntry]:
        return self._entries.get(normalize_domain(domain))

    def added_day(self, domain: str) -> Optional[int]:
        entry = self.entry(domain)
        return None if entry is None else entry.added_day

    def family_of(self, domain: str) -> Optional[str]:
        entry = self.entry(domain)
        return None if entry is None else entry.family

    def domains(self, as_of_day: Optional[int] = None) -> Set[str]:
        """All blacklisted domains known by *as_of_day* (or ever)."""
        if as_of_day is None:
            return set(self._entries)
        return {
            domain
            for domain, entry in self._entries.items()
            if entry.added_day <= as_of_day
        }

    def families(self) -> Set[str]:
        """Distinct family labels present in the feed."""
        return {
            entry.family
            for entry in self._entries.values()
            if entry.family is not None
        }

    def domains_by_family(self) -> Dict[str, List[str]]:
        """Map family label -> sorted list of its domains (labeled only)."""
        grouped: Dict[str, List[str]] = {}
        for entry in self._entries.values():
            if entry.family is not None:
                grouped.setdefault(entry.family, []).append(entry.domain)
        for domains in grouped.values():
            domains.sort()
        return grouped

    def restricted_to_families(
        self, families: Iterable[str], name: Optional[str] = None
    ) -> "CncBlacklist":
        """A copy containing only entries of the given families."""
        wanted = set(families)
        subset = CncBlacklist(name or f"{self.name}[families]")
        for entry in self._entries.values():
            if entry.family in wanted:
                subset.add(entry.domain, entry.added_day, entry.family)
        return subset

    # ------------------------------------------------------------------ #
    # serialization (TSV: domain, added_day, family)
    # ------------------------------------------------------------------ #

    def save(self, stream_or_path: Union[str, TextIO]) -> None:
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path, "w") if own else stream_or_path
        try:
            for entry in sorted(self._entries.values(), key=lambda e: e.domain):
                family = entry.family if entry.family is not None else ""
                stream.write(f"{entry.domain}\t{entry.added_day}\t{family}\n")
        finally:
            if own:
                stream.close()

    @classmethod
    def load(
        cls, stream_or_path: Union[str, TextIO], name: str = "blacklist"
    ) -> "CncBlacklist":
        """Read a TSV feed; blank lines and ``#`` comments are skipped.

        Malformed records raise :class:`FeedFormatError` naming the file and
        1-based line number, never a bare unpack or ``int()`` error.
        """
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path) if own else stream_or_path
        source = (
            stream_or_path
            if own
            else getattr(stream, "name", "<blacklist stream>")
        )
        blacklist = cls(name)
        try:
            for lineno, line in enumerate(stream, start=1):
                line = line.rstrip("\n")
                if not line.strip() or line.startswith("#"):
                    continue
                domain, added_day, family = parse_blacklist_line(
                    line, source=source, lineno=lineno
                )
                blacklist.add(domain, added_day, family)
            return blacklist
        finally:
            if own:
                stream.close()

    def __contains__(self, domain: str) -> bool:
        return self.contains(domain)

    def __iter__(self) -> Iterator[BlacklistEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"CncBlacklist(name={self.name!r}, entries={len(self)})"

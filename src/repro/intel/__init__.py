"""Ground-truth substrates: C&C blacklists, domain whitelists, sandbox traces.

The paper seeds Segugio's graph labels from (a) a commercial C&C blacklist
with malware-family labels and time-stamped additions, (b) public blacklists
(abuse.ch trackers etc.), and (c) an Alexa-derived whitelist of effective
2LDs that stayed in the top-1M list for a full year.  A sandbox-trace
database is used to vet false positives (Table III / Table IV).  This package
implements each of those as a first-class substrate, populated either from
files or from the synthetic scenario generator.
"""

from repro.intel.blacklist import BlacklistEntry, CncBlacklist
from repro.intel.sandbox import SandboxTraceDB
from repro.intel.whitelist import DomainWhitelist, RankingArchive

__all__ = [
    "BlacklistEntry",
    "CncBlacklist",
    "DomainWhitelist",
    "RankingArchive",
    "SandboxTraceDB",
]

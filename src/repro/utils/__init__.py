"""Shared low-level utilities: seeded RNG streams, string interning, timing.

These helpers underpin the deterministic simulation substrate.  Everything in
:mod:`repro.synth` draws randomness through :class:`repro.utils.rng.RngFactory`
so an entire multi-day, multi-ISP scenario is reproducible from one seed.
"""

from repro.utils.ids import Interner
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch

__all__ = ["Interner", "RngFactory", "Stopwatch"]

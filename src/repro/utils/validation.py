"""Argument validation helpers shared across the library."""

from __future__ import annotations

from typing import Any

import numpy as np


def require_positive(value: float, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(value: float, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_fraction(value: float, name: str) -> None:
    """Require value in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value}")


def require_in(value: Any, options: tuple, name: str) -> None:
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")


def as_2d_float_array(x: Any, name: str = "X") -> np.ndarray:
    """Coerce to a 2-D float64 array, raising a clear error otherwise."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.size and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def as_1d_int_array(y: Any, name: str = "y") -> np.ndarray:
    """Coerce to a 1-D int64 array, raising a clear error otherwise."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr.astype(np.int64)


def check_same_length(a: np.ndarray, b: np.ndarray, names: str = "X, y") -> None:
    if len(a) != len(b):
        raise ValueError(
            f"{names} must have matching lengths, got {len(a)} and {len(b)}"
        )

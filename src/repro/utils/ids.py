"""String interning for graph node identities.

The machine-domain graph holds millions of node identifiers.  Storing and
comparing Python strings at every step would dominate run time, so every
subsystem converts names to dense integer ids through an :class:`Interner`
once, and all downstream computation (adjacency, pruning, feature extraction)
is NumPy integer arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np


class Interner:
    """A bidirectional string <-> dense-int mapping.

    Ids are assigned sequentially starting at 0, in first-seen order, which
    makes them usable directly as indices into per-node NumPy arrays.
    """

    __slots__ = ("_to_id", "_to_name")

    def __init__(self, names: Optional[Iterable[str]] = None) -> None:
        self._to_id: Dict[str, int] = {}
        self._to_name: List[str] = []
        if names is not None:
            for name in names:
                self.intern(name)

    def intern(self, name: str) -> int:
        """Return the id for *name*, assigning a new one if unseen."""
        existing = self._to_id.get(name)
        if existing is not None:
            return existing
        new_id = len(self._to_name)
        self._to_id[name] = new_id
        self._to_name.append(name)
        return new_id

    def intern_many(self, names: Iterable[str]) -> np.ndarray:
        """Intern every name and return the ids as an int64 array."""
        return np.fromiter(
            (self.intern(name) for name in names), dtype=np.int64
        )

    def lookup(self, name: str) -> Optional[int]:
        """Return the id for *name*, or None if it was never interned."""
        return self._to_id.get(name)

    def name(self, node_id: int) -> str:
        return self._to_name[node_id]

    def names(self, node_ids: Iterable[int]) -> List[str]:
        return [self._to_name[node_id] for node_id in node_ids]

    def __contains__(self, name: str) -> bool:
        return name in self._to_id

    def __len__(self) -> int:
        return len(self._to_name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._to_name)

    def __repr__(self) -> str:
        return f"Interner(size={len(self)})"

"""Deterministic random-number streams.

A large simulation needs *independent* random streams for each subsystem
(domain universe, hosting layout, per-family malware behavior, per-day user
traffic...).  Seeding each stream from a single root seed plus a stable string
key keeps results reproducible even when subsystems are added, removed, or
reordered: the stream for ``("isp1", "day", 3)`` never depends on how many
other streams were created before it.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

StreamKey = Union[str, int, Tuple[Union[str, int], ...]]


def _key_bytes(key: StreamKey) -> bytes:
    if isinstance(key, tuple):
        return b"\x1f".join(_key_bytes(part) for part in key)
    if isinstance(key, int):
        return b"i" + str(key).encode("ascii")
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    raise TypeError(f"unsupported stream key component: {key!r}")


class RngFactory:
    """Factory of named, mutually independent NumPy random generators.

    >>> rngs = RngFactory(seed=7)
    >>> a = rngs.stream("alpha").integers(0, 100, size=3)
    >>> b = RngFactory(seed=7).stream("alpha").integers(0, 100, size=3)
    >>> (a == b).all()
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError("seed must be an int")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream_seed(self, key: StreamKey) -> int:
        """Derive a 64-bit child seed for *key* from the root seed."""
        digest = hashlib.blake2b(
            _key_bytes(key),
            digest_size=8,
            key=str(self._seed).encode("ascii"),
        ).digest()
        return int.from_bytes(digest, "little")

    def stream(self, key: StreamKey) -> np.random.Generator:
        """Return a fresh generator for *key* (same key -> same sequence)."""
        return np.random.Generator(np.random.PCG64(self.stream_seed(key)))

    def child(self, key: StreamKey) -> "RngFactory":
        """Return a sub-factory whose streams are namespaced under *key*."""
        return RngFactory(self.stream_seed(key))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"

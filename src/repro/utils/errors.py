"""Exception types shared by the ingestion and runtime layers.

These live under :mod:`repro.utils` (not :mod:`repro.runtime`) so that the
low-level parsers in :mod:`repro.dns` and :mod:`repro.intel` can raise them
without importing the runtime package, which itself imports those parsers.

All of them subclass :class:`ValueError` so existing callers that catch
``ValueError`` keep working; new code can catch the precise type.
"""

from __future__ import annotations

from typing import Optional


class FeedFormatError(ValueError):
    """A feed or trace file contains a record that cannot be parsed.

    Carries the *source* (file name or stream description) and the 1-based
    *line* number of the offending record, so a truncated ``trace.tsv`` is
    distinguishable from a schema bug at a glance.

    Also carries a machine-readable *category* (``bad_columns``,
    ``bad_ipv4``, ...) which the lenient ingest path uses as its quarantine
    counter key.
    """

    def __init__(
        self,
        message: str,
        *,
        source: Optional[str] = None,
        line: Optional[int] = None,
        category: str = "bad_record",
    ) -> None:
        self.source = source
        self.line = line
        self.category = category
        self.detail = message  # unprefixed, for quarantine records
        location = ""
        if source is not None and line is not None:
            location = f"{source}:{line}: "
        elif source is not None:
            location = f"{source}: "
        super().__init__(f"{location}{message}")


class FormatVersionError(ValueError):
    """An on-disk artifact was written by a newer (or unknown) format.

    Names both the found and the supported version so the operator knows
    whether to upgrade the library or re-export the data.
    """

    def __init__(self, found: object, supported: int, *, what: str = "dataset") -> None:
        self.found = found
        self.supported = supported
        super().__init__(
            f"{what} format version {found!r} is not supported by this "
            f"library (supports version {supported}); upgrade the library "
            f"or re-export the data with a matching version"
        )


class IngestError(ValueError):
    """Loading an observation failed loudly (error-rate cap, torn files).

    Raised by :mod:`repro.runtime.ingest` when a directory cannot be loaded
    even leniently — e.g. the malformed-record rate exceeds the configured
    cap, or a required file is missing entirely.
    """


class CheckpointError(ValueError):
    """A tracker checkpoint is corrupted, truncated, or incompatible."""

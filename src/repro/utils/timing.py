"""Lightweight phase timing for the performance experiments (paper §IV-G).

The paper reports wall-clock cost per pipeline phase (graph building,
labeling, pruning, training, classification).  :class:`Stopwatch` collects
named phase durations so the efficiency benchmark can print the same
breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class Stopwatch:
    """Accumulates named wall-clock phase durations."""

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one named phase (re-entrant accumulates)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            if name not in self._elapsed:
                self._order.append(name)
                self._elapsed[name] = 0.0
            self._elapsed[name] += duration

    def elapsed(self, name: str) -> float:
        """Total seconds recorded for *name* (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        return sum(self._elapsed.values())

    def items(self) -> List[Tuple[str, float]]:
        """Phases in first-recorded order with their cumulative seconds."""
        return [(name, self._elapsed[name]) for name in self._order]

    def report(self) -> str:
        """Human-readable multi-line breakdown."""
        lines = [f"{name:<28s} {secs:9.3f}s" for name, secs in self.items()]
        lines.append(f"{'total':<28s} {self.total():9.3f}s")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Stopwatch({dict(self.items())})"

"""Lightweight phase timing (compatibility shim over :mod:`repro.obs`).

.. deprecated::
    :class:`Stopwatch` now lives in :mod:`repro.obs.tracing`, where each
    phase also feeds the ambient span tracer; this module re-exports it so
    existing callers (the §IV-G efficiency benchmark, ``Segugio.timings_``)
    keep working.  New code should instrument with
    :func:`repro.obs.tracing.current_tracer` spans instead of holding a
    private stopwatch — spans nest, carry attributes, and land in the run
    manifest.
"""

from __future__ import annotations

from repro.obs.tracing import Stopwatch

__all__ = ["Stopwatch"]

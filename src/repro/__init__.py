"""Segugio reproduction: behavior-based tracking of malware-control domains.

Reproduces *Segugio: Efficient Behavior-Based Tracking of Malware-Control
Domains in Large ISP Networks* (Rahbarinia, Perdisci, Antonakakis — DSN
2015) as a complete Python library:

* :mod:`repro.core` — the Segugio system itself (behavior graph, labeling,
  pruning rules R1-R4, the 11 features, label-hiding training, pipeline).
* :mod:`repro.dns`, :mod:`repro.pdns`, :mod:`repro.intel` — the substrates:
  DNS traces and the public-suffix list, passive-DNS history, blacklists,
  whitelists, sandbox traces.
* :mod:`repro.ml` — from-scratch Random Forest / logistic regression / ROC.
* :mod:`repro.synth` — the synthetic ISP-scale DNS world standing in for
  the paper's (unobtainable) ISP traces.
* :mod:`repro.baselines` — Notos-style reputation, loopy belief
  propagation, and co-occurrence baselines.
* :mod:`repro.eval` — experiment drivers regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import Scenario, Segugio

    scenario = Scenario.small(seed=7)
    train_ctx = scenario.context("isp1", scenario.eval_day(0))
    test_ctx = scenario.context("isp1", scenario.eval_day(5))

    model = Segugio().fit(train_ctx)
    report = model.classify(test_ctx)
    for domain, score in report.detections(threshold=0.9)[:10]:
        print(f"{score:5.2f}  {domain}")
"""

from repro.core import (
    DetectionReport,
    DomainTracker,
    ObservationContext,
    Segugio,
    SegugioConfig,
)
from repro.synth import Scenario

__version__ = "1.0.0"

__all__ = [
    "DetectionReport",
    "DomainTracker",
    "ObservationContext",
    "Scenario",
    "Segugio",
    "SegugioConfig",
    "__version__",
]

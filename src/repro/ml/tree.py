"""Histogram-based CART decision trees (Gini impurity).

Trees operate on pre-binned uint8 feature codes (see
:class:`repro.ml.preprocessing.BinMapper`).  At each node the split search
builds, per candidate feature, a weighted class histogram over the bins with
``np.bincount`` and scans all cut points with cumulative sums — O(bins)
rather than O(samples log samples) per feature, and all in NumPy.

The fitted tree is stored as flat arrays (feature, threshold bin, children,
leaf value) so prediction is a vectorized level-by-level descent over all
query rows at once.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import as_1d_int_array, check_same_length

_NO_FEATURE = -1


def _resolve_max_features(option: Union[str, int, None], n_features: int) -> int:
    if option is None:
        return n_features
    if option == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if option == "log2":
        return max(1, int(np.log2(n_features))) if n_features > 1 else 1
    if isinstance(option, int):
        if not 1 <= option <= n_features:
            raise ValueError(
                f"max_features={option} out of range [1, {n_features}]"
            )
        return option
    raise ValueError(f"unsupported max_features: {option!r}")


class DecisionTreeClassifier:
    """Binary CART on binned features; leaf values are P(class 1).

    Args:
        max_depth: Maximum tree depth (root = depth 0).
        min_samples_split: Do not split nodes with fewer (weighted count
            uses raw sample counts, not weights).
        min_samples_leaf: Reject splits producing a smaller child.
        max_features: Features examined per split: "sqrt", "log2", an int,
            or None for all.
        rng: Generator for the per-node feature subsampling (defaults to a
            fresh seed-0 generator so standalone trees are reproducible).
    """

    def __init__(
        self,
        max_depth: int = 14,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = rng if rng is not None else np.random.default_rng(0)

        # Flat representation, filled by fit().
        self.node_feature_: Optional[np.ndarray] = None
        self.node_threshold_: Optional[np.ndarray] = None
        self.node_left_: Optional[np.ndarray] = None
        self.node_right_: Optional[np.ndarray] = None
        self.node_value_: Optional[np.ndarray] = None
        self.n_features_: Optional[int] = None
        self.feature_gain_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #

    def fit(
        self,
        X_binned: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "DecisionTreeClassifier":
        """Fit on uint8 bin codes and binary labels."""
        if X_binned.dtype != np.uint8:
            raise TypeError("X_binned must be uint8 bin codes (use BinMapper)")
        y = as_1d_int_array(y)
        check_same_length(X_binned, y, "X_binned, y")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be binary (0/1)")
        if sample_weight is None:
            sample_weight = np.ones(y.shape[0], dtype=np.float64)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            check_same_length(sample_weight, y, "sample_weight, y")
            if (sample_weight < 0).any():
                raise ValueError("sample_weight must be non-negative")

        self.n_features_ = X_binned.shape[1]
        self.feature_gain_ = np.zeros(self.n_features_, dtype=np.float64)
        n_subset = _resolve_max_features(self.max_features, self.n_features_)

        features: List[int] = []
        thresholds: List[int] = []
        lefts: List[int] = []
        rights: List[int] = []
        values: List[float] = []

        def new_node() -> int:
            features.append(_NO_FEATURE)
            thresholds.append(0)
            lefts.append(-1)
            rights.append(-1)
            values.append(0.0)
            return len(features) - 1

        root = new_node()
        # Depth-first growth with an explicit stack of (node, row indices,
        # depth) — recursion depth is bounded by the data, not Python.
        stack: List[Tuple[int, np.ndarray, int]] = [
            (root, np.arange(y.shape[0]), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            w = sample_weight[idx]
            w_total = w.sum()
            w_pos = w[y[idx] == 1].sum()
            prob = (w_pos / w_total) if w_total > 0 else 0.0
            values[node] = float(prob)

            if (
                depth >= self.max_depth
                or idx.size < self.min_samples_split
                or prob == 0.0
                or prob == 1.0
            ):
                continue

            split = self._best_split(X_binned, y, idx, w, n_subset)
            if split is None:
                continue
            feature, threshold, gain = split
            go_left = X_binned[idx, feature] <= threshold
            left_idx = idx[go_left]
            right_idx = idx[~go_left]
            if (
                left_idx.size < self.min_samples_leaf
                or right_idx.size < self.min_samples_leaf
            ):
                continue

            self.feature_gain_[feature] += gain * w_total
            features[node] = feature
            thresholds[node] = int(threshold)
            left = new_node()
            right = new_node()
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self.node_feature_ = np.asarray(features, dtype=np.int64)
        self.node_threshold_ = np.asarray(thresholds, dtype=np.int64)
        self.node_left_ = np.asarray(lefts, dtype=np.int64)
        self.node_right_ = np.asarray(rights, dtype=np.int64)
        self.node_value_ = np.asarray(values, dtype=np.float64)
        return self

    def _best_split(
        self,
        X_binned: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        w: np.ndarray,
        n_subset: int,
    ) -> Optional[Tuple[int, int, float]]:
        """Scan a random feature subset; return (feature, bin, gini gain)."""
        y_node = y[idx]
        w_pos = w * (y_node == 1)
        total_w = w.sum()
        total_pos = w_pos.sum()
        if total_w <= 0:
            return None
        parent_gini = _gini(total_pos, total_w)

        candidates = self._rng.permutation(self.n_features_)
        best: Optional[Tuple[int, int, float]] = None
        examined = 0
        for feature in candidates:
            if examined >= n_subset and best is not None:
                break
            examined += 1
            codes = X_binned[idx, feature].astype(np.int64)
            n_bins = int(codes.max()) + 1
            if n_bins < 2:
                continue
            hist_w = np.bincount(codes, weights=w, minlength=n_bins)
            hist_pos = np.bincount(codes, weights=w_pos, minlength=n_bins)
            cum_w = np.cumsum(hist_w)[:-1]  # left side for cut after bin b
            cum_pos = np.cumsum(hist_pos)[:-1]
            right_w = total_w - cum_w
            right_pos = total_pos - cum_pos
            valid = (cum_w > 0) & (right_w > 0)
            if not valid.any():
                continue
            children = (
                cum_w * _gini_vec(cum_pos, cum_w)
                + right_w * _gini_vec(right_pos, right_w)
            ) / total_w
            children[~valid] = np.inf
            cut = int(np.argmin(children))
            gain = parent_gini - children[cut]
            if gain <= 1e-12:
                continue
            if best is None or gain > best[2]:
                best = (int(feature), cut, float(gain))
        return best

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #

    def predict_proba_binned(self, X_binned: np.ndarray) -> np.ndarray:
        """P(class 1) for pre-binned rows, via vectorized tree descent."""
        if self.node_feature_ is None:
            raise RuntimeError("tree is not fitted")
        nodes = np.zeros(X_binned.shape[0], dtype=np.int64)
        for _ in range(self.max_depth + 1):
            feature = self.node_feature_[nodes]
            internal = feature != _NO_FEATURE
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            f = feature[rows]
            thr = self.node_threshold_[nodes[rows]]
            go_left = X_binned[rows, f] <= thr
            nodes[rows] = np.where(
                go_left,
                self.node_left_[nodes[rows]],
                self.node_right_[nodes[rows]],
            )
        return self.node_value_[nodes]

    def to_text(
        self,
        feature_names: Optional[List[str]] = None,
        max_depth: Optional[int] = None,
    ) -> str:
        """Indented rule dump of the fitted tree (debugging/audit aid).

        Thresholds are *bin indices* (the tree operates on binned codes);
        map through the owning forest's :class:`BinMapper` edges when raw
        values are needed.
        """
        if self.node_feature_ is None:
            raise RuntimeError("tree is not fitted")

        lines: List[str] = []

        def walk(node: int, depth: int) -> None:
            indent = "  " * depth
            feature = int(self.node_feature_[node])
            if feature == _NO_FEATURE or (
                max_depth is not None and depth >= max_depth
            ):
                lines.append(
                    f"{indent}leaf: P(malware)={self.node_value_[node]:.3f}"
                )
                return
            name = (
                feature_names[feature]
                if feature_names is not None
                else f"f{feature}"
            )
            threshold = int(self.node_threshold_[node])
            lines.append(f"{indent}{name} <= bin {threshold}:")
            walk(int(self.node_left_[node]), depth + 1)
            lines.append(f"{indent}{name} >  bin {threshold}:")
            walk(int(self.node_right_[node]), depth + 1)

        walk(0, 0)
        return "\n".join(lines)

    @property
    def n_nodes(self) -> int:
        return 0 if self.node_feature_ is None else int(self.node_feature_.size)

    def __repr__(self) -> str:
        return f"DecisionTreeClassifier(nodes={self.n_nodes}, max_depth={self.max_depth})"


def _gini(pos: float, total: float) -> float:
    p = pos / total
    return 2.0 * p * (1.0 - p)


def _gini_vec(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, pos / total, 0.0)
    return 2.0 * p * (1.0 - p)

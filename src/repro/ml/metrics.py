"""Detection metrics: ROC curves, AUC, and TP@FP operating points.

Every accuracy claim in the paper is an ROC statement ("94% TPs at less than
0.1% FPs"), so the evaluation harness works in terms of :class:`RocCurve`
objects and the :func:`tpr_at_fpr` operating-point query.  The paper's ROC
figures plot FPs over a restricted range (e.g. [0, 0.01]); curves here carry
the full range and the reporting layer restricts as needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.validation import as_1d_int_array, check_same_length


@dataclass
class RocCurve:
    """An ROC curve: parallel FPR/TPR arrays plus the score thresholds."""

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    def auc(self) -> float:
        return float(np.trapezoid(self.tpr, self.fpr))

    def partial_auc(self, max_fpr: float) -> float:
        """AUC restricted to fpr <= max_fpr, normalized to [0, 1]."""
        if not 0 < max_fpr <= 1:
            raise ValueError("max_fpr must be in (0, 1]")
        fpr, tpr = self.fpr, self.tpr
        mask = fpr <= max_fpr
        fpr_cut = np.append(fpr[mask], max_fpr)
        tpr_cut = np.append(tpr[mask], np.interp(max_fpr, fpr, tpr))
        return float(np.trapezoid(tpr_cut, fpr_cut) / max_fpr)

    def tpr_at(self, max_fpr: float) -> float:
        """Highest achievable TPR with FPR <= max_fpr."""
        mask = self.fpr <= max_fpr
        if not mask.any():
            return 0.0
        return float(self.tpr[mask].max())

    def threshold_at(self, max_fpr: float) -> float:
        """Score threshold realizing :meth:`tpr_at` for the given FPR cap."""
        mask = self.fpr <= max_fpr
        if not mask.any():
            return float(np.inf)
        candidates = np.flatnonzero(mask)
        best = candidates[np.argmax(self.tpr[candidates])]
        return float(self.thresholds[best])

    def points(self, max_fpr: float = 1.0) -> List[Tuple[float, float]]:
        """(fpr, tpr) pairs with fpr <= max_fpr, for plotting/reporting."""
        mask = self.fpr <= max_fpr
        return list(zip(self.fpr[mask].tolist(), self.tpr[mask].tolist()))


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> RocCurve:
    """Compute the ROC curve of binary labels vs. continuous scores.

    Ties in score are collapsed into single curve points (standard
    construction); the returned thresholds are the distinct score values in
    decreasing order, prefixed with +inf for the (0, 0) corner.
    """
    y_true = as_1d_int_array(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    check_same_length(y_true, scores, "y_true, scores")
    if y_true.size == 0:
        raise ValueError("cannot compute ROC of an empty sample")
    n_pos = int(np.count_nonzero(y_true == 1))
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC requires both positive and negative samples")

    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = y_true[order]

    # Indices where the score changes: curve vertices.
    distinct = np.flatnonzero(np.diff(sorted_scores))
    cut_points = np.append(distinct, y_true.size - 1)

    tp_cum = np.cumsum(sorted_labels == 1)[cut_points]
    fp_cum = np.cumsum(sorted_labels == 0)[cut_points]

    tpr = np.concatenate([[0.0], tp_cum / n_pos])
    fpr = np.concatenate([[0.0], fp_cum / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_points]])
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)


def auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    return roc_curve(y_true, scores).auc()


def tpr_at_fpr(y_true: np.ndarray, scores: np.ndarray, max_fpr: float) -> float:
    """Best TPR achievable at FPR <= max_fpr (a paper-style operating point)."""
    return roc_curve(y_true, scores).tpr_at(max_fpr)


def threshold_for_fpr(
    benign_scores: np.ndarray, max_fpr: float
) -> float:
    """Smallest threshold whose FP rate on *benign_scores* is <= max_fpr.

    This is how the deployment experiments pick their detection threshold
    ("we set the detection threshold to obtain <= 0.1% false positives",
    §IV-F) — using benign-labeled traffic only, no test ground truth.
    """
    scores = np.sort(np.asarray(benign_scores, dtype=np.float64))
    if scores.size == 0:
        raise ValueError("need at least one benign score")
    if not 0 <= max_fpr <= 1:
        raise ValueError("max_fpr must be in [0, 1]")
    allowed_fp = int(np.floor(max_fpr * scores.size))
    if allowed_fp == 0:
        return float(np.nextafter(scores[-1], np.inf))
    # Threshold just above the (allowed_fp)-th highest benign score.
    return float(np.nextafter(scores[-allowed_fp], np.inf))


def confusion_at_threshold(
    y_true: np.ndarray, scores: np.ndarray, threshold: float
) -> Dict[str, int]:
    """TP/FP/TN/FN counts with detection rule ``score >= threshold``."""
    y_true = as_1d_int_array(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    check_same_length(y_true, scores, "y_true, scores")
    detected = scores >= threshold
    pos = y_true == 1
    return {
        "tp": int(np.count_nonzero(detected & pos)),
        "fp": int(np.count_nonzero(detected & ~pos)),
        "tn": int(np.count_nonzero(~detected & ~pos)),
        "fn": int(np.count_nonzero(~detected & pos)),
    }

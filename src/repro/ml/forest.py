"""Random Forest classifier (Breiman [9]) over histogram CART trees.

Bootstrap-bagged :class:`repro.ml.tree.DecisionTreeClassifier` ensemble with
per-split feature subsampling.  The malware/benign training sets of this
problem are heavily skewed (hundreds of thousands of benign e2LDs vs. a few
thousand C&C domains), so the forest supports ``class_weight="balanced"``,
which reweights each bootstrap sample inversely to its class frequency.

The model's score for a domain is the mean over trees of the leaf
P(malware) — the "malware score" thresholded by the deployment (paper
§II-A3, "Classifier Operation").
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.ml.preprocessing import BinMapper
from repro.ml.tree import DecisionTreeClassifier
from repro.obs.metrics import get_registry
from repro.obs.tracing import current_tracer
from repro.utils.validation import as_1d_int_array, as_2d_float_array, check_same_length


class RandomForestClassifier:
    """Bagged histogram-CART ensemble returning P(malware) scores."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 14,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = "sqrt",
        max_bins: int = 255,
        class_weight: Optional[str] = "balanced",
        bootstrap: bool = True,
        random_state: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError('class_weight must be None or "balanced"')
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.class_weight = class_weight
        self.bootstrap = bootstrap
        self.random_state = random_state

        self.trees_: List[DecisionTreeClassifier] = []
        self.bin_mapper_: Optional[BinMapper] = None
        self.n_features_: Optional[int] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = as_2d_float_array(X)
        y = as_1d_int_array(y)
        check_same_length(X, y)
        classes = np.unique(y)
        if not np.isin(classes, (0, 1)).all():
            raise ValueError("labels must be binary (0/1)")
        if classes.size < 2:
            raise ValueError("training data must contain both classes")

        self.n_features_ = X.shape[1]
        self.bin_mapper_ = BinMapper(max_bins=self.max_bins)
        X_binned = self.bin_mapper_.fit_transform(X)

        base_weight = np.ones(y.shape[0], dtype=np.float64)
        if self.class_weight == "balanced":
            n = y.shape[0]
            n_pos = int(np.count_nonzero(y == 1))
            n_neg = n - n_pos
            base_weight[y == 1] = n / (2.0 * n_pos)
            base_weight[y == 0] = n / (2.0 * n_neg)

        root_rng = np.random.default_rng(self.random_state)
        seeds = root_rng.integers(0, 2**63 - 1, size=self.n_estimators)
        self.trees_ = []
        n = y.shape[0]
        with current_tracer().span(
            "forest.fit", n_trees=self.n_estimators, n_samples=int(n)
        ):
            for seed in seeds:
                rng = np.random.default_rng(int(seed))
                if self.bootstrap:
                    sample = rng.integers(0, n, size=n)
                else:
                    sample = np.arange(n)
                tree = DecisionTreeClassifier(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=self.max_features,
                    rng=rng,
                )
                tree.fit(X_binned[sample], y[sample], base_weight[sample])
                self.trees_.append(tree)
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "segugio_forest_trees", "trees in the fitted ensemble"
            ).set(len(self.trees_))
            registry.gauge(
                "segugio_forest_train_samples", "rows the ensemble trained on"
            ).set(int(n))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf P(malware) over the ensemble, shape (n_samples,)."""
        if not self.trees_ or self.bin_mapper_ is None:
            raise RuntimeError("forest is not fitted")
        X = as_2d_float_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        with current_tracer().span("forest.predict", n_samples=int(X.shape[0])):
            X_binned = self.bin_mapper_.transform(X)
            scores = np.zeros(X.shape[0], dtype=np.float64)
            for tree in self.trees_:
                scores += tree.predict_proba_binned(X_binned)
            return scores / len(self.trees_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at the given malware-score threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalized to sum to 1."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        gains = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.trees_:
            gains += tree.feature_gain_
        total = gains.sum()
        return gains / total if total > 0 else gains

    def __repr__(self) -> str:
        return (
            f"RandomForestClassifier(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth}, fitted={bool(self.trees_)})"
        )

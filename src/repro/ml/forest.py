"""Random Forest classifier (Breiman [9]) over histogram CART trees.

Bootstrap-bagged :class:`repro.ml.tree.DecisionTreeClassifier` ensemble with
per-split feature subsampling.  The malware/benign training sets of this
problem are heavily skewed (hundreds of thousands of benign e2LDs vs. a few
thousand C&C domains), so the forest supports ``class_weight="balanced"``,
which reweights each bootstrap sample inversely to its class frequency.

The model's score for a domain is the mean over trees of the leaf
P(malware) — the "malware score" thresholded by the deployment (paper
§II-A3, "Classifier Operation").

**Parallel execution.** ``n_jobs`` fits trees in a process pool.  Every
tree is keyed on a seed derived *once* from ``random_state`` before any
work is scheduled, so a tree's content depends only on its seed and the
training data — never on which worker grew it or in what order chunks
completed.  Both fit and predict are chunked into *fixed-size* tree
blocks (:data:`_FIT_TREE_CHUNK`, :data:`_PREDICT_TREE_CHUNK`) that do not
depend on ``n_jobs``, and both always run through
``repro.runtime.supervisor.supervised_map`` (which executes in-process
when ``max_workers <= 1``).  That buys two invariants at once: the
per-chunk partial sums combine in chunk order with identical
float-addition association, so scores are bit-identical at any worker
count; and the task list seen by the supervisor — and therefore the
merged worker-span tree and per-tree-block attribution in a profiled
run — is the same whether one worker or eight did the work (see
DESIGN.md §10, §15).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.ml.preprocessing import BinMapper
from repro.ml.tree import DecisionTreeClassifier
from repro.obs.events import current_event_log
from repro.obs.metrics import get_registry
from repro.obs.tracing import current_tracer
from repro.utils.validation import as_1d_int_array, as_2d_float_array, check_same_length

#: trees per partial-sum chunk in predict_proba — fixed (independent of
#: n_jobs) so the reduction tree, and therefore the float rounding, is the
#: same no matter how many workers computed the partials
_PREDICT_TREE_CHUNK = 16

#: seeds per fit batch — fixed (independent of n_jobs) so the supervised
#: task list, the per-tree-block attribution in profiled runs, and the
#: merged worker-span tree are identical at any worker count
_FIT_TREE_CHUNK = 16


def _resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Worker count: None/1 → serial, -1 → all cores, n → n."""
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return n_jobs


def _fit_tree_batch(
    seeds: Sequence[int],
    params: Dict[str, object],
    X_binned: np.ndarray,
    y: np.ndarray,
    base_weight: np.ndarray,
) -> List[DecisionTreeClassifier]:
    """Grow one tree per seed, serially, in seed order.

    Module-level so it pickles into worker processes; the serial fit path
    calls it too, keeping both paths byte-for-byte the same code.
    """
    n = y.shape[0]
    bootstrap = bool(params["bootstrap"])
    trees: List[DecisionTreeClassifier] = []
    for seed in seeds:
        rng = np.random.default_rng(int(seed))
        if bootstrap:
            sample = rng.integers(0, n, size=n)
        else:
            sample = np.arange(n)
        tree = DecisionTreeClassifier(
            max_depth=int(params["max_depth"]),
            min_samples_leaf=int(params["min_samples_leaf"]),
            max_features=params["max_features"],  # type: ignore[arg-type]
            rng=rng,
        )
        tree.fit(X_binned[sample], y[sample], base_weight[sample])
        trees.append(tree)
    return trees


def _predict_tree_batch(
    trees: Sequence[DecisionTreeClassifier], X_binned: np.ndarray
) -> np.ndarray:
    """Partial score sum over one chunk of trees, accumulated in order."""
    partial = np.zeros(X_binned.shape[0], dtype=np.float64)
    for tree in trees:
        partial += tree.predict_proba_binned(X_binned)
    return partial


def _chunked(items: Sequence, size: int) -> List[Sequence]:
    """Contiguous chunks of at most *size*, preserving order."""
    return [items[i : i + size] for i in range(0, len(items), size)]


class RandomForestClassifier:
    """Bagged histogram-CART ensemble returning P(malware) scores."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 14,
        min_samples_leaf: int = 1,
        max_features: Union[str, int, None] = "sqrt",
        max_bins: int = 255,
        class_weight: Optional[str] = "balanced",
        bootstrap: bool = True,
        random_state: int = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if class_weight not in (None, "balanced"):
            raise ValueError('class_weight must be None or "balanced"')
        self.n_jobs = _resolve_n_jobs(n_jobs)
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.class_weight = class_weight
        self.bootstrap = bootstrap
        self.random_state = random_state

        self.trees_: List[DecisionTreeClassifier] = []
        self.bin_mapper_: Optional[BinMapper] = None
        self.n_features_: Optional[int] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = as_2d_float_array(X)
        y = as_1d_int_array(y)
        check_same_length(X, y)
        classes = np.unique(y)
        if not np.isin(classes, (0, 1)).all():
            raise ValueError("labels must be binary (0/1)")
        if classes.size < 2:
            raise ValueError("training data must contain both classes")

        self.n_features_ = X.shape[1]
        self.bin_mapper_ = BinMapper(max_bins=self.max_bins)
        X_binned = self.bin_mapper_.fit_transform(X)

        base_weight = np.ones(y.shape[0], dtype=np.float64)
        if self.class_weight == "balanced":
            n = y.shape[0]
            n_pos = int(np.count_nonzero(y == 1))
            n_neg = n - n_pos
            base_weight[y == 1] = n / (2.0 * n_pos)
            base_weight[y == 0] = n / (2.0 * n_neg)

        root_rng = np.random.default_rng(self.random_state)
        seeds = [int(s) for s in root_rng.integers(0, 2**63 - 1, size=self.n_estimators)]
        params: Dict[str, object] = {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "bootstrap": self.bootstrap,
        }
        n = y.shape[0]
        jobs = min(self.n_jobs, self.n_estimators)
        events = current_event_log()
        events_mark = events.mark()
        with current_tracer().span(
            "segugio_forest_fit",
            n_trees=self.n_estimators,
            n_samples=int(n),
            n_jobs=jobs,
        ) as span:
            self.trees_ = self._fit_parallel(
                seeds, params, X_binned, y, base_weight, jobs
            )
            if span is not None:
                # Pool fan-out size: pairs with the supervisor's per-label
                # task stats ("forest_fit") in the resource profile's
                # pool-utilization table.  Chunking is fixed-size, so this
                # count is the same at any worker count.
                span.set_attribute(
                    "n_pool_tasks",
                    (self.n_estimators + _FIT_TREE_CHUNK - 1) // _FIT_TREE_CHUNK,
                )
            n_degraded = len(events) - events_mark
            if span is not None and n_degraded:
                span.set_attribute("n_supervisor_events", n_degraded)
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "segugio_forest_trees", "trees in the fitted ensemble"
            ).set(len(self.trees_))
            registry.gauge(
                "segugio_forest_train_samples", "rows the ensemble trained on"
            ).set(int(n))
        return self

    def _fit_parallel(
        self,
        seeds: List[int],
        params: Dict[str, object],
        X_binned: np.ndarray,
        y: np.ndarray,
        base_weight: np.ndarray,
        jobs: int,
    ) -> List[DecisionTreeClassifier]:
        """Fit seed-keyed tree batches across a supervised process pool.

        Seeds are split into fixed-size contiguous batches
        (:data:`_FIT_TREE_CHUNK` trees each, independent of *jobs*); each
        worker runs the same ``_fit_tree_batch`` as an in-process fit and
        results are concatenated in batch order.  The supervisor absorbs
        worker death, hangs, and transient errors by resubmitting the
        seed-keyed batches on a shrinking pool (ultimately in-process), so
        the returned ensemble is bit-identical to a serial fit even on a
        degraded run (DESIGN.md §12), and the task list — hence the merged
        worker-span tree — is the same at any worker count (§15).
        """
        from repro.runtime.supervisor import supervised_map

        tasks = [
            (list(batch), params, X_binned, y, base_weight)
            for batch in _chunked(seeds, _FIT_TREE_CHUNK)
        ]
        trees: List[DecisionTreeClassifier] = []
        for batch_trees in supervised_map(
            _fit_tree_batch, tasks, max_workers=jobs, label="forest_fit"
        ):
            trees.extend(batch_trees)
        return trees

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf P(malware) over the ensemble, shape (n_samples,).

        Scores are reduced over fixed-size tree chunks (independent of
        ``n_jobs``), so the result is bit-identical whether chunks were
        computed serially or across a process pool.
        """
        if not self.trees_ or self.bin_mapper_ is None:
            raise RuntimeError("forest is not fitted")
        X = as_2d_float_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        chunks = _chunked(self.trees_, _PREDICT_TREE_CHUNK)
        jobs = min(self.n_jobs, len(chunks))
        events = current_event_log()
        events_mark = events.mark()
        with current_tracer().span(
            "segugio_forest_predict",
            n_samples=int(X.shape[0]),
            n_jobs=jobs,
            n_chunks=len(chunks),
        ) as span:
            X_binned = self.bin_mapper_.transform(X)
            from repro.runtime.supervisor import supervised_map

            partials = supervised_map(
                _predict_tree_batch,
                [(chunk, X_binned) for chunk in chunks],
                max_workers=jobs,
                label="forest_predict",
            )
            n_degraded = len(events) - events_mark
            if span is not None and n_degraded:
                span.set_attribute("n_supervisor_events", n_degraded)
            scores = np.zeros(X.shape[0], dtype=np.float64)
            for partial in partials:
                scores += partial
            return scores / len(self.trees_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at the given malware-score threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def tree_vote_histogram(
        self, X: np.ndarray, n_bins: int = 10
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-sample histogram of per-tree scores, plus the vote margin.

        For each sample, every tree's leaf P(malware) is bucketed into
        ``n_bins`` equal-width bins over [0, 1] (the top edge folds into
        the last bin).  Returns ``(histogram, margin)`` where *histogram*
        is (n_samples, n_bins) int64 with rows summing to the tree count,
        and *margin* is (n_samples,) float64 in [-1, 1]: the fraction of
        trees voting malware (score >= 0.5) minus the fraction voting
        benign.  This is the decision-provenance view of the ensemble —
        ``predict_proba`` collapses it to the mean.

        Accumulates one tree at a time, so memory is O(n_samples * n_bins)
        rather than O(n_samples * n_trees).
        """
        if not self.trees_ or self.bin_mapper_ is None:
            raise RuntimeError("forest is not fitted")
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        X = as_2d_float_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"expected {self.n_features_} features, got {X.shape[1]}"
            )
        X_binned = self.bin_mapper_.transform(X)
        n_samples = X.shape[0]
        histogram = np.zeros((n_samples, n_bins), dtype=np.int64)
        votes_malware = np.zeros(n_samples, dtype=np.int64)
        rows = np.arange(n_samples)
        for tree in self.trees_:
            scores = tree.predict_proba_binned(X_binned)
            buckets = np.minimum(
                (scores * n_bins).astype(np.int64), n_bins - 1
            )
            np.add.at(histogram, (rows, buckets), 1)
            votes_malware += scores >= 0.5
        n_trees = len(self.trees_)
        margin = (2.0 * votes_malware - n_trees) / n_trees
        return histogram, margin

    @property
    def feature_importances_(self) -> np.ndarray:
        """Total split gain per feature, normalized to sum to 1."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        gains = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.trees_:
            gains += tree.feature_gain_
        total = gains.sum()
        return gains / total if total > 0 else gains

    def __repr__(self) -> str:
        return (
            f"RandomForestClassifier(n_estimators={self.n_estimators}, "
            f"max_depth={self.max_depth}, fitted={bool(self.trees_)})"
        )

"""L2-regularized logistic regression (the paper's LIBLINEAR [10] stand-in).

Features are standardized internally; weights are found with scipy's L-BFGS
on the (optionally class-weighted) negative log-likelihood plus an L2
penalty.  Used as the alternative classifier the paper mentions and by the
classifier-family ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import minimize

from repro.ml.preprocessing import StandardScaler
from repro.utils.validation import as_1d_int_array, as_2d_float_array, check_same_length


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression:
    """Binary logistic regression with L2 penalty and optional balancing."""

    def __init__(
        self,
        C: float = 1.0,
        class_weight: Optional[str] = "balanced",
        max_iter: int = 200,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if class_weight not in (None, "balanced"):
            raise ValueError('class_weight must be None or "balanced"')
        self.C = float(C)
        self.class_weight = class_weight
        self.max_iter = int(max_iter)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self._scaler: Optional[StandardScaler] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = as_2d_float_array(X)
        y = as_1d_int_array(y)
        check_same_length(X, y)
        if np.unique(y).size < 2:
            raise ValueError("training data must contain both classes")

        self._scaler = StandardScaler()
        Xs = self._scaler.fit_transform(X)
        n, d = Xs.shape
        target = y.astype(np.float64)

        weights = np.ones(n, dtype=np.float64)
        if self.class_weight == "balanced":
            n_pos = target.sum()
            n_neg = n - n_pos
            weights[y == 1] = n / (2.0 * n_pos)
            weights[y == 0] = n / (2.0 * n_neg)

        lam = 1.0 / (self.C * n)

        def objective(params: np.ndarray):
            w, b = params[:d], params[d]
            z = Xs @ w + b
            p = _sigmoid(z)
            eps = 1e-12
            nll = -np.sum(
                weights
                * (target * np.log(p + eps) + (1 - target) * np.log(1 - p + eps))
            ) / n
            reg = 0.5 * lam * np.dot(w, w)
            grad_z = weights * (p - target) / n
            grad_w = Xs.T @ grad_z + lam * w
            grad_b = grad_z.sum()
            return nll + reg, np.concatenate([grad_w, [grad_b]])

        result = minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self._scaler is None:
            raise RuntimeError("model is not fitted")
        Xs = self._scaler.transform(as_2d_float_array(X))
        return _sigmoid(Xs @ self.coef_ + self.intercept_)

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    def __repr__(self) -> str:
        return f"LogisticRegression(C={self.C}, fitted={self.coef_ is not None})"

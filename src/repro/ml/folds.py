"""Cross-validation fold builders.

:func:`stratified_kfold` preserves class ratios per fold.

:func:`family_balanced_folds` implements the paper's cross-malware-family
protocol (§IV-C): blacklisted domains are partitioned into folds *by malware
family*, each fold containing roughly the same number of families, so that
"none of the known malware-control domains used for training belonged to any
of the malware families represented in the test set".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import as_1d_int_array


def stratified_kfold(
    y: np.ndarray, n_folds: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train_idx, test_idx) pairs with per-class proportional assignment."""
    y = as_1d_int_array(y)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    fold_of = np.empty(y.shape[0], dtype=np.int64)
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        members = rng.permutation(members)
        fold_of[members] = np.arange(members.size) % n_folds
    folds = []
    for fold in range(n_folds):
        test_idx = np.flatnonzero(fold_of == fold)
        train_idx = np.flatnonzero(fold_of != fold)
        folds.append((train_idx, test_idx))
    return folds


def family_balanced_folds(
    families: Sequence[str], n_folds: int, rng: np.random.Generator
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Group-by-family folds with roughly equal family counts per fold.

    Args:
        families: Per-sample malware-family label (same length as the
            dataset being folded).
        n_folds: Number of balanced folds.
        rng: Shuffles the family-to-fold assignment.

    Returns:
        (train_idx, test_idx) pairs; every family's samples land entirely in
        one fold, so train and test never share a family.
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    distinct = sorted(set(families))
    if len(distinct) < n_folds:
        raise ValueError(
            f"need at least {n_folds} families, got {len(distinct)}"
        )
    shuffled = list(rng.permutation(distinct))
    fold_of_family: Dict[str, int] = {
        family: i % n_folds for i, family in enumerate(shuffled)
    }
    assignment = np.asarray([fold_of_family[f] for f in families], dtype=np.int64)
    folds = []
    for fold in range(n_folds):
        test_idx = np.flatnonzero(assignment == fold)
        train_idx = np.flatnonzero(assignment != fold)
        folds.append((train_idx, test_idx))
    return folds

"""Feature preprocessing: quantile binning and standardization.

:class:`BinMapper` discretizes each feature into at most ``max_bins``
quantile bins (LightGBM-style).  The trees then search splits over bin
histograms instead of sorted feature values, which turns the per-node split
search into a handful of ``np.bincount`` calls — the key to training
hundreds of trees on hundreds of thousands of rows in pure NumPy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.validation import as_2d_float_array


class BinMapper:
    """Maps continuous features to small integer bin codes via quantiles."""

    def __init__(self, max_bins: int = 255) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
        self.max_bins = int(max_bins)
        self.bin_edges_: Optional[List[np.ndarray]] = None

    def fit(self, X: np.ndarray) -> "BinMapper":
        """Compute per-feature bin edges from (a sample of) the data."""
        X = as_2d_float_array(X)
        edges: List[np.ndarray] = []
        quantiles = np.linspace(0, 1, self.max_bins + 1)[1:-1]
        for col in range(X.shape[1]):
            values = X[:, col]
            distinct = np.unique(values)
            if distinct.size <= self.max_bins:
                # Few distinct values: cut exactly between them, one bin per
                # value (categorical-ish features like day counts).
                col_edges = (distinct[:-1] + distinct[1:]) / 2.0
            else:
                # Continuous features: quantile edges, duplicates collapsed.
                col_edges = np.unique(np.quantile(values, quantiles))
            edges.append(col_edges)
        self.bin_edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return uint8 bin codes; values above the last edge map highest."""
        if self.bin_edges_ is None:
            raise RuntimeError("BinMapper must be fitted before transform")
        X = as_2d_float_array(X)
        if X.shape[1] != len(self.bin_edges_):
            raise ValueError(
                f"expected {len(self.bin_edges_)} features, got {X.shape[1]}"
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for col, col_edges in enumerate(self.bin_edges_):
            codes[:, col] = np.searchsorted(
                col_edges, X[:, col], side="right"
            ).astype(np.uint8)
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def n_bins(self, col: int) -> int:
        """Number of distinct bin codes feature *col* can take."""
        if self.bin_edges_ is None:
            raise RuntimeError("BinMapper must be fitted first")
        return len(self.bin_edges_[col]) + 1


class StandardScaler:
    """Zero-mean unit-variance scaling (constant columns left centered)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = as_2d_float_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler must be fitted before transform")
        X = as_2d_float_array(X)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

"""Distribution-drift statistics for deployed models.

The paper's answer to model staleness is daily retraining (§IV-G makes it
cheap).  A deployment that retrains less often needs to know *when* the
model has aged out: this module compares the distributions a model sees
and produces today against a reference day using two complementary
statistics:

* **PSI** (population stability index) — sensitive to mass moving between
  reference-decile bins; the standard scorecard-monitoring statistic.
* **KS** (two-sample Kolmogorov-Smirnov) — the maximum CDF gap; binless,
  so it catches shifts PSI's coarse deciles smear out.

:func:`feature_drift` applies both per feature column, which the tracker
aggregates into the day-over-day quality summary evaluated by
:mod:`repro.obs.monitor` alert rules.

Rule-of-thumb thresholds (industry convention): PSI < 0.1 stable,
0.1-0.25 moderate shift (watch), > 0.25 significant shift (retrain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

PSI_WATCH = 0.10
PSI_RETRAIN = 0.25


def population_stability_index(
    reference: np.ndarray,
    current: np.ndarray,
    n_bins: int = 10,
) -> float:
    """PSI between a reference and a current sample of scores.

    Bins are deciles of the *reference* distribution (ties collapsed);
    empty bins are floored at a small epsilon so the index stays finite.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.size == 0 or current.size == 0:
        raise ValueError("both samples must be non-empty")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")

    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, quantiles))
    ref_counts = np.bincount(
        np.searchsorted(edges, reference, side="left"),
        minlength=edges.size + 1,
    ).astype(np.float64)
    cur_counts = np.bincount(
        np.searchsorted(edges, current, side="left"),
        minlength=edges.size + 1,
    ).astype(np.float64)

    eps = 1e-6
    ref_frac = np.maximum(ref_counts / ref_counts.sum(), eps)
    cur_frac = np.maximum(cur_counts / cur_counts.sum(), eps)
    return float(np.sum((cur_frac - ref_frac) * np.log(cur_frac / ref_frac)))


def ks_statistic(reference: np.ndarray, current: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max |CDF_ref - CDF_cur|).

    Binless companion to :func:`population_stability_index`: PSI smears
    shifts across reference deciles, KS catches a sharp local CDF gap.
    Returned value is in [0, 1]; 0 means identical empirical CDFs.
    """
    reference = np.sort(np.asarray(reference, dtype=np.float64))
    current = np.sort(np.asarray(current, dtype=np.float64))
    if reference.size == 0 or current.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([reference, current])
    cdf_ref = np.searchsorted(reference, grid, side="right") / reference.size
    cdf_cur = np.searchsorted(current, grid, side="right") / current.size
    return float(np.max(np.abs(cdf_ref - cdf_cur)))


def feature_drift(
    reference: np.ndarray,
    current: np.ndarray,
    feature_names: Sequence[str],
    n_bins: int = 10,
) -> Dict[str, Dict[str, float]]:
    """Per-feature PSI + KS between two feature matrices.

    *reference* and *current* are (n_samples, n_features) matrices over the
    same columns; *feature_names* names those columns.  Returns
    ``{name: {"psi": float, "ks": float}}`` in column order.  Constant
    columns (a single distinct value on the reference day) yield PSI 0 when
    unchanged — searchsorted places all mass in one bin on both sides.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.ndim != 2 or current.ndim != 2:
        raise ValueError("feature matrices must be 2-D")
    if reference.shape[1] != current.shape[1]:
        raise ValueError("matrices must share a column space")
    if reference.shape[1] != len(feature_names):
        raise ValueError("feature_names must match the column count")
    if reference.shape[0] == 0 or current.shape[0] == 0:
        raise ValueError("both samples must be non-empty")
    out: Dict[str, Dict[str, float]] = {}
    for column, name in enumerate(feature_names):
        ref_col = reference[:, column]
        cur_col = current[:, column]
        out[str(name)] = {
            "psi": population_stability_index(ref_col, cur_col, n_bins=n_bins),
            "ks": ks_statistic(ref_col, cur_col),
        }
    return out


@dataclass
class DriftCheck:
    """Result of one drift check."""

    day: int
    psi: float

    @property
    def status(self) -> str:
        if self.psi >= PSI_RETRAIN:
            return "retrain"
        if self.psi >= PSI_WATCH:
            return "watch"
        return "stable"


class ScoreDriftMonitor:
    """Tracks a deployed model's benign-score drift day over day.

    Feed it the training-day benign scores once, then each deployment
    day's scores (any mix — at ISP scale the overwhelming majority of
    scored unknowns is benign, so the bulk distribution tracks the benign
    population).
    """

    def __init__(
        self, reference_scores: np.ndarray, n_bins: int = 10
    ) -> None:
        reference = np.asarray(reference_scores, dtype=np.float64)
        if reference.size == 0:
            raise ValueError("reference scores must be non-empty")
        self._reference = reference
        self.n_bins = int(n_bins)
        self.history: List[DriftCheck] = []

    def check(self, day: int, scores: np.ndarray) -> DriftCheck:
        """Record and return the drift check for one day's scores."""
        psi = population_stability_index(
            self._reference, scores, n_bins=self.n_bins
        )
        result = DriftCheck(day=int(day), psi=psi)
        self.history.append(result)
        return result

    def needs_retraining(self) -> bool:
        """True when the most recent check crossed the retrain threshold."""
        return bool(self.history) and self.history[-1].psi >= PSI_RETRAIN

    def trend(self) -> Optional[str]:
        """'rising' / 'falling' / 'flat' over the last three checks."""
        if len(self.history) < 3:
            return None
        last = [check.psi for check in self.history[-3:]]
        if last[2] > last[1] > last[0]:
            return "rising"
        if last[2] < last[1] < last[0]:
            return "falling"
        return "flat"

    def __len__(self) -> int:
        return len(self.history)

"""Score-distribution drift monitoring for deployed models.

The paper's answer to model staleness is daily retraining (§IV-G makes it
cheap).  A deployment that retrains less often needs to know *when* the
model has aged out: this module compares the benign score distribution a
model produces today against the distribution at training time using the
population stability index (PSI) — the standard drift statistic.

Rule-of-thumb thresholds (industry convention): PSI < 0.1 stable,
0.1-0.25 moderate shift (watch), > 0.25 significant shift (retrain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

PSI_WATCH = 0.10
PSI_RETRAIN = 0.25


def population_stability_index(
    reference: np.ndarray,
    current: np.ndarray,
    n_bins: int = 10,
) -> float:
    """PSI between a reference and a current sample of scores.

    Bins are deciles of the *reference* distribution (ties collapsed);
    empty bins are floored at a small epsilon so the index stays finite.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if reference.size == 0 or current.size == 0:
        raise ValueError("both samples must be non-empty")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")

    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, quantiles))
    ref_counts = np.bincount(
        np.searchsorted(edges, reference, side="left"),
        minlength=edges.size + 1,
    ).astype(np.float64)
    cur_counts = np.bincount(
        np.searchsorted(edges, current, side="left"),
        minlength=edges.size + 1,
    ).astype(np.float64)

    eps = 1e-6
    ref_frac = np.maximum(ref_counts / ref_counts.sum(), eps)
    cur_frac = np.maximum(cur_counts / cur_counts.sum(), eps)
    return float(np.sum((cur_frac - ref_frac) * np.log(cur_frac / ref_frac)))


@dataclass
class DriftCheck:
    """Result of one drift check."""

    day: int
    psi: float

    @property
    def status(self) -> str:
        if self.psi >= PSI_RETRAIN:
            return "retrain"
        if self.psi >= PSI_WATCH:
            return "watch"
        return "stable"


class ScoreDriftMonitor:
    """Tracks a deployed model's benign-score drift day over day.

    Feed it the training-day benign scores once, then each deployment
    day's scores (any mix — at ISP scale the overwhelming majority of
    scored unknowns is benign, so the bulk distribution tracks the benign
    population).
    """

    def __init__(
        self, reference_scores: np.ndarray, n_bins: int = 10
    ) -> None:
        reference = np.asarray(reference_scores, dtype=np.float64)
        if reference.size == 0:
            raise ValueError("reference scores must be non-empty")
        self._reference = reference
        self.n_bins = int(n_bins)
        self.history: List[DriftCheck] = []

    def check(self, day: int, scores: np.ndarray) -> DriftCheck:
        """Record and return the drift check for one day's scores."""
        psi = population_stability_index(
            self._reference, scores, n_bins=self.n_bins
        )
        result = DriftCheck(day=int(day), psi=psi)
        self.history.append(result)
        return result

    def needs_retraining(self) -> bool:
        """True when the most recent check crossed the retrain threshold."""
        return bool(self.history) and self.history[-1].psi >= PSI_RETRAIN

    def trend(self) -> Optional[str]:
        """'rising' / 'falling' / 'flat' over the last three checks."""
        if len(self.history) < 3:
            return None
        last = [check.psi for check in self.history[-3:]]
        if last[2] > last[1] > last[0]:
            return "rising"
        if last[2] < last[1] < last[0]:
            return "falling"
        return "flat"

    def __len__(self) -> int:
        return len(self.history)

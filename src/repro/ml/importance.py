"""Permutation feature importance.

The forest's split-gain importances (``feature_importances_``) measure
what the trees *used*; permutation importance measures what the model
*needs* on held-out data: shuffle one feature column and record how much
an accuracy metric drops.  Used alongside the Fig. 7 group ablations to
rank individual features.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.metrics import roc_curve
from repro.utils.validation import as_1d_int_array, as_2d_float_array, check_same_length


def permutation_importance(
    model: Any,
    X: np.ndarray,
    y: np.ndarray,
    metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
    n_repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
    feature_names: Optional[Sequence[str]] = None,
    groups: Optional[Dict[str, Sequence[int]]] = None,
) -> List[dict]:
    """Mean metric drop per permuted feature (or feature *group*).

    With correlated features, single-column permutation understates
    importance (the surviving columns compensate); passing ``groups``
    permutes whole column sets jointly — for Segugio's features, use
    :data:`repro.core.features.FEATURE_GROUPS` to get the permutation
    counterpart of the paper's Fig. 7 group ablation.

    Args:
        model: Anything with ``predict_proba(X) -> scores``.
        X, y: Held-out evaluation data (binary labels).
        metric: ``f(y, scores) -> float`` where higher is better; default
            is ROC AUC.
        n_repeats: Shuffles per unit (averaged).
        rng: Generator for the shuffles.
        feature_names: Optional labels (single-feature mode only).
        groups: Optional name -> column indices; replaces per-feature mode.

    Returns:
        One dict per unit: ``{"feature", "index"/"columns", "importance",
        "std"}``, most important first.
    """
    X = as_2d_float_array(X)
    y = as_1d_int_array(y)
    check_same_length(X, y)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    if metric is None:
        metric = lambda yy, ss: roc_curve(yy, ss).auc()

    baseline = metric(y, model.predict_proba(X))

    if groups is not None:
        units = [(name, list(cols)) for name, cols in groups.items()]
    else:
        units = [
            (
                feature_names[col] if feature_names is not None else f"feature_{col}",
                [col],
            )
            for col in range(X.shape[1])
        ]

    rows: List[dict] = []
    for name, cols in units:
        drops = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            order = rng.permutation(X.shape[0])
            # Permute the whole block with ONE row order so within-group
            # correlations are preserved (only the link to y is broken).
            shuffled[:, cols] = X[np.ix_(order, cols)]
            drops.append(baseline - metric(y, model.predict_proba(shuffled)))
        row = {
            "feature": name,
            "importance": float(np.mean(drops)),
            "std": float(np.std(drops)),
        }
        if len(cols) == 1:
            row["index"] = cols[0]
        else:
            row["columns"] = cols
        rows.append(row)
    rows.sort(key=lambda row: -row["importance"])
    return rows


def local_attribution(
    model: Any,
    background: np.ndarray,
    x: np.ndarray,
    feature_names: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Per-feature contribution to one sample's score (ablate-to-median).

    For each feature, replace the sample's value with the background
    median and record the score drop: a large positive delta means "this
    feature's value is why the score is high".  This is the analyst-facing
    'why was this domain flagged' explanation (cheaper and more direct
    than SHAP for a handful of detections a day).

    Returns rows sorted by absolute contribution, each with the sample's
    value, the background median, and the score delta.
    """
    background = as_2d_float_array(background, "background")
    x = np.asarray(x, dtype=np.float64).reshape(1, -1)
    if x.shape[1] != background.shape[1]:
        raise ValueError("x and background must have matching feature counts")
    medians = np.median(background, axis=0)
    base_score = float(model.predict_proba(x)[0])
    rows: List[dict] = []
    for col in range(x.shape[1]):
        ablated = x.copy()
        ablated[0, col] = medians[col]
        delta = base_score - float(model.predict_proba(ablated)[0])
        name = (
            feature_names[col]
            if feature_names is not None
            else f"feature_{col}"
        )
        rows.append(
            {
                "feature": name,
                "index": col,
                "value": float(x[0, col]),
                "background_median": float(medians[col]),
                "contribution": delta,
            }
        )
    rows.sort(key=lambda row: -abs(row["contribution"]))
    return rows

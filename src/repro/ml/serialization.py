"""Model persistence: forests (and their bin mappers) to/from JSON.

A Segugio deployment trains once per day but may classify on many
collector nodes; serializing the fitted classifier lets the model travel
without retraining (the paper's cross-network result — train at one ISP,
deploy at another — is operationally exactly this).

The format is plain JSON (lists + scalars) with a version tag; NumPy
arrays are stored as nested lists.  Only fitted models serialize.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO, Union

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.preprocessing import BinMapper
from repro.ml.tree import DecisionTreeClassifier

FORMAT_VERSION = 1


def tree_to_dict(tree: DecisionTreeClassifier) -> Dict[str, Any]:
    if tree.node_feature_ is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "max_depth": tree.max_depth,
        "n_features": tree.n_features_,
        "feature": tree.node_feature_.tolist(),
        "threshold": tree.node_threshold_.tolist(),
        "left": tree.node_left_.tolist(),
        "right": tree.node_right_.tolist(),
        "value": tree.node_value_.tolist(),
        "feature_gain": tree.feature_gain_.tolist(),
    }


def tree_from_dict(payload: Dict[str, Any]) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier(max_depth=payload["max_depth"])
    tree.n_features_ = payload["n_features"]
    tree.node_feature_ = np.asarray(payload["feature"], dtype=np.int64)
    tree.node_threshold_ = np.asarray(payload["threshold"], dtype=np.int64)
    tree.node_left_ = np.asarray(payload["left"], dtype=np.int64)
    tree.node_right_ = np.asarray(payload["right"], dtype=np.int64)
    tree.node_value_ = np.asarray(payload["value"], dtype=np.float64)
    tree.feature_gain_ = np.asarray(payload["feature_gain"], dtype=np.float64)
    return tree


def bin_mapper_to_dict(mapper: BinMapper) -> Dict[str, Any]:
    if mapper.bin_edges_ is None:
        raise ValueError("cannot serialize an unfitted BinMapper")
    return {
        "max_bins": mapper.max_bins,
        "bin_edges": [edges.tolist() for edges in mapper.bin_edges_],
    }


def bin_mapper_from_dict(payload: Dict[str, Any]) -> BinMapper:
    mapper = BinMapper(max_bins=payload["max_bins"])
    mapper.bin_edges_ = [
        np.asarray(edges, dtype=np.float64) for edges in payload["bin_edges"]
    ]
    return mapper


def forest_to_dict(forest: RandomForestClassifier) -> Dict[str, Any]:
    if not forest.trees_ or forest.bin_mapper_ is None:
        raise ValueError("cannot serialize an unfitted forest")
    return {
        "format_version": FORMAT_VERSION,
        "model": "random_forest",
        "n_estimators": forest.n_estimators,
        "max_depth": forest.max_depth,
        "max_features": forest.max_features,
        "max_bins": forest.max_bins,
        "class_weight": forest.class_weight,
        "n_features": forest.n_features_,
        "bin_mapper": bin_mapper_to_dict(forest.bin_mapper_),
        "trees": [tree_to_dict(tree) for tree in forest.trees_],
    }


def forest_from_dict(payload: Dict[str, Any]) -> RandomForestClassifier:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version: {version}")
    if payload.get("model") != "random_forest":
        raise ValueError(f"not a random forest payload: {payload.get('model')}")
    forest = RandomForestClassifier(
        n_estimators=payload["n_estimators"],
        max_depth=payload["max_depth"],
        max_features=payload["max_features"],
        max_bins=payload["max_bins"],
        class_weight=payload["class_weight"],
    )
    forest.n_features_ = payload["n_features"]
    forest.bin_mapper_ = bin_mapper_from_dict(payload["bin_mapper"])
    forest.trees_ = [tree_from_dict(t) for t in payload["trees"]]
    return forest


def save_forest(
    forest: RandomForestClassifier, stream_or_path: Union[str, TextIO]
) -> None:
    """Write a fitted forest as JSON to a path or text stream."""
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path, "w") if own else stream_or_path
    try:
        json.dump(forest_to_dict(forest), stream)
    finally:
        if own:
            stream.close()


def load_forest(stream_or_path: Union[str, TextIO]) -> RandomForestClassifier:
    """Read a forest previously written by :func:`save_forest`."""
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path) if own else stream_or_path
    try:
        return forest_from_dict(json.load(stream))
    finally:
        if own:
            stream.close()

"""Score calibration: map raw malware scores to empirical FP rates.

The forest's mean-leaf score is a *ranking*, not a probability: class
weighting and bagging compress it (§II-A3 only requires a tunable
threshold).  Operations cares about one number per domain: *what FP rate
would detecting this domain imply?*  :class:`FprCalibrator` learns the
mapping from a benign reference population (typically the training-day
benign scores) and converts scores to empirical FP rates — so thresholds
can be stated as rates ("block at <=0.1% FPs") independent of model,
day, and network.

Also provided: :class:`IsotonicCalibrator`, a classic monotone
probability calibration (pool-adjacent-violators) for when calibrated
P(malware) rather than an FP rate is wanted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import as_1d_int_array, check_same_length


class FprCalibrator:
    """Score -> empirical false-positive rate, from a benign reference."""

    def __init__(self) -> None:
        self._benign_sorted: Optional[np.ndarray] = None

    def fit(self, benign_scores: np.ndarray) -> "FprCalibrator":
        scores = np.asarray(benign_scores, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("need at least one benign reference score")
        self._benign_sorted = np.sort(scores)
        return self

    def fpr_of(self, scores: np.ndarray) -> np.ndarray:
        """Fraction of the benign reference scoring at or above each score."""
        if self._benign_sorted is None:
            raise RuntimeError("calibrator is not fitted")
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        below = np.searchsorted(self._benign_sorted, scores, side="left")
        return 1.0 - below / self._benign_sorted.size

    def threshold_for(self, max_fpr: float) -> float:
        """Smallest score whose implied FP rate is <= max_fpr."""
        if self._benign_sorted is None:
            raise RuntimeError("calibrator is not fitted")
        if not 0 <= max_fpr <= 1:
            raise ValueError("max_fpr must be in [0, 1]")
        allowed = int(np.floor(max_fpr * self._benign_sorted.size))
        if allowed == 0:
            return float(np.nextafter(self._benign_sorted[-1], np.inf))
        return float(np.nextafter(self._benign_sorted[-allowed], np.inf))


class IsotonicCalibrator:
    """Monotone P(malware | score) via pool-adjacent-violators."""

    def __init__(self) -> None:
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        scores = np.asarray(scores, dtype=np.float64)
        labels = as_1d_int_array(labels)
        check_same_length(scores, labels, "scores, labels")
        if scores.size == 0:
            raise ValueError("need calibration data")
        order = np.argsort(scores, kind="stable")
        x = scores[order]
        y = labels[order].astype(np.float64)
        weights = np.ones_like(y)

        # Pool adjacent violators.
        values = list(y)
        wts = list(weights)
        xs = list(x)
        i = 0
        while i < len(values) - 1:
            if values[i] > values[i + 1] + 1e-15:
                merged_w = wts[i] + wts[i + 1]
                merged_v = (values[i] * wts[i] + values[i + 1] * wts[i + 1]) / merged_w
                values[i: i + 2] = [merged_v]
                wts[i: i + 2] = [merged_w]
                xs[i: i + 2] = [xs[i + 1]]
                if i > 0:
                    i -= 1
            else:
                i += 1
        self._x = np.asarray(xs)
        self._y = np.asarray(values)
        return self

    def predict(self, scores: np.ndarray) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("calibrator is not fitted")
        scores = np.atleast_1d(np.asarray(scores, dtype=np.float64))
        idx = np.searchsorted(self._x, scores, side="left")
        idx = np.clip(idx, 0, self._y.size - 1)
        return self._y[idx]

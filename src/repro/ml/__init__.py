"""From-scratch statistical learning substrate.

The paper trains its behavior-based classifier with Random Forest [9] (and
mentions logistic regression [10] as an alternative).  Neither is available
offline here, so this package implements them:

* :mod:`repro.ml.preprocessing` — quantile bin mapping (shared by all trees
  of a forest) and feature standardization.
* :mod:`repro.ml.tree` — histogram-based CART decision trees (Gini).
* :mod:`repro.ml.forest` — bagged random forests with feature subsampling
  and class-balanced bootstrap weighting.
* :mod:`repro.ml.logistic` — L2-regularized logistic regression via L-BFGS.
* :mod:`repro.ml.metrics` — ROC curves, AUC, TP@FP operating points.
* :mod:`repro.ml.folds` — stratified and family-grouped cross-validation
  folds (the latter drives the cross-malware-family experiment, Fig. 8).
"""

from repro.ml.calibration import FprCalibrator, IsotonicCalibrator
from repro.ml.drift import ScoreDriftMonitor, population_stability_index
from repro.ml.folds import family_balanced_folds, stratified_kfold
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import (
    RocCurve,
    auc,
    confusion_at_threshold,
    roc_curve,
    threshold_for_fpr,
    tpr_at_fpr,
)
from repro.ml.preprocessing import BinMapper, StandardScaler
from repro.ml.serialization import load_forest, save_forest
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BinMapper",
    "DecisionTreeClassifier",
    "FprCalibrator",
    "IsotonicCalibrator",
    "LogisticRegression",
    "RandomForestClassifier",
    "ScoreDriftMonitor",
    "RocCurve",
    "StandardScaler",
    "auc",
    "confusion_at_threshold",
    "family_balanced_folds",
    "load_forest",
    "permutation_importance",
    "population_stability_index",
    "roc_curve",
    "save_forest",
    "stratified_kfold",
    "threshold_for_fpr",
    "tpr_at_fpr",
]

"""The synthetic IPv4 hosting landscape.

Allocates /24 blocks into four pools:

* **clean** — reputable hosting; backs core and tail benign domains.
* **dirty** — low-reputation shared hosting; backs adult/low-rep benign
  content *and* some malware, so IP evidence alone cannot separate them
  (the confusion behind Notos's FP breakdown in Table IV).
* **bulletproof** — providers that knowingly host malware; C&C domains of
  many families recycle this space, which is what the F3 "IP abuse"
  features detect.
* **fresh** — previously unused space some new C&C domains move into
  (no abuse history yet, so F3 is silent and F1/F2 must carry detection).

IPs are 32-bit ints; a block is identified by its /24 prefix (``ip >> 8``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.synth.config import HostingConfig
from repro.utils.rng import RngFactory

# Pools carve disjoint ranges out of 10.0.0.0/8-style space; the absolute
# values are arbitrary, only disjointness matters.
_POOL_BASES = {
    "clean": 0x0A000000,  # 10.0.0.0
    "dirty": 0x0B000000,  # 11.0.0.0
    "bulletproof": 0x0C000000,  # 12.0.0.0
    "fresh": 0x0D000000,  # 13.0.0.0
}


class HostingLandscape:
    """Disjoint pools of /24 blocks with seeded IP allocation."""

    def __init__(self, config: HostingConfig, rngs: RngFactory) -> None:
        self.config = config
        self._rngs = rngs.child("hosting")
        self._blocks = {
            "clean": self._make_blocks("clean", config.n_clean_blocks),
            "dirty": self._make_blocks("dirty", config.n_dirty_blocks),
            "bulletproof": self._make_blocks(
                "bulletproof", config.n_bulletproof_blocks
            ),
            "fresh": self._make_blocks("fresh", config.n_fresh_blocks),
        }

    def _make_blocks(self, pool: str, count: int) -> np.ndarray:
        """/24 prefixes (ip >> 8 values) for one pool."""
        base = _POOL_BASES[pool] >> 8
        return base + np.arange(count, dtype=np.int64)

    def pool_prefixes(self, pool: str) -> np.ndarray:
        if pool not in self._blocks:
            raise KeyError(f"unknown pool {pool!r}")
        return self._blocks[pool].copy()

    def pool_of_ip(self, ip: int) -> str:
        prefix = int(ip) >> 8
        for pool, blocks in self._blocks.items():
            if blocks[0] <= prefix < blocks[0] + blocks.size:
                return pool
        return "unassigned"

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def allocate(
        self, pool: str, count: int, key: str, spread_blocks: int = 1
    ) -> np.ndarray:
        """Allocate *count* IPs from *pool*, spread over *spread_blocks* /24s.

        The same ``key`` always yields the same IPs, so a domain's hosting is
        stable across calls without storing it.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        blocks = self._blocks[pool]
        rng = self._rngs.stream(("alloc", pool, key))
        n_blocks = min(max(spread_blocks, 1), blocks.size)
        chosen = rng.choice(blocks, size=n_blocks, replace=False)
        prefixes = rng.choice(chosen, size=count, replace=True)
        hosts = rng.integers(1, self.config.ips_per_block, size=count)
        ips = (prefixes.astype(np.int64) << 8) | hosts
        return np.unique(ips).astype(np.uint32)

    def allocate_mixed(
        self,
        pools: List[str],
        weights: List[float],
        count: int,
        key: str,
    ) -> np.ndarray:
        """Allocate IPs drawing each one's pool from a categorical."""
        if len(pools) != len(weights):
            raise ValueError("pools and weights must be parallel")
        rng = self._rngs.stream(("mixed", key))
        probs = np.asarray(weights, dtype=np.float64)
        probs = probs / probs.sum()
        picks = rng.choice(len(pools), size=count, p=probs)
        parts = []
        for i, pool in enumerate(pools):
            n = int(np.count_nonzero(picks == i))
            if n:
                parts.append(self.allocate(pool, n, f"{key}:{pool}"))
        return np.unique(np.concatenate(parts)).astype(np.uint32)

    def __repr__(self) -> str:
        sizes = {pool: blocks.size for pool, blocks in self._blocks.items()}
        return f"HostingLandscape({sizes})"

"""Per-day DNS trace generation for one ISP (who queried what).

Traffic is assembled in four vectorized strata:

1. **Benign browsing** — every machine draws a Poisson number of distinct
   queries for its archetype and samples targets from the universe's Zipf
   popularity via inverse-CDF lookup (one ``searchsorted`` for the whole
   ISP-day).
2. **Bot call-homes** — per (family, member) pair, a Bernoulli draw over the
   family's currently-active C&C set (plus a forced minimum of one query for
   online bots), generating the overlapping query sets of intuition (2).
3. **Probe clients** — long scans over historically-activated malware
   domains.
4. **Proxy meganodes** — huge benign mixes plus NAT-hidden C&C queries.

The result is a deduplicated :class:`repro.dns.trace.DayTrace` whose
resolutions are filled from the scenario's global domain->IP table.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.dns.resolver import CachingResolver, StaticAuthority, valid_a_responses
from repro.dns.trace import DayTrace
from repro.synth.internet import BenignUniverse
from repro.synth.machines import (
    ARCH_HEAVY,
    ARCH_INACTIVE,
    ARCH_NORMAL,
    ARCH_PROBE,
    ARCH_PROXY,
    IspPopulation,
)
from repro.synth.malware import MalwareWorld
from repro.utils.ids import Interner
from repro.utils.rng import RngFactory


class TrafficGenerator:
    """Generates one ISP's daily traces."""

    def __init__(
        self,
        population: IspPopulation,
        universe: BenignUniverse,
        malware: MalwareWorld,
        domains: Interner,
        ips_of_global: Callable[[int], np.ndarray],
        rngs: RngFactory,
    ) -> None:
        self.population = population
        self.universe = universe
        self.malware = malware
        self.domains = domains
        self.ips_of_global = ips_of_global
        self._rngs = rngs.child(("traffic", population.config.name))
        # Resolver boundary for DGA miss traffic: an empty authority is
        # enough, since generated DGA names are registered nowhere.
        self._nx_resolver = CachingResolver(StaticAuthority())
        self.last_nx_dropped = 0

    # ------------------------------------------------------------------ #

    def generate_day(self, day: int) -> DayTrace:
        rng = self._rngs.stream(("day", day))
        machine_parts = []
        domain_parts = []

        benign_m, benign_d = self._benign_edges(rng)
        machine_parts.append(benign_m)
        domain_parts.append(benign_d)

        bot_m, bot_d = self._bot_edges(rng, day)
        if bot_m.size:
            machine_parts.append(bot_m)
            domain_parts.append(bot_d)

        probe_m, probe_d = self._probe_edges(rng, day)
        if probe_m.size:
            machine_parts.append(probe_m)
            domain_parts.append(probe_d)

        proxy_m, proxy_d = self._proxy_edges(rng, day)
        if proxy_m.size:
            machine_parts.append(proxy_m)
            domain_parts.append(proxy_d)

        self.last_nx_dropped = self._dga_miss_traffic(rng, day)

        edge_machines = np.concatenate(machine_parts)
        edge_domains = np.concatenate(domain_parts)
        edge_machines = self._apply_dhcp_churn(rng, day, edge_machines)

        resolutions = self._resolutions(edge_domains)
        return DayTrace.build(
            day,
            self.population.machines,
            self.domains,
            edge_machines,
            edge_domains,
            resolutions,
        )

    # ------------------------------------------------------------------ #
    # strata
    # ------------------------------------------------------------------ #

    def _benign_edges(self, rng: np.random.Generator):
        cfg = self.population.config
        arch = self.population.archetype
        n = self.population.n_machines
        counts = np.zeros(n, dtype=np.int64)

        normal = arch == ARCH_NORMAL
        heavy = arch == ARCH_HEAVY
        inactive = arch == ARCH_INACTIVE
        proxy = arch == ARCH_PROXY
        probe = arch == ARCH_PROBE

        counts[normal] = rng.poisson(cfg.normal_queries_mean, int(normal.sum()))
        counts[heavy] = rng.poisson(cfg.heavy_queries_mean, int(heavy.sum()))
        counts[inactive] = rng.integers(
            1, cfg.inactive_queries_max + 1, int(inactive.sum())
        )
        counts[proxy] = rng.poisson(cfg.proxy_queries_mean, int(proxy.sum()))
        counts[probe] = rng.poisson(30.0, int(probe.sum()))
        np.maximum(counts, 1, out=counts)

        total = int(counts.sum())
        picks = np.searchsorted(
            self.universe.cumulative_weights, rng.random(total), side="right"
        )
        np.clip(picks, 0, self.universe.n_fqds - 1, out=picks)
        edge_domains = self.universe.fqd_ids[picks]
        edge_machines = np.repeat(np.arange(n, dtype=np.int64), counts)
        return edge_machines, edge_domains

    def _bot_edges(self, rng: np.random.Generator, day: int):
        cfg = self.malware.config
        machine_rows = []
        domain_rows = []
        for fam, members in self.population.family_members.items():
            active = self.malware.active_indices_of_family(fam, day)
            if active.size == 0:
                continue
            online = members[rng.random(members.size) < cfg.bot_online_prob]
            if online.size == 0:
                continue
            hits = rng.random((online.size, active.size)) < cfg.bot_query_prob
            # An online bot always calls home at least once.
            silent = ~hits.any(axis=1)
            if silent.any():
                forced = rng.integers(0, active.size, size=int(silent.sum()))
                hits[np.flatnonzero(silent), forced] = True
            rows, cols = np.nonzero(hits)
            machine_rows.append(online[rows])
            domain_rows.append(self.malware.fqd_ids[active[cols]])
        if not machine_rows:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(machine_rows), np.concatenate(domain_rows)

    def _probe_edges(self, rng: np.random.Generator, day: int):
        cfg = self.population.config
        probes = self.population.machines_of_archetype(ARCH_PROBE)
        started = np.flatnonzero(self.malware.activation <= day)
        empty = np.empty(0, dtype=np.int64)
        if probes.size == 0 or started.size == 0:
            return empty, empty
        machine_rows = []
        domain_rows = []
        for probe in probes:
            k = min(cfg.probe_blacklist_queries, started.size)
            targets = rng.choice(started, size=k, replace=False)
            machine_rows.append(np.full(k, probe, dtype=np.int64))
            domain_rows.append(self.malware.fqd_ids[targets])
        return np.concatenate(machine_rows), np.concatenate(domain_rows)

    def _proxy_edges(self, rng: np.random.Generator, day: int):
        """NAT-hidden infections behind proxies: a few C&C queries each."""
        proxies = self.population.machines_of_archetype(ARCH_PROXY)
        empty = np.empty(0, dtype=np.int64)
        if proxies.size == 0 or not self.population.family_members:
            return empty, empty
        families = list(self.population.family_members)
        machine_rows = []
        domain_rows = []
        for proxy in proxies:
            n_fams = int(rng.integers(1, min(3, len(families)) + 1))
            for fam in rng.choice(families, size=n_fams, replace=False):
                active = self.malware.active_indices_of_family(int(fam), day)
                if active.size == 0:
                    continue
                k = min(int(rng.integers(1, 4)), active.size)
                chosen = rng.choice(active, size=k, replace=False)
                machine_rows.append(np.full(k, proxy, dtype=np.int64))
                domain_rows.append(self.malware.fqd_ids[chosen])
        if not machine_rows:
            return empty, empty
        return np.concatenate(machine_rows), np.concatenate(domain_rows)

    def _dga_miss_traffic(self, rng: np.random.Generator, day: int) -> int:
        """Run the bots' DGA probe queries through the resolver boundary.

        Every query comes back NXDOMAIN and is dropped by
        :func:`valid_a_responses` before any edge is built; the return
        value (how many were dropped) is recorded as ``last_nx_dropped``
        so tests can assert the boundary actually processed traffic.
        """
        per_bot = self.malware.config.dga_nx_per_bot
        if per_bot <= 0:
            return 0
        infected = self.population.infected_machines()
        if infected.size == 0:
            return 0
        answers = []
        now = float(day) * 86400.0
        for machine_id in infected:
            for i in range(per_bot):
                suffix = int(rng.integers(0, 36**6))
                name = f"{suffix:07x}{int(machine_id)}.dga.biz"
                answers.append(self._nx_resolver.resolve(name, now + i))
        surviving = list(valid_a_responses(answers))
        if surviving:  # defensive: DGA names are registered nowhere
            raise AssertionError("unregistered DGA names must not resolve")
        return len(answers)

    def _apply_dhcp_churn(
        self, rng: np.random.Generator, day: int, edge_machines: np.ndarray
    ) -> np.ndarray:
        """Split a fraction of machines' queries across two ephemeral ids.

        Models §VI's DHCP-churn concern: with source IPs as identifiers, a
        lease renewal mid-day makes one physical machine appear as two
        weaker-profiled machines.  The alternate identity is interned per
        (machine, day), so churn does not correlate across days.
        """
        fraction = self.population.config.dhcp_churn_fraction
        if fraction <= 0:
            return edge_machines
        n = self.population.n_machines
        churned = np.flatnonzero(rng.random(n) < fraction)
        if churned.size == 0:
            return edge_machines
        machines = self.population.machines
        alt_ids = np.full(n, -1, dtype=np.int64)
        for machine_id in churned:
            name = machines.name(int(machine_id))
            alt_ids[machine_id] = machines.intern(f"{name}#lease{day}")
        is_churned = alt_ids[edge_machines] >= 0
        goes_alt = is_churned & (rng.random(edge_machines.size) < 0.5)
        out = edge_machines.copy()
        out[goes_alt] = alt_ids[edge_machines[goes_alt]]
        return out

    # ------------------------------------------------------------------ #

    def _resolutions(self, edge_domains: np.ndarray) -> Dict[int, np.ndarray]:
        resolutions: Dict[int, np.ndarray] = {}
        for domain_id in np.unique(edge_domains):
            ips = self.ips_of_global(int(domain_id))
            if ips.size:
                resolutions[int(domain_id)] = ips
        return resolutions

"""The scenario orchestrator: one seeded, coherent multi-ISP world.

Builds, in order: the hosting landscape, the benign universe (whitelist
included), the malware world (blacklists and sandbox included), and one
machine population + traffic generator per ISP.  It then plays out the
backstory:

* the **passive-DNS history** over ``history_days`` before the eval epoch
  (plus the eval window itself), sparsely sampling benign resolutions and
  densely recording active C&C resolutions, and
* the **activity index** over the ``activity_backfill_days`` before the
  epoch (plus the eval window), at both FQD and e2LD granularity.

:meth:`Scenario.context` then yields the
:class:`repro.core.pipeline.ObservationContext` for any (ISP, day) in the
eval window — the exact input Segugio sees in deployment.  Traces are
generated lazily and cached.

A note on id spaces: all domains (benign first, then malware) are interned
into one global interner shared by traces, activity, pDNS, and the e2LD
index; machine interners are per-ISP.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import ObservationContext
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import DayTrace
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.pdns.database import PassiveDNSDatabase
from repro.synth.config import ScenarioConfig, benchmark_scenario_config, small_scenario_config
from repro.synth.hosting import HostingLandscape
from repro.synth.internet import BenignUniverse
from repro.synth.isp import TrafficGenerator
from repro.synth.machines import IspPopulation
from repro.synth.malware import MalwareWorld
from repro.utils.ids import Interner
from repro.utils.rng import RngFactory


class Scenario:
    """A fully-generated synthetic world, queryable day by day."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        rngs = RngFactory(config.seed)

        self.domains = Interner()
        self.psl = PublicSuffixList()
        self.hosting = HostingLandscape(config.hosting, rngs)
        self.universe = BenignUniverse(
            config.universe, self.hosting, self.domains, self.psl, rngs
        )
        history_start = config.epoch_day - config.history_days
        self.malware = MalwareWorld(
            config.malware,
            self.hosting,
            self.universe,
            self.domains,
            start_day=history_start,
            end_day=config.last_eval_day + 1,
            epoch_day=config.epoch_day,
            rngs=rngs,
        )
        # Benign ids must be the leading contiguous block, malware next —
        # the global IP table below indexes by that layout.
        if int(self.universe.fqd_ids[0]) != 0 or int(
            self.malware.fqd_ids[0]
        ) != self.universe.n_fqds:
            raise AssertionError("unexpected interner layout")

        self.e2ld_index = E2ldIndex(self.domains, self.psl)
        self.whitelist: DomainWhitelist = self.universe.whitelist
        self.commercial_blacklist: CncBlacklist = self.malware.commercial_blacklist
        self.public_blacklist: CncBlacklist = self.malware.public_blacklist
        self.sandbox = self.malware.sandbox

        self._build_ip_table()
        self.populations: Dict[str, IspPopulation] = {}
        self.generators: Dict[str, TrafficGenerator] = {}
        for isp_cfg in config.isps:
            population = IspPopulation(isp_cfg, self.malware, rngs)
            self.populations[isp_cfg.name] = population
            self.generators[isp_cfg.name] = TrafficGenerator(
                population,
                self.universe,
                self.malware,
                self.domains,
                self.ips_of_global,
                rngs,
            )

        self.pdns = PassiveDNSDatabase()
        self.fqd_activity = ActivityIndex()
        self.e2ld_activity = ActivityIndex()
        self._play_backstory(rngs)

        self._trace_cache: Dict[Tuple[str, int], DayTrace] = {}
        self._truth_names = set(self.malware.ground_truth_malware_names())

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def small(cls, seed: int = 7) -> "Scenario":
        return cls(small_scenario_config(seed))

    @classmethod
    def benchmark(cls, seed: int = 7) -> "Scenario":
        return cls(benchmark_scenario_config(seed))

    # ------------------------------------------------------------------ #
    # global IP table
    # ------------------------------------------------------------------ #

    def _build_ip_table(self) -> None:
        benign_counts = np.diff(self.universe.ip_offsets)
        malware_counts = np.diff(self.malware.ip_offsets)
        counts = np.concatenate([benign_counts, malware_counts])
        self._ip_offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self._ip_offsets[1:])
        self._ip_flat = np.concatenate(
            [self.universe.ip_flat, self.malware.ip_flat]
        )

    def ips_of_global(self, domain_id: int) -> np.ndarray:
        """Resolved IPs of any global domain id (empty if unregistered)."""
        if domain_id >= self._ip_offsets.size - 1:
            return np.empty(0, dtype=np.uint32)
        lo, hi = self._ip_offsets[domain_id], self._ip_offsets[domain_id + 1]
        return self._ip_flat[lo:hi]

    # ------------------------------------------------------------------ #
    # backstory: pDNS + activity
    # ------------------------------------------------------------------ #

    def _play_backstory(self, rngs: RngFactory) -> None:
        cfg = self.config
        pdns_rng = rngs.stream("pdns")
        act_rng = rngs.stream("activity")
        e2ld_map = self.e2ld_index.map_array()
        n_benign = self.universe.n_fqds
        benign_ids = self.universe.fqd_ids

        pdns_start = cfg.epoch_day - cfg.history_days
        act_start = cfg.epoch_day - cfg.activity_backfill_days
        for day in range(pdns_start, cfg.last_eval_day + 1):
            # --- pDNS rows ---
            # Benign coverage is popularity-weighted; active C&C domains are
            # caught by the sensors on most (not all) of their active days.
            benign_seen = (
                pdns_rng.random(n_benign) < self.universe.pdns_obs_prob
            )
            malware_seen = self.malware.active_mask(day) & (
                pdns_rng.random(self.malware.n_domains) < 0.7
            )
            dom_ids = np.concatenate(
                [
                    benign_ids[benign_seen],
                    self.malware.fqd_ids[malware_seen],
                ]
            )
            if dom_ids.size:
                rows_d, rows_ip = self._expand_ips(dom_ids)
                self.pdns.observe_day(day, rows_d, rows_ip)

            # --- activity index ---
            if day < act_start:
                continue
            benign_active = act_rng.random(n_benign) < self.universe.activity_prob
            malware_active = malware_seen & (
                act_rng.random(self.malware.n_domains) < 0.92
            )
            active_ids = np.concatenate(
                [
                    benign_ids[benign_active],
                    self.malware.fqd_ids[malware_active],
                ]
            )
            self.fqd_activity.record(day, active_ids)
            self.e2ld_activity.record(day, np.unique(e2ld_map[active_ids]))

    def _expand_ips(self, dom_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ragged gather: (domain, ip) rows for the given ids."""
        starts = self._ip_offsets[dom_ids]
        counts = self._ip_offsets[dom_ids + 1] - starts
        nonzero = counts > 0
        starts, counts, dom_ids = starts[nonzero], counts[nonzero], dom_ids[nonzero]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
        cum = np.cumsum(counts) - counts
        positions = (
            np.arange(total, dtype=np.int64)
            - np.repeat(cum, counts)
            + np.repeat(starts, counts)
        )
        return np.repeat(dom_ids, counts), self._ip_flat[positions]

    # ------------------------------------------------------------------ #
    # contexts
    # ------------------------------------------------------------------ #

    def eval_day(self, offset: int) -> int:
        """Absolute day for eval-window offset (0 = first eval day)."""
        day = self.config.epoch_day + offset
        if not self.config.epoch_day <= day <= self.config.last_eval_day:
            raise ValueError(
                f"offset {offset} outside eval window "
                f"[0, {self.config.horizon_days - 1}]"
            )
        return day

    def trace(self, isp: str, day: int) -> DayTrace:
        key = (isp, day)
        if key not in self._trace_cache:
            self._trace_cache[key] = self.generators[isp].generate_day(day)
        return self._trace_cache[key]

    def context(
        self,
        isp: str,
        day: int,
        blacklist: Optional[CncBlacklist] = None,
        whitelist: Optional[DomainWhitelist] = None,
    ) -> ObservationContext:
        """The observation Segugio receives for (ISP, absolute day).

        ``blacklist`` defaults to the commercial feed; pass
        ``scenario.public_blacklist`` (or any merged feed) for the §IV-E
        experiments.  ``whitelist`` defaults to the Alexa-consistent list.
        """
        if isp not in self.generators:
            raise KeyError(f"unknown ISP {isp!r}")
        return ObservationContext(
            day=day,
            trace=self.trace(isp, day),
            fqd_activity=self.fqd_activity,
            e2ld_activity=self.e2ld_activity,
            e2ld_index=self.e2ld_index,
            pdns=self.pdns,
            blacklist=blacklist if blacklist is not None else self.commercial_blacklist,
            whitelist=whitelist if whitelist is not None else self.whitelist,
        )

    # ------------------------------------------------------------------ #
    # ground truth oracle (for evaluation only — never seen by Segugio)
    # ------------------------------------------------------------------ #

    def is_true_malware(self, name: str) -> bool:
        return name in self._truth_names

    def true_malware_names(self) -> List[str]:
        return sorted(self._truth_names)

    def kind_of(self, name: str) -> Optional[str]:
        """Ground-truth kind of a domain name: 'core', 'tail', 'adult',
        'free_site', 'malware', or None for names outside the world."""
        if name in self._truth_names:
            return "malware"
        domain_id = self.domains.lookup(name)
        if domain_id is None or domain_id >= self.universe.n_fqds:
            return None
        from repro.synth.internet import (
            KIND_ADULT,
            KIND_CORE,
            KIND_FREE_SITE,
            KIND_TAIL,
        )

        kind = int(self.universe.kinds[domain_id])
        return {
            KIND_CORE: "core",
            KIND_TAIL: "tail",
            KIND_ADULT: "adult",
            KIND_FREE_SITE: "free_site",
        }[kind]

    def __repr__(self) -> str:
        return (
            f"Scenario(seed={self.config.seed}, "
            f"isps={list(self.populations)}, "
            f"benign_fqds={self.universe.n_fqds}, "
            f"cnc_domains={self.malware.n_domains})"
        )

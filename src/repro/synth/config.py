"""Configuration dataclasses for the synthetic scenario generator.

Two presets are provided:

* :func:`small_scenario_config` — a few hundred machines; fast enough for
  unit/integration tests.
* :func:`benchmark_scenario_config` — tens of thousands of machines and a
  ~100k-domain universe; the scale used by the benchmark harness to
  regenerate the paper's tables and figures.

The *shape* parameters (infection rate, Zipf exponent, C&C agility,
blacklist coverage/lag) are identical between presets; only population sizes
differ, so behaviors observed at benchmark scale hold in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class HostingConfig:
    """The IPv4 hosting landscape.

    Blocks are /24s.  ``dirty`` blocks host low-reputation-but-benign
    content (the adult/"dirty network" domains behind 13.6% of Notos's FPs)
    *and* are occasionally used by malware; ``bulletproof`` blocks are the
    recycled malware hosting the F3 features key on; ``fresh`` blocks are
    previously unused space new C&C domains sometimes move into.
    """

    n_clean_blocks: int = 600
    n_dirty_blocks: int = 40
    n_bulletproof_blocks: int = 25
    n_fresh_blocks: int = 2500
    ips_per_block: int = 256


@dataclass(frozen=True)
class UniverseConfig:
    """The benign domain universe and the whitelist derivation."""

    n_core_e2lds: int = 4000
    """Consistently popular e2LDs (the paper's 458,564, scaled down)."""

    n_tail_e2lds: int = 12000
    """Long-tail benign e2LDs; never consistently top, so never whitelisted."""

    n_adult_e2lds: int = 400
    """Benign-but-low-reputation e2LDs hosted in dirty blocks."""

    n_free_hosting_services: int = 12
    """e2LDs offering free subdomain registration (blog/dyndns style)."""

    known_free_hosting_fraction: float = 0.5
    """Fraction of free-hosting services the whitelist filter knows about.

    The unidentified remainder stays whitelisted, reproducing the paper's
    residual whitelist noise (Table III / Fig. 9)."""

    subdomains_per_core: Tuple[str, ...] = ("", "www", "cdn", "api")
    """FQDs generated under each core e2LD ('' = the e2LD itself)."""

    free_hosting_sites: int = 400
    """Registered user sites (subdomains) per free-hosting service."""

    zipf_exponent: float = 1.05
    """Popularity decay across benign FQDs."""

    ranking_snapshots: int = 24
    """Snapshots in the Alexa-style archive (the paper uses a daily year)."""

    ranking_churn: float = 0.02
    """Per-snapshot probability that a core e2LD drops out of the top list
    (such an e2LD fails the 'consistently top' filter)."""

    tail_activity_prob: float = 0.55
    """Per-day probability a tail FQD is queried somewhere globally."""


@dataclass(frozen=True)
class MalwareConfig:
    """Malware families and their C&C agility."""

    n_families: int = 60
    family_size_mean: float = 40.0
    """Mean infected machines per family per ISP (lognormal-ish spread)."""

    initial_domains: Tuple[int, int] = (2, 6)
    """Active C&C domains per family at its start (uniform range)."""

    new_domain_rate: float = 0.45
    """Expected new C&C domains per family per day (network agility)."""

    domain_lifetime: Tuple[int, int] = (4, 25)
    """Days a fast-rotating C&C domain stays active (uniform range)."""

    long_lived_fraction: float = 0.25
    """Fraction of C&C domains that are long-lived backbone infrastructure.

    Lifetimes are heavy-tailed in reality: alongside fast-rotating
    throwaway names, families keep a backbone of control domains alive for
    weeks or months — which is also why a weeks-old blacklist still labels
    infected machines (the precondition for tracking infections across the
    paper's 13-24 day train/test gaps)."""

    long_lifetime: Tuple[int, int] = (30, 120)
    """Days a long-lived C&C domain stays active (uniform range)."""

    bot_query_prob: float = 0.62
    """Probability a bot queries each of its family's active domains on a
    day it is online (drives the Fig. 3 distribution)."""

    bot_online_prob: float = 0.85
    """Probability an infected machine is online on a given day."""

    free_hosting_cnc_fraction: float = 0.06
    """Fraction of C&C domains registered under free-hosting services."""

    bulletproof_fraction: float = 0.5
    """Probability a C&C domain points into bulletproof space (else dirty
    or fresh space)."""

    dirty_fraction: float = 0.15
    """Probability a (non-bulletproof) C&C domain points into dirty space."""

    commercial_coverage: float = 0.8
    """Probability a C&C domain eventually enters the commercial blacklist."""

    commercial_lag_mean: float = 6.0
    """Mean days from first activity to commercial blacklisting."""

    public_coverage: float = 0.22
    """Probability a C&C domain eventually enters the public blacklists."""

    public_lag_mean: float = 9.0
    public_noise_entries: int = 3
    """Benign domains mislabeled as C&C in the public feeds (§IV-E notes
    e.g. recsports.uga.edu was listed)."""

    dga_nx_per_bot: int = 6
    """NXDOMAIN queries an online bot emits per day (DGA probing).  These
    never produce a valid mapping, so they are dropped at the resolver
    boundary and contribute zero graph edges — Segugio's scoping (§II-A1)
    vs. Pleiades [11], which detects exactly this miss traffic."""

    sandbox_runs_per_family: int = 3
    sandbox_domain_coverage: float = 0.5
    """Fraction of a family's domains its sandbox runs reveal."""


@dataclass(frozen=True)
class IspConfig:
    """One ISP network's machine population."""

    name: str = "isp1"
    n_machines: int = 4000
    inactive_fraction: float = 0.14
    """Machines querying <= 5 domains/day (pruned by R1)."""

    heavy_fraction: float = 0.1
    normal_queries_mean: float = 32.0
    heavy_queries_mean: float = 110.0
    inactive_queries_max: int = 5

    n_proxies: int = 4
    proxy_queries_mean: float = 2500.0
    """Enterprise proxies / DNS forwarders (pruned by R2)."""

    n_probes: int = 2
    probe_blacklist_queries: int = 150
    """Security probe clients querying long lists of known-bad domains."""

    dhcp_churn_fraction: float = 0.0
    """Fraction of machines whose identifier changes mid-day (paper §VI:
    "high DHCP churn may cause some inflation in the number of machines
    that query a given domain" when source IPs are the identifiers).  A
    churned machine's daily queries are split across two ephemeral ids.
    The paper's deployments had stable identifiers; this knob exists for
    the robustness ablation."""

    infection_rate: float = 0.06
    multi_infection_rate: float = 0.55
    """Controls how strongly per-family infections overlap on the same
    machines (droppers selling installs to several criminal groups, NAT'd
    home networks — §IV-C's explanation for cross-family detection)."""


@dataclass(frozen=True)
class ScenarioConfig:
    """A full multi-ISP, multi-day world."""

    seed: int = 7
    horizon_days: int = 40
    """Days of generable traffic, starting at day 0 of the eval epoch."""

    epoch_day: int = 160
    """Absolute day number of eval day 0 (history extends back from here:
    the pDNS window and the malware/blacklist backstory)."""

    history_days: int = 155
    """Days of pDNS/blacklist backstory before the epoch (>= pdns window)."""

    activity_backfill_days: int = 20
    """Days before the epoch for which the activity index is populated."""

    hosting: HostingConfig = field(default_factory=HostingConfig)
    universe: UniverseConfig = field(default_factory=UniverseConfig)
    malware: MalwareConfig = field(default_factory=MalwareConfig)
    isps: Tuple[IspConfig, ...] = (
        IspConfig(name="isp1", n_machines=4000),
        IspConfig(name="isp2", n_machines=7000),
    )

    def isp(self, name: str) -> IspConfig:
        for cfg in self.isps:
            if cfg.name == name:
                return cfg
        raise KeyError(f"no ISP named {name!r}")

    @property
    def first_eval_day(self) -> int:
        return self.epoch_day

    @property
    def last_eval_day(self) -> int:
        return self.epoch_day + self.horizon_days - 1


def small_scenario_config(seed: int = 7) -> ScenarioConfig:
    """A test-scale world: runs end-to-end in a couple of seconds."""
    return ScenarioConfig(
        seed=seed,
        horizon_days=30,
        epoch_day=160,
        universe=UniverseConfig(
            n_core_e2lds=300,
            n_tail_e2lds=800,
            n_adult_e2lds=40,
            n_free_hosting_services=6,
            free_hosting_sites=40,
        ),
        malware=MalwareConfig(n_families=8, family_size_mean=18.0),
        isps=(
            IspConfig(
                name="isp1",
                n_machines=600,
                n_proxies=2,
                n_probes=1,
                infection_rate=0.1,
            ),
            IspConfig(
                name="isp2",
                n_machines=900,
                n_proxies=2,
                n_probes=1,
                infection_rate=0.1,
            ),
        ),
    )


def benchmark_scenario_config(seed: int = 7) -> ScenarioConfig:
    """The scale used by the benchmark harness (tables & figures)."""
    return ScenarioConfig(
        seed=seed,
        horizon_days=40,
        epoch_day=160,
        hosting=HostingConfig(
            n_clean_blocks=1200,
            n_dirty_blocks=60,
            n_bulletproof_blocks=40,
            n_fresh_blocks=5000,
        ),
        universe=UniverseConfig(
            n_core_e2lds=8000,
            n_tail_e2lds=30000,
            n_adult_e2lds=800,
            n_free_hosting_services=16,
            free_hosting_sites=600,
        ),
        malware=MalwareConfig(n_families=60, family_size_mean=45.0),
        isps=(
            IspConfig(name="isp1", n_machines=16000, n_proxies=6, n_probes=3),
            IspConfig(name="isp2", n_machines=28000, n_proxies=8, n_probes=4),
        ),
    )

"""ISP machine populations: archetypes and infection assignment.

Machine archetypes mirror the artifacts the paper's pruning rules target:

* **normal / heavy** users — query tens to low hundreds of distinct benign
  domains a day (Poisson around the archetype mean).
* **inactive** hosts — <= 5 distinct domains a day (pruned by R1 unless
  infected: a quiet bot still calls home, the R1 exception).
* **proxy** meganodes — enterprise proxies/DNS forwarders aggregating whole
  networks: thousands of domains a day, occasionally including C&C of
  NAT-hidden infections (pruned by R2).
* **probe** clients — security scanners that enumerate long lists of known
  malware domains (§VI "anomalous clients" noise source).

Infections are assigned family-by-family from a bounded *infectable pool*
so that multi-infections (one machine, several families) arise with a
controlled rate — the paper credits exactly these machines for cross-family
detection (§IV-C).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.synth.config import IspConfig
from repro.synth.malware import MalwareWorld
from repro.utils.ids import Interner
from repro.utils.rng import RngFactory

ARCH_NORMAL = 0
ARCH_HEAVY = 1
ARCH_INACTIVE = 2
ARCH_PROXY = 3
ARCH_PROBE = 4


class IspPopulation:
    """The machines of one ISP and their infection state."""

    def __init__(
        self,
        config: IspConfig,
        malware: MalwareWorld,
        rngs: RngFactory,
    ) -> None:
        self.config = config
        self.malware = malware
        self._rngs = rngs.child(("isp", config.name))
        self.machines = Interner(
            f"{config.name}-m{i:07d}" for i in range(config.n_machines)
        )
        self.archetype = self._assign_archetypes()
        self.family_members: Dict[int, np.ndarray] = self._assign_infections()

    # ------------------------------------------------------------------ #
    # archetypes
    # ------------------------------------------------------------------ #

    def _assign_archetypes(self) -> np.ndarray:
        cfg = self.config
        rng = self._rngs.stream("archetypes")
        n = cfg.n_machines
        archetype = np.full(n, ARCH_NORMAL, dtype=np.int8)
        roll = rng.random(n)
        archetype[roll < cfg.inactive_fraction] = ARCH_INACTIVE
        archetype[
            (roll >= cfg.inactive_fraction)
            & (roll < cfg.inactive_fraction + cfg.heavy_fraction)
        ] = ARCH_HEAVY
        # Proxies and probes override the tail of the id space so their
        # count is exact regardless of the random roll.
        special = cfg.n_proxies + cfg.n_probes
        if special > n:
            raise ValueError("more proxies+probes than machines")
        archetype[n - special : n - cfg.n_probes] = ARCH_PROXY
        if cfg.n_probes:
            archetype[n - cfg.n_probes :] = ARCH_PROBE
        return archetype

    # ------------------------------------------------------------------ #
    # infections
    # ------------------------------------------------------------------ #

    def _assign_infections(self) -> Dict[int, np.ndarray]:
        """Family id -> member machine ids (possibly overlapping families)."""
        cfg = self.config
        rng = self._rngs.stream("infections")
        eligible = np.flatnonzero(
            (self.archetype != ARCH_PROXY) & (self.archetype != ARCH_PROBE)
        )
        pool_size = max(4, int(round(cfg.infection_rate * cfg.n_machines)))
        pool = rng.choice(eligible, size=min(pool_size, eligible.size), replace=False)

        # Total (machine, family) assignments: the multi-infection rate sets
        # how much the per-family samples overlap within the pool.
        n_assignments = int(round(pool.size * (1.0 + cfg.multi_infection_rate)))
        present = rng.random(self.malware.config.n_families) < 0.8
        weights = self.malware.family_weight * present
        if weights.sum() == 0:
            weights = self.malware.family_weight.copy()
        weights = weights / weights.sum()
        sizes = rng.multinomial(n_assignments, weights)

        members: Dict[int, np.ndarray] = {}
        for fam, size in enumerate(sizes):
            size = int(min(size, pool.size))
            if size < 1:
                continue
            members[fam] = np.sort(rng.choice(pool, size=size, replace=False))
        self.infected_pool = np.sort(pool)
        return members

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def n_machines(self) -> int:
        return self.config.n_machines

    def machines_of_archetype(self, archetype: int) -> np.ndarray:
        return np.flatnonzero(self.archetype == archetype)

    def infected_machines(self) -> np.ndarray:
        """Machines carrying at least one family."""
        if not self.family_members:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(list(self.family_members.values())))

    def families_of_machine(self, machine_id: int) -> List[int]:
        return [
            fam
            for fam, members in self.family_members.items()
            if np.any(members == machine_id)
        ]

    def infection_counts(self) -> np.ndarray:
        """Number of families per machine (0 for clean machines)."""
        counts = np.zeros(self.n_machines, dtype=np.int64)
        for members in self.family_members.values():
            counts[members] += 1
        return counts

    def __repr__(self) -> str:
        return (
            f"IspPopulation(name={self.config.name!r}, "
            f"machines={self.n_machines}, "
            f"infected={self.infected_machines().size}, "
            f"families_present={len(self.family_members)})"
        )

"""Out-of-core paper-scale synthetic day emitter.

:class:`repro.synth.scenario.Scenario` builds a *coherent world* — every
machine, domain, and infection has a backstory — but it materializes each
day's trace in memory, which caps it far below the paper's 1.6M–4M
machines and ~320M edges per day (§IV-G).  This module is the scale rig:
a day whose edge list is a **pure function** of ``(seed, day, machine,
slot)`` through splitmix64 counter hashing, so

* edges stream out in arbitrary batch sizes without ever existing as one
  array — any ``batch_size`` yields the same concatenated row sequence;
* two processes (or a killed-and-resumed one) regenerate bit-identical
  days with no carried RNG state (SEG101: no stateful RNG constructors).

The population is stratified so every pruning rule has real prey:

======================  ======================================  =======
machine / domain block  behavior                                 rule
======================  ======================================  =======
inactive machines       3 queries each, all to hot domains       R1
meganodes               thousands of distinct domains            R2
tail domains            unique e2LD, exactly one querier         R3
CDN FQDs                2 e2LDs queried by ~every machine        R4
hot domains             whitelisted e2LDs → benign labels        kept
mid domains             unlabeled, multi-querier → scored        kept
C&C domains             per-family; half blacklisted before
                        the eval window (training labels),
                        half blacklisted after it (detection
                        targets the tracker can confirm)         kept
======================  ======================================  =======

Infected machines query their family's C&C domains on top of a normal
profile, so derived machine labels and the F1 features behave like the
paper's: fresh C&C domains are queried almost exclusively by machines
already labeled MALWARE through the known half of their family.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.pipeline import ObservationContext
from repro.datasets.edgestore import EdgeStoreWriter, ShardedDayTrace
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import DEFAULT_BATCH_SIZE, DayTrace
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.pdns.database import PassiveDNSDatabase
from repro.utils.ids import Interner

#: odd 64-bit stream constants separating the hash inputs
_K_DAY = np.uint64(0x9E3779B97F4A7C15)
_K_MACHINE = np.uint64(0xC2B2AE3D27D4EB4F)
_K_SLOT = np.uint64(0x165667B19E3779F9)
_K_SEED = np.uint64(0x27D4EB2F165667C5)


def _mix64(z: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (vectorized, stateless)."""
    z = z.astype(np.uint64, copy=True)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


@dataclass(frozen=True)
class BigDayConfig:
    """Shape of the synthetic day; defaults scale with ``n_machines``."""

    n_machines: int = 50_000
    seed: int = 0
    start_day: int = 200
    n_days: int = 5
    n_hot: int = 1_000
    n_mid: int = 4_000
    n_cdn_fqds: int = 1_000
    n_cdn_e2lds: int = 2
    n_families: int = 6
    n_known_per_family: int = 10
    n_fresh_per_family: int = 10
    inactive_fraction: float = 0.10
    infected_fraction: float = 0.01
    meganode_per: int = 10_000
    meganode_degree: int = 3_000
    normal_degree: int = 21
    activity_backfill_days: int = 20
    pdns_history_days: int = 20
    fresh_blacklist_lag: int = 60
    """Days after ``start_day`` at which the fresh C&C half enters the
    blacklist — large enough that no tracked day sees their labels, small
    enough that confirmation horizons can find them."""

    def __post_init__(self) -> None:
        if self.n_machines < 1_000:
            raise ValueError("n_machines must be >= 1000")
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")

    @classmethod
    def for_edges(cls, target_edges: int, seed: int = 0, **overrides) -> "BigDayConfig":
        """Config whose deduplicated day reaches *target_edges* edges.

        Mean raw rows per machine under the default fractions is ~19.3;
        6% headroom covers within-machine hash collisions lost to dedup.
        """
        probe = cls(n_machines=10_000, seed=seed, **overrides)
        per_machine = probe.n_rows_per_day / probe.n_machines
        n_machines = max(1_000, int(target_edges * 1.06 / per_machine))
        # Scale the shared domain pools with the population so per-domain
        # popularity stays in the intended band: a mid domain should see
        # ~60 queriers whether the day has 5k machines or 500k.  A fixed
        # pool at small scale starves mids down to C&C-like popularity and
        # the classifier can no longer tell the strata apart.
        factor = n_machines / 50_000
        for key, base, floor in (
            ("n_hot", 1000, 64),
            ("n_mid", 4000, 256),
            ("n_cdn_fqds", 1000, 32),
        ):
            overrides.setdefault(key, max(floor, int(base * factor)))
        return cls(n_machines=n_machines, seed=seed, **overrides)

    # ---- machine strata (contiguous id ranges) ----

    @property
    def n_inactive(self) -> int:
        return int(self.n_machines * self.inactive_fraction)

    @property
    def n_meganodes(self) -> int:
        return max(4, self.n_machines // self.meganode_per)

    @property
    def n_infected(self) -> int:
        return max(self.n_families, int(self.n_machines * self.infected_fraction))

    @property
    def n_normal(self) -> int:
        return (
            self.n_machines - self.n_inactive - self.n_meganodes - self.n_infected
        )

    @property
    def n_tail_emitters(self) -> int:
        return self.n_infected + self.n_normal

    @property
    def tails_per_machine(self) -> int:
        return 6

    @property
    def n_tails(self) -> int:
        return self.n_tail_emitters * self.tails_per_machine

    @property
    def n_cnc(self) -> int:
        return self.n_families * (self.n_known_per_family + self.n_fresh_per_family)

    @property
    def infected_degree(self) -> int:
        return self.n_normal_slots + 3  # the 3 extra C&C slots

    @property
    def n_normal_slots(self) -> int:
        return self.normal_degree

    @property
    def n_rows_per_day(self) -> int:
        return (
            self.n_inactive * 3
            + self.n_meganodes * self.meganode_degree
            + self.n_infected * self.infected_degree
            + self.n_normal * self.normal_degree
        )


class BigDay:
    """One generated big-day world: interners, feeds, and edge streams."""

    def __init__(self, config: BigDayConfig) -> None:
        self.config = config
        cfg = config
        self.machines = Interner(f"h{i:08d}" for i in range(cfg.n_machines))

        # Domain id layout (contiguous blocks, in this order):
        #   [0, n_hot)              hot    www.hot{k}.example
        #   [+, n_mid)              mid    svc.mid{j}.example
        #   [+, n_cdn_fqds)         cdn    a{h}.cdn{c}.example
        #   [+, n_cnc)              cnc    c{i}.fam{f}-cc.example
        #   [+, n_tails)            tail   a.t{r}.example
        self.domains = Interner()
        self.hot_base = 0
        for k in range(cfg.n_hot):
            self.domains.intern(f"www.hot{k}.example")
        self.mid_base = len(self.domains)
        for j in range(cfg.n_mid):
            self.domains.intern(f"svc.mid{j}.example")
        self.cdn_base = len(self.domains)
        for h in range(cfg.n_cdn_fqds):
            self.domains.intern(f"a{h}.cdn{h % cfg.n_cdn_e2lds}.example")
        self.cnc_base = len(self.domains)
        per_family = cfg.n_known_per_family + cfg.n_fresh_per_family
        for f in range(cfg.n_families):
            for i in range(per_family):
                self.domains.intern(f"c{i}.fam{f}-cc.example")
        self.tail_base = len(self.domains)
        for r in range(cfg.n_tails):
            self.domains.intern(f"a.t{r}.example")

        self.psl = PublicSuffixList()
        self.e2ld_index = E2ldIndex(self.domains, self.psl)
        # Whitelist: every hot e2LD plus a quarter of the mid pool — the
        # classifier must see benign examples at *mid* popularity too, or
        # it learns "low degree = malware" and floods the unlabeled mids.
        whitelisted = [f"hot{k}.example" for k in range(cfg.n_hot)]
        whitelisted += [f"mid{j}.example" for j in range(0, cfg.n_mid, 4)]
        self.whitelist = DomainWhitelist(
            whitelisted, psl=self.psl, name="bigday-whitelist"
        )
        self.blacklist = CncBlacklist("bigday-blacklist")
        known_day = cfg.start_day - 10
        fresh_day = cfg.start_day + cfg.fresh_blacklist_lag
        for f in range(cfg.n_families):
            for i in range(per_family):
                name = f"c{i}.fam{f}-cc.example"
                added = known_day if i < cfg.n_known_per_family else fresh_day
                self.blacklist.add(name, added, family=f"fam{f}")

        self._machine_starts, self._degrees, self._row_starts = (
            self._strata_layout()
        )
        self.pdns = PassiveDNSDatabase()
        self.fqd_activity = ActivityIndex()
        self.e2ld_activity = ActivityIndex()
        self._play_backstory()
        self._truth_names = {
            f"c{i}.fam{f}-cc.example"
            for f in range(cfg.n_families)
            for i in range(per_family)
        }

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    def _strata_layout(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-stratum (first machine id, degree, first global row)."""
        cfg = self.config
        counts = np.array(
            [cfg.n_inactive, cfg.n_meganodes, cfg.n_infected, cfg.n_normal],
            dtype=np.int64,
        )
        degrees = np.array(
            [3, cfg.meganode_degree, cfg.infected_degree, cfg.normal_degree],
            dtype=np.int64,
        )
        machine_starts = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=machine_starts[1:])
        row_starts = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts * degrees, out=row_starts[1:])
        return machine_starts, degrees, row_starts

    @property
    def n_rows_per_day(self) -> int:
        return int(self._row_starts[-1])

    def eval_day(self, offset: int) -> int:
        if not 0 <= offset < self.config.n_days:
            raise ValueError(
                f"offset {offset} outside eval window [0, {self.config.n_days - 1}]"
            )
        return self.config.start_day + offset

    def is_malware(self, name: str) -> bool:
        """Ground-truth oracle (evaluation only — never seen by Segugio)."""
        return name in self._truth_names

    # ------------------------------------------------------------------ #
    # the pure edge function
    # ------------------------------------------------------------------ #

    def _rows(self, day: int, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Raw (machine id, domain id) rows for global row range [lo, hi).

        Pure in (seed, day, row index): the stream is reproducible from
        any offset, which is what makes batch size a free parameter.
        """
        cfg = self.config
        rows = np.arange(lo, hi, dtype=np.int64)
        stratum = (
            np.searchsorted(self._row_starts, rows, side="right") - 1
        )
        local = rows - self._row_starts[stratum]
        degree = self._degrees[stratum]
        machines = self._machine_starts[stratum] + local // degree
        slots = local % degree

        # seed/day fold in python ints (arbitrary precision, masked to 64
        # bits) — numpy uint64 *scalar* products warn on wraparound
        base = (cfg.seed * int(_K_SEED) + day * int(_K_DAY)) & 0xFFFFFFFFFFFFFFFF
        keys = _mix64(
            np.uint64(base)
            + machines.astype(np.uint64) * _K_MACHINE
            + slots.astype(np.uint64) * _K_SLOT
        )
        domains = np.empty(rows.size, dtype=np.int64)

        inactive = stratum == 0
        domains[inactive] = self.hot_base + (
            keys[inactive] % np.uint64(cfg.n_hot)
        ).astype(np.int64)

        mega = stratum == 1
        domains[mega] = self.hot_base + (
            keys[mega] % np.uint64(cfg.n_hot + cfg.n_mid)
        ).astype(np.int64)

        # infected and normal machines share the base profile by slot
        profiled = stratum >= 2
        pslots = slots[profiled]
        pkeys = keys[profiled]
        pmachines = machines[profiled]
        pdomains = np.empty(pslots.size, dtype=np.int64)

        hot = pslots < 8
        pdomains[hot] = self.hot_base + (
            pkeys[hot] % np.uint64(cfg.n_hot)
        ).astype(np.int64)
        mid = (pslots >= 8) & (pslots < 13)
        pdomains[mid] = self.mid_base + (
            pkeys[mid] % np.uint64(cfg.n_mid)
        ).astype(np.int64)
        tail = (pslots >= 13) & (pslots < 13 + cfg.tails_per_machine)
        tail_rank = pmachines[tail] - int(self._machine_starts[2])
        pdomains[tail] = (
            self.tail_base
            + tail_rank * cfg.tails_per_machine
            + (pslots[tail] - 13)
        )
        cdn = (pslots >= 13 + cfg.tails_per_machine) & (
            pslots < cfg.n_normal_slots
        )
        pdomains[cdn] = self.cdn_base + (
            pkeys[cdn] % np.uint64(cfg.n_cdn_fqds)
        ).astype(np.int64)
        cnc = pslots >= cfg.n_normal_slots  # infected machines only
        per_family = cfg.n_known_per_family + cfg.n_fresh_per_family
        family = pmachines[cnc] % cfg.n_families
        pdomains[cnc] = (
            self.cnc_base
            + family * per_family
            + (pkeys[cnc] % np.uint64(per_family)).astype(np.int64)
        )
        domains[profiled] = pdomains
        return machines, domains

    def iter_edge_batches(
        self, day: int, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Raw edge rows in fixed-size batches (last one ragged)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        total = self.n_rows_per_day
        for lo in range(0, total, batch_size):
            yield self._rows(day, lo, min(lo + batch_size, total))

    # ------------------------------------------------------------------ #
    # resolutions, pDNS, activity
    # ------------------------------------------------------------------ #

    def _resolution_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """(domain id, IPv4) rows for the resolved pools (hot/mid/cnc).

        Hot domains resolve to one dedicated clean address each; mid
        domains share clean addresses eight-to-an-IP (shared hosting), so
        whitelisted and unlabeled mids are mixed on the same
        infrastructure and the pDNS features cannot leak the label.  C&C
        domains resolve to two addresses drawn from a small recycled
        dirty block, so the pDNS abuse oracle sees genuine infrastructure
        reuse.  Tail and CDN resolutions are omitted (their nodes are
        pruned anyway).
        """
        cfg = self.config
        hot_mid = np.arange(
            self.hot_base, self.mid_base + cfg.n_mid, dtype=np.int64
        )
        shared = np.where(
            hot_mid >= self.mid_base,
            self.mid_base + (hot_mid - self.mid_base) // 8,
            hot_mid,
        )
        clean_ips = (np.uint64(0x0A000000) + shared.astype(np.uint64)).astype(
            np.int64
        )
        cnc = np.arange(self.cnc_base, self.cnc_base + cfg.n_cnc, dtype=np.int64)
        dirty_a = np.int64(0xC0A80000) + (
            _mix64(cnc.astype(np.uint64) * _K_MACHINE) % np.uint64(64)
        ).astype(np.int64)
        dirty_b = np.int64(0xC0A80000) + (
            _mix64(cnc.astype(np.uint64) * _K_SLOT) % np.uint64(64)
        ).astype(np.int64)
        dids = np.concatenate([hot_mid, cnc, cnc])
        ips = np.concatenate([clean_ips, dirty_a, dirty_b])
        return dids, ips

    def _play_backstory(self) -> None:
        """Seed pDNS and the activity indices over the pre-eval window."""
        cfg = self.config
        res_dids, res_ips = self._resolution_rows()
        active = np.arange(0, self.cnc_base + cfg.n_cnc, dtype=np.int64)
        e2ld_map = self.e2ld_index.map_array()
        active_e2lds = np.unique(e2ld_map[active])
        last_day = cfg.start_day + cfg.n_days - 1
        pdns_start = cfg.start_day - cfg.pdns_history_days
        act_start = cfg.start_day - cfg.activity_backfill_days
        for day in range(min(pdns_start, act_start), last_day + 1):
            if day >= pdns_start:
                self.pdns.observe_day(day, res_dids, res_ips.astype(np.uint32))
            if day >= act_start:
                self.fqd_activity.record(day, active)
                self.e2ld_activity.record(day, active_e2lds)

    # ------------------------------------------------------------------ #
    # traces and contexts
    # ------------------------------------------------------------------ #

    def trace(self, day: int, batch_size: int = DEFAULT_BATCH_SIZE) -> DayTrace:
        """In-memory trace — the sharded path's equivalence reference.

        Materializes every raw row; use only at test scale.
        """
        chunks_m, chunks_d = [], []
        for em, ed in self.iter_edge_batches(day, batch_size):
            chunks_m.append(em)
            chunks_d.append(ed)
        res_dids, res_ips = self._resolution_rows()
        order = np.argsort(res_dids, kind="stable")
        res_sorted = res_dids[order]
        bounds = np.flatnonzero(
            np.diff(np.concatenate([[-1], res_sorted]))
        )
        resolutions: Dict[int, np.ndarray] = {}
        starts = np.append(bounds, res_sorted.size)
        for i in range(bounds.size):
            did = int(res_sorted[starts[i]])
            ips = res_ips[order][starts[i] : starts[i + 1]]
            resolutions[did] = np.unique(ips.astype(np.uint32))
        return DayTrace.build(
            day,
            self.machines,
            self.domains,
            np.concatenate(chunks_m),
            np.concatenate(chunks_d),
            resolutions,
        )

    def sharded_trace(
        self,
        day: int,
        directory: str,
        *,
        n_shards: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> ShardedDayTrace:
        """Stream the day straight into an edge store — never holds more
        than one batch of rows in memory."""
        writer = EdgeStoreWriter(directory, day=day, n_shards=n_shards)
        for em, ed in self.iter_edge_batches(day, batch_size):
            writer.add_batch(em, ed)
        res_dids, res_ips = self._resolution_rows()
        writer.add_resolutions(res_dids, res_ips)
        writer.finalize(
            n_machines=len(self.machines), n_domains=len(self.domains)
        )
        return ShardedDayTrace.open(directory, self.machines, self.domains)

    def context(
        self,
        day: int,
        *,
        store_dir: Optional[str] = None,
        shards: Optional[int] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> ObservationContext:
        """The observation Segugio receives for one big day.

        With ``shards`` set, the trace is streamed into an edge store
        under *store_dir* (one subdirectory per day) and the context
        carries a :class:`ShardedDayTrace`; otherwise the day is
        materialized in memory.
        """
        if shards is not None:
            if store_dir is None:
                raise ValueError("shards requires store_dir")
            directory = os.path.join(store_dir, f"day-{day:05d}")
            trace = self.sharded_trace(
                day, directory, n_shards=shards, batch_size=batch_size
            )
        else:
            trace = self.trace(day, batch_size=batch_size)
        return ObservationContext(
            day=day,
            trace=trace,
            fqd_activity=self.fqd_activity,
            e2ld_activity=self.e2ld_activity,
            e2ld_index=self.e2ld_index,
            pdns=self.pdns,
            blacklist=self.blacklist,
            whitelist=self.whitelist,
        )

    def __repr__(self) -> str:
        return (
            f"BigDay(machines={self.config.n_machines}, "
            f"domains={len(self.domains)}, "
            f"rows_per_day={self.n_rows_per_day})"
        )

"""The benign Internet: domains, popularity, hosting, and the whitelist.

Builds the benign domain universe as parallel NumPy arrays over a *benign
FQD index* (0..n_benign-1), each FQD also interned into the scenario's
global domain interner:

* **core** FQDs — subdomains of consistently-popular e2LDs (the whitelist
  candidates); hosted in clean space; queried every day globally.
* **tail** FQDs — long-tail benign sites; never consistently top, so they
  stay *unknown* to Segugio (the bulk of the negative class in deployment).
* **adult** FQDs — benign but hosted in "dirty" blocks (these depress
  IP-reputation systems; see the Notos FP breakdown, Table IV).
* **free-site** FQDs — user sites under free-subdomain-hosting services.
  A configurable fraction of the services is *identified* (added to the
  PSL's private section and excluded from the whitelist, as the paper
  does); the rest remain whitelisted e2LDs, reproducing the residual
  whitelist noise of Table III/Fig. 9.

Also derives the Alexa-style :class:`repro.intel.whitelist.RankingArchive`
(with churn, so only core e2LDs pass the "consistently top" filter) and the
final :class:`repro.intel.whitelist.DomainWhitelist`.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dns.publicsuffix import PublicSuffixList
from repro.intel.whitelist import DomainWhitelist, RankingArchive
from repro.synth.config import UniverseConfig
from repro.synth.hosting import HostingLandscape
from repro.utils.ids import Interner
from repro.utils.rng import RngFactory

KIND_CORE = 0
KIND_TAIL = 1
KIND_ADULT = 2
KIND_FREE_SITE = 3

_TLDS = ("com", "net", "org", "info", "co.uk", "de", "ru", "com.br", "it", "io")


class BenignUniverse:
    """Benign FQD population with popularity, hosting, and whitelist."""

    def __init__(
        self,
        config: UniverseConfig,
        hosting: HostingLandscape,
        domains: Interner,
        psl: PublicSuffixList,
        rngs: RngFactory,
    ) -> None:
        self.config = config
        self.hosting = hosting
        self.domains = domains
        self.psl = psl
        self._rngs = rngs.child("universe")

        names: List[str] = []
        kinds: List[int] = []
        self.core_e2lds: List[str] = []
        self.free_services: List[str] = []
        self._build_names(names, kinds)

        self.fqd_ids = domains.intern_many(names)
        self.kinds = np.asarray(kinds, dtype=np.int8)
        self.n_fqds = self.fqd_ids.size

        self._assign_popularity()
        self._assign_activity()
        self._assign_ips(names)
        self._build_whitelist()

    # ------------------------------------------------------------------ #
    # name generation
    # ------------------------------------------------------------------ #

    def _build_names(self, names: List[str], kinds: List[int]) -> None:
        """All registrant labels come from the shared :class:`NameForge`, so
        benign and malicious names are lexically indistinguishable; kind
        ground truth lives only in the ``kinds`` array."""
        from repro.synth.naming import NameForge

        cfg = self.config
        rng = self._rngs.stream("names")
        forge = NameForge(rng)
        index = 0  # universe-wide uniquifier (malware continues higher up)

        for _ in range(cfg.n_core_e2lds):
            e2ld = forge.e2ld(index)
            index += 1
            self.core_e2lds.append(e2ld)
            # Every core e2LD serves its apex and www; bigger sites add more.
            subdomains = cfg.subdomains_per_core[: 2 + int(rng.integers(0, 3))]
            for sub in subdomains:
                names.append(f"{sub}.{e2ld}" if sub else e2ld)
                kinds.append(KIND_CORE)

        for _ in range(cfg.n_tail_e2lds):
            e2ld = forge.e2ld(index)
            index += 1
            # Part of the tail serves from a www/host label like core does.
            if rng.random() < 0.3:
                names.append(f"{forge.subdomain_label()}.{e2ld}")
            else:
                names.append(e2ld)
            kinds.append(KIND_TAIL)

        self.adult_e2lds: List[str] = []
        for _ in range(cfg.n_adult_e2lds):
            e2ld = forge.e2ld(index)
            index += 1
            self.adult_e2lds.append(e2ld)
            names.append(e2ld)
            kinds.append(KIND_ADULT)

        for _ in range(cfg.n_free_hosting_services):
            service = f"{forge.site_label(index)}-host.com"
            index += 1
            self.free_services.append(service)
            for site in range(cfg.free_hosting_sites):
                names.append(f"{forge.site_label(index)}.{service}")
                index += 1
                kinds.append(KIND_FREE_SITE)

    # ------------------------------------------------------------------ #
    # attributes
    # ------------------------------------------------------------------ #

    def _assign_popularity(self) -> None:
        """Zipf weights: core FQDs take the head ranks, the rest the tail."""
        rng = self._rngs.stream("popularity")
        order = np.empty(self.n_fqds, dtype=np.int64)
        core = np.flatnonzero(self.kinds == KIND_CORE)
        rest = np.flatnonzero(self.kinds != KIND_CORE)
        order[: core.size] = rng.permutation(core)
        order[core.size:] = rng.permutation(rest)
        ranks = np.empty(self.n_fqds, dtype=np.int64)
        ranks[order] = np.arange(self.n_fqds)
        # Small rank offset -> a heavy head: the top sites are queried by a
        # large share of all machines each day (the google.com effect),
        # which is what pruning rule R4 exists to remove.
        weights = 1.0 / np.power(ranks + 3.0, self.config.zipf_exponent)
        self.query_weights = weights / weights.sum()
        self.cumulative_weights = np.cumsum(self.query_weights)

    def _assign_activity(self) -> None:
        """Per-day global query probability (drives the activity index)."""
        rng = self._rngs.stream("activity")
        p = self.config.tail_activity_prob * rng.uniform(
            0.5, 1.5, size=self.n_fqds
        )
        p = np.clip(p, 0.05, 1.0)
        p[self.kinds == KIND_CORE] = 1.0
        self.activity_prob = p
        # Passive-DNS coverage follows popularity: head domains are observed
        # nearly daily, the long tail only sporadically.  This gives even
        # some *whitelisted* FQDs thin pDNS histories — one reason
        # reputation systems accumulate "no evidence" false positives
        # (Table IV) while Segugio, which does not rely on per-domain
        # history depth, does not.
        scaled = self.n_fqds * self.query_weights * 0.15
        self.pdns_obs_prob = np.clip(scaled, 0.01, 0.95)

    def _assign_ips(self, names: List[str]) -> None:
        """Stable resolved-IP sets, ragged (offsets + flat array).

        All sites of one free-hosting service share that service's IPs —
        which is why IP evidence cannot separate an abused user site from a
        legitimate one.
        """
        rng = self._rngs.stream("ips")
        ip_lists: List[np.ndarray] = []
        service_ips: Dict[str, np.ndarray] = {
            service: self.hosting.allocate("clean", 4, f"svc:{service}")
            for service in self.free_services
        }
        for i in range(self.n_fqds):
            kind = self.kinds[i]
            if kind == KIND_FREE_SITE:
                service = names[i].split(".", 1)[1]
                ip_lists.append(service_ips[service])
                continue
            count = 1 + int(rng.integers(0, 3))
            pool = "dirty" if kind == KIND_ADULT else "clean"
            ip_lists.append(self.hosting.allocate(pool, count, f"b:{names[i]}"))
        lengths = np.asarray([ips.size for ips in ip_lists], dtype=np.int64)
        self.ip_offsets = np.zeros(self.n_fqds + 1, dtype=np.int64)
        np.cumsum(lengths, out=self.ip_offsets[1:])
        self.ip_flat = (
            np.concatenate(ip_lists) if ip_lists else np.empty(0, dtype=np.uint32)
        )

    def ips_of(self, benign_index: int) -> np.ndarray:
        lo, hi = self.ip_offsets[benign_index], self.ip_offsets[benign_index + 1]
        return self.ip_flat[lo:hi]

    # ------------------------------------------------------------------ #
    # whitelist derivation
    # ------------------------------------------------------------------ #

    def _build_whitelist(self) -> None:
        cfg = self.config
        rng = self._rngs.stream("ranking")

        # Identified free-hosting services: PSL-augmented + excluded.
        n_known = int(round(cfg.known_free_hosting_fraction * len(self.free_services)))
        self.identified_services = sorted(self.free_services)[:n_known]
        self.unidentified_services = [
            s for s in self.free_services if s not in self.identified_services
        ]
        self.psl.add_private_suffixes(self.identified_services)

        # Ranking archive: core e2LDs, adult e2LDs (adult sites are reliably
        # popular — the source of the "suspicious content" FPs in Table IV),
        # and all hosting services are 'popular'; core/adult e2LDs
        # occasionally churn out of a snapshot; tail never enters.
        archive = RankingArchive()
        for snapshot in range(cfg.ranking_snapshots):
            keep = rng.random(len(self.core_e2lds)) >= cfg.ranking_churn
            keep_adult = rng.random(len(self.adult_e2lds)) >= cfg.ranking_churn
            top = (
                [e2ld for e2ld, kept in zip(self.core_e2lds, keep) if kept]
                + [e2ld for e2ld, kept in zip(self.adult_e2lds, keep_adult) if kept]
                + list(self.free_services)
            )
            # A handful of briefly-popular extras churn in and out.
            extras = [f"burst{snapshot:02d}x{i}.com" for i in range(5)]
            archive.record_day(snapshot, top + extras)
        self.archive = archive
        self.consistent_core = sorted(
            set(self.core_e2lds) & archive.consistent_top()
        )
        self.whitelist = DomainWhitelist.from_archive(
            archive,
            free_registration_e2lds=self.identified_services,
            psl=self.psl,
            name="alexa-consistent",
        )

    def __repr__(self) -> str:
        return (
            f"BenignUniverse(fqds={self.n_fqds}, "
            f"core_e2lds={len(self.core_e2lds)}, "
            f"whitelist={len(self.whitelist)})"
        )

"""Shared domain-name morphology for benign and malicious registrations.

Benign long-tail sites and malware-control domains are drawn from the
*same* lexical generator: random letter runs plus a uniquifying index
rendered in one of several styles.  This matters for fidelity: if C&C
names carried a recognizable synthetic prefix, any classifier with
name-string ("zone") features would score them by morphology alone — an
oracle the real Internet does not provide.  Kind ground truth lives in the
generator's bookkeeping (see :meth:`repro.synth.scenario.Scenario.is_true_malware`
and the universe's ``kinds`` array), never in the name string.
"""

from __future__ import annotations

import numpy as np

_ALPHA = "abcdefghijklmnopqrstuvwxyz"

TLD_CHOICES = ("com", "net", "org", "info", "biz", "ru", "cc", "co.uk", "de", "com.br", "it", "io")
TLD_WEIGHTS = (0.3, 0.12, 0.08, 0.06, 0.05, 0.08, 0.04, 0.07, 0.07, 0.05, 0.04, 0.04)


class NameForge:
    """Generates unique, morphology-mixed domain labels."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._tld_cum = np.cumsum(np.asarray(TLD_WEIGHTS) / sum(TLD_WEIGHTS))

    def site_label(self, index: int) -> str:
        """A host-style label, unique per *index* within a namespace."""
        rng = self._rng
        n = int(rng.integers(3, 9))
        letters = "".join(_ALPHA[i] for i in rng.integers(0, 26, n))
        style = rng.random()
        if style < 0.4:
            return f"{letters}{index}"
        if style < 0.65:
            return f"{letters}-{index}"
        if style < 0.85:
            return f"{letters}{index:x}"
        return f"{index}{letters}"

    def tld(self) -> str:
        """A TLD from the shared registration distribution."""
        roll = float(self._rng.random())
        return TLD_CHOICES[int(np.searchsorted(self._tld_cum, roll))]

    def e2ld(self, index: int) -> str:
        return f"{self.site_label(index)}.{self.tld()}"

    def subdomain_label(self) -> str:
        """A short service-style label (www, mail, a1, ...)."""
        rng = self._rng
        common = ("www", "mail", "api", "cdn", "m", "ns1", "app")
        if rng.random() < 0.6:
            return common[int(rng.integers(0, len(common)))]
        n = int(rng.integers(2, 5))
        return "".join(_ALPHA[i] for i in rng.integers(0, 26, n))

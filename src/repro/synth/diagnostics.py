"""Self-checks for generated worlds: do the paper's preconditions hold?

Segugio's accuracy rests on measurable properties of the traffic (the
paper's three intuitions plus the ground-truth ecology).  This module
measures them on a generated :class:`repro.synth.scenario.Scenario` so
that configuration changes which silently break a precondition are caught
by a diagnostic, not by a mysteriously flat ROC three layers up:

* **agility** (intuition 1): infected machines keep querying *new* C&C
  names — fraction of known-infected machines querying >1 malware domain
  in a day (paper Fig. 3: ~70%).
* **overlap** (intuition 2): querier-set Jaccard within a family far
  exceeds the benign-pair baseline.
* **separation** (intuition 3): no clean machine ever queries a C&C
  domain (by construction; verified against the traces).
* **ecology**: blacklist coverage/lag, whitelist residual noise
  (unidentified free-hosting services), abused-IP reuse across families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.graphstats import intra_family_overlap
from repro.core.labeling import MALWARE, label_graph
from repro.dns.records import prefix24
from repro.synth.machines import ARCH_PROBE, ARCH_PROXY
from repro.synth.scenario import Scenario


@dataclass
class WorldDiagnostics:
    """Measured preconditions for one (scenario, ISP, day)."""

    isp: str
    day: int
    frac_infected_query_multiple: float = 0.0
    family_overlap_mean: float = 0.0
    benign_overlap_mean: float = 0.0
    clean_machine_cnc_queries: int = 0
    blacklist_coverage: float = 0.0
    mean_blacklist_lag_days: float = 0.0
    n_whitelist_noise_services: int = 0
    prefix_reuse_rate: float = 0.0
    checks: Dict[str, bool] = field(default_factory=dict)

    def healthy(self) -> bool:
        return all(self.checks.values())

    def report(self) -> str:
        lines = [f"world diagnostics ({self.isp}, day {self.day}):"]
        lines.append(
            f"  intuition 1 (agility): {self.frac_infected_query_multiple:.0%} "
            f"of infected machines query >1 C&C domain "
            f"[{'ok' if self.checks.get('agility') else 'WEAK'}]"
        )
        lines.append(
            f"  intuition 2 (overlap): family Jaccard "
            f"{self.family_overlap_mean:.2f} vs benign "
            f"{self.benign_overlap_mean:.2f} "
            f"[{'ok' if self.checks.get('overlap') else 'WEAK'}]"
        )
        lines.append(
            f"  intuition 3 (separation): {self.clean_machine_cnc_queries} "
            f"clean-machine C&C queries "
            f"[{'ok' if self.checks.get('separation') else 'VIOLATED'}]"
        )
        lines.append(
            f"  blacklist: {self.blacklist_coverage:.0%} coverage, "
            f"mean lag {self.mean_blacklist_lag_days:.1f}d; whitelist noise: "
            f"{self.n_whitelist_noise_services} unidentified services; "
            f"/24 reuse across families: {self.prefix_reuse_rate:.0%}"
        )
        return "\n".join(lines)


def diagnose(scenario: Scenario, isp: str, day: int) -> WorldDiagnostics:
    """Measure every precondition on one ISP-day of the world."""
    result = WorldDiagnostics(isp=isp, day=day)
    context = scenario.context(isp, day)
    graph = BehaviorGraph.from_trace(context.trace)
    labels = label_graph(
        graph, context.blacklist, context.whitelist, as_of_day=day
    )
    pop = scenario.populations[isp]
    mw = scenario.malware

    # --- intuition 1: agility ---
    special = set(
        int(m)
        for arch in (ARCH_PROXY, ARCH_PROBE)
        for m in pop.machines_of_archetype(arch)
    )
    infected = [
        int(m)
        for m in labels.machine_ids_with_label(MALWARE)
        if int(m) not in special and int(m) < pop.n_machines
    ]
    if infected:
        degrees = labels.machine_malware_degree[infected]
        result.frac_infected_query_multiple = float((degrees > 1).mean())
    result.checks["agility"] = result.frac_infected_query_multiple >= 0.5

    # --- intuition 2: overlap ---
    groups: Dict[str, List[int]] = {}
    for fam in list(pop.family_members)[:6]:
        active = mw.active_indices_of_family(fam, day)
        if active.size >= 2:
            groups[f"fam{fam}"] = [int(g) for g in mw.fqd_ids[active]]
    benign_sample = [int(d) for d in scenario.universe.fqd_ids[300:330]]
    overlaps = intra_family_overlap(graph, {**groups, "benign": benign_sample})
    family_values = [v for k, v in overlaps.items() if k != "benign"]
    result.family_overlap_mean = float(np.mean(family_values)) if family_values else 0.0
    result.benign_overlap_mean = float(overlaps.get("benign", 0.0))
    result.checks["overlap"] = (
        result.family_overlap_mean > result.benign_overlap_mean + 0.1
    )

    # --- intuition 3: separation ---
    malware_ids = set(mw.fqd_ids.tolist())
    infected_set = set(pop.infected_machines().tolist()) | special
    violations = 0
    for machine_id, domain_id in zip(graph.edge_machines, graph.edge_domains):
        if int(domain_id) in malware_ids and int(machine_id) not in infected_set:
            if int(machine_id) < pop.n_machines:  # ignore DHCP-churn aliases
                violations += 1
    result.clean_machine_cnc_queries = violations
    result.checks["separation"] = violations == 0

    # --- ecology ---
    covered = sum(
        1
        for i in range(mw.n_domains)
        if scenario.commercial_blacklist.contains(mw.name_of(i))
    )
    result.blacklist_coverage = covered / max(mw.n_domains, 1)
    lags = [
        entry.added_day - int(mw.activation[mw._names.index(entry.domain)])
        for entry in scenario.commercial_blacklist
        if entry.domain in mw._names
    ]
    result.mean_blacklist_lag_days = float(np.mean(lags)) if lags else 0.0
    result.n_whitelist_noise_services = len(
        scenario.universe.unidentified_services
    )

    # Abused-/24 reuse: fraction of bulletproof-hosted domains whose /24 is
    # shared with at least one other family's domain.
    prefix_owner: Dict[int, set] = {}
    for i in range(mw.n_domains):
        for ip in mw.ips_of(i):
            prefix_owner.setdefault(int(prefix24(int(ip))), set()).add(
                int(mw.family[i])
            )
    shared = sum(1 for fams in prefix_owner.values() if len(fams) > 1)
    result.prefix_reuse_rate = shared / max(len(prefix_owner), 1)
    result.checks["ecology"] = (
        0.4 < result.blacklist_coverage < 0.98
        and result.n_whitelist_noise_services > 0
    )
    return result

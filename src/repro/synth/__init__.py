"""Synthetic ISP DNS-traffic generator (the paper's data substrate).

The paper evaluates on DNS traces from two large US ISPs (1.6M-4M machines
per day) plus a commercial C&C blacklist, a one-year Alexa archive, a
passive-DNS database, and a sandbox-trace database — none of which are
obtainable.  This package generates a coherent synthetic equivalent:

* :mod:`repro.synth.hosting` — the IPv4 hosting landscape: clean blocks,
  "dirty" shared-hosting blocks, and bulletproof blocks recycled by malware.
* :mod:`repro.synth.internet` — the benign domain universe with Zipf
  popularity, subdomain structure, free-subdomain-hosting services, and the
  Alexa-style ranking archive from which the whitelist is derived.
* :mod:`repro.synth.malware` — malware families with agile C&C domain
  rotation, blacklist feeds with discovery lag, and sandbox runs.
* :mod:`repro.synth.machines` — ISP machine populations: normal/heavy users,
  inactive hosts, proxy meganodes, probe clients, and infections.
* :mod:`repro.synth.scenario` — the orchestrator producing per-day
  :class:`repro.core.pipeline.ObservationContext` objects.

Everything is driven by one root seed through
:class:`repro.utils.rng.RngFactory`: the same config + seed always produces
bit-identical traces, blacklists, and histories.
"""

from repro.synth.bigday import BigDay, BigDayConfig
from repro.synth.config import (
    HostingConfig,
    IspConfig,
    MalwareConfig,
    ScenarioConfig,
    UniverseConfig,
    benchmark_scenario_config,
    small_scenario_config,
)
from repro.synth.scenario import Scenario

__all__ = [
    "BigDay",
    "BigDayConfig",
    "HostingConfig",
    "IspConfig",
    "MalwareConfig",
    "Scenario",
    "ScenarioConfig",
    "UniverseConfig",
    "benchmark_scenario_config",
    "small_scenario_config",
]

"""Supervised parallel execution with a deterministic degradation ladder.

PR 4 made the forest hot path process-parallel; this module makes it
*survivable*.  A 60-day tracking campaign meets failure modes a single fit
never does — a worker OOM-killed mid-batch, a task wedged behind a dying
disk, a transient ``OSError`` from a flaky mount — and the paper's central
operational claim (cheap *daily* retraining, §IV-G) dies with the process
unless the execution layer absorbs them.

:func:`supervised_map` is a drop-in replacement for the executor fan-out:
it runs picklable tasks through a :class:`ProcessPoolExecutor`, watches for
worker death (``BrokenProcessPool``), enforces a per-task timeout, and on
any failure walks an explicit **degradation ladder**::

    [jobs] * (1 + max_retries)  →  jobs//2  →  jobs//4  →  …  →  2  →  serial

Each rung resubmits only the still-incomplete tasks.  Because every task
is seed-keyed up front (PR 4's determinism contract), a resubmitted task —
on a smaller pool or in-process on the serial ground floor — produces the
exact bytes it would have produced on the first attempt: degradation
changes *wall-clock*, never *results*.  ``MemoryError`` skips the
same-width resubmit rungs and shrinks immediately (retrying at the same
width would hit the same ceiling).  Non-retryable errors propagate
unchanged — the ladder absorbs infrastructure faults, not bugs.

Every step is recorded through the ambient
:class:`~repro.obs.events.RuntimeEventLog` (``worker_lost``, ``task_hang``,
``task_retry``, ``memory_pressure``, ``pool_shrunk``, ``serial_fallback``,
``day_retry``, ``io_retry``), which the tracker folds into the day's health
verdict and :class:`~repro.obs.run.RunTelemetry` folds into the manifest.

:func:`supervised_process_day` applies the same retry-then-degrade policy
one level up, around a whole tracker day: a transient error is retried on
the deterministic backoff schedule **only if the tracker's ledger is
untouched** — a day that failed after mutating state is not safely
re-runnable and fails loudly instead.

Injected faults (:mod:`repro.runtime.faults`) ride into workers as
picklable directives taken from the active plan at submission time; the
serial ground floor never executes worker-only directives, so a fault plan
can wedge a worker but never the coordinator.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import os

from repro.obs import workerctx
from repro.obs.events import RuntimeEventLog, current_event_log
from repro.obs.logs import get_logger
from repro.obs.provenance import current_decision_log
from repro.obs.resources import ResourceMonitor, current_monitor, process_clock
from repro.obs.tracing import current_tracer
from repro.obs.workerctx import TaskContext, WorkerMergeBox
from repro.runtime.faults import (
    FaultDirective,
    FaultPlan,
    apply_directive,
    current_fault_plan,
)
from repro.runtime.retry import backoff_schedule

if TYPE_CHECKING:
    from repro.core.pipeline import ObservationContext
    from repro.core.tracker import DayReport, DomainTracker

logger = get_logger("runtime.supervisor")

#: event kinds emitted by the supervised execution layer
EVENT_WORKER_LOST = "worker_lost"
EVENT_TASK_HANG = "task_hang"
EVENT_TASK_RETRY = "task_retry"
EVENT_MEMORY_PRESSURE = "memory_pressure"
EVENT_POOL_SHRUNK = "pool_shrunk"
EVENT_SERIAL_FALLBACK = "serial_fallback"
EVENT_DAY_RETRY = "day_retry"
EVENT_IO_RETRY = "io_retry"

SUPERVISOR_EVENT_KINDS = (
    EVENT_WORKER_LOST,
    EVENT_TASK_HANG,
    EVENT_TASK_RETRY,
    EVENT_MEMORY_PRESSURE,
    EVENT_POOL_SHRUNK,
    EVENT_SERIAL_FALLBACK,
    EVENT_DAY_RETRY,
    EVENT_IO_RETRY,
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """How hard to try before degrading, and how long to wait while doing it.

    ``task_timeout`` is the *stall* window: a pool round is declared hung
    when no task completes for that many seconds (``None`` disables the
    watchdog).  ``max_retries`` counts full-width resubmit rungs before the
    ladder starts shrinking.  Backoff between rungs reuses the
    deterministic :func:`~repro.runtime.retry.backoff_schedule`; ``sleep``
    is injectable so tests run at full speed.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 1
    base_delay: float = 0.05
    multiplier: float = 2.0
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)
    sleep: Callable[[float], None] = time.sleep


DEFAULT_POLICY = SupervisorPolicy()

_ACTIVE_POLICY: Optional[SupervisorPolicy] = None


def current_policy() -> SupervisorPolicy:
    """The ambient policy (:data:`DEFAULT_POLICY` unless overridden)."""
    return _ACTIVE_POLICY if _ACTIVE_POLICY is not None else DEFAULT_POLICY


@contextmanager
def use_policy(policy: SupervisorPolicy) -> Iterator[SupervisorPolicy]:
    """Install *policy* as the ambient supervisor policy for the block."""
    global _ACTIVE_POLICY
    saved = _ACTIVE_POLICY
    _ACTIVE_POLICY = policy
    try:
        yield policy
    finally:
        _ACTIVE_POLICY = saved


def policy_from_overrides(
    overrides: Dict[str, float], base: Optional[SupervisorPolicy] = None
) -> SupervisorPolicy:
    """A policy with numeric fields replaced from a plan-file override dict."""
    base = current_policy() if base is None else base
    return SupervisorPolicy(
        task_timeout=float(overrides["task_timeout"])
        if "task_timeout" in overrides
        else base.task_timeout,
        max_retries=int(overrides.get("max_retries", base.max_retries)),
        base_delay=float(overrides.get("base_delay", base.base_delay)),
        multiplier=float(overrides.get("multiplier", base.multiplier)),
        retry_on=base.retry_on,
        sleep=base.sleep,
    )


def ladder_widths(jobs: int, max_retries: int) -> List[int]:
    """The degradation ladder: pool widths per rung, ending at 0 (serial).

    Full width is tried ``1 + max_retries`` times, then halved down to 2;
    a 1-worker pool is pointless (all the IPC, none of the parallelism),
    so the ground floor is in-process serial execution, encoded as 0.
    """
    if jobs < 2:
        return [0]
    widths = [jobs] * (1 + max(0, int(max_retries)))
    width = jobs // 2
    while width >= 2:
        widths.append(width)
        width //= 2
    widths.append(0)
    return widths


@dataclass(frozen=True)
class _MeasuredResult:
    """A task result wrapped with its worker-side self-measurement.

    Produced by :func:`_supervised_call` when profiling is active and
    unwrapped by the coordinator before the result lands in the output
    list — callers of :func:`supervised_map` never see it, so profiling
    cannot perturb results.
    """

    result: Any
    exec_wall_s: float
    exec_cpu_s: float
    pid: int


def _supervised_call(
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    directive: Optional[FaultDirective],
    measure: bool = False,
    ctx: Optional[TaskContext] = None,
) -> Any:
    """Worker shim: execute one injected fault directive, then the task.

    With *measure* (set when the coordinating run profiles resources) the
    task self-times its wall and CPU seconds via
    :func:`repro.obs.resources.process_clock` and returns a
    :class:`_MeasuredResult` for the coordinator to unwrap.  With *ctx*
    (set when worker tracing is active — implies *measure*) the task runs
    under a full worker telemetry stack and spills its finished span
    record to the context's sidecar file before returning.
    """
    if directive is not None:
        apply_directive(directive, in_worker=True)
    if ctx is not None:
        wall0, cpu0 = process_clock()
        result, record = workerctx.execute(ctx, fn, args)
        wall1, cpu1 = process_clock()
        workerctx.spill(ctx.sidecar_dir, record)
        return _MeasuredResult(result, wall1 - wall0, cpu1 - cpu0, os.getpid())
    if not measure:
        return fn(*args)
    wall0, cpu0 = process_clock()
    result = fn(*args)
    wall1, cpu1 = process_clock()
    return _MeasuredResult(result, wall1 - wall0, cpu1 - cpu0, os.getpid())


def _run_serial(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    pending: Sequence[int],
    results: List[Any],
    done: List[bool],
    label: str,
    policy: SupervisorPolicy,
    events: RuntimeEventLog,
    box: Optional[WorkerMergeBox] = None,
) -> None:
    """In-process execution with bounded retries on transient errors."""
    delays = backoff_schedule(
        policy.max_retries + 2, policy.base_delay, policy.multiplier
    )
    monitor: ResourceMonitor = current_monitor()
    for index in pending:
        attempt = 0
        while True:
            try:
                if box is not None:
                    # worker tracing: run under the same telemetry stack a
                    # pool worker would, so the merged span tree is
                    # identical at any worker count (serial included)
                    wall0, cpu0 = process_clock()
                    results[index], record = workerctx.execute(
                        box.task_context(index, workerctx.SERIAL_ROUND),
                        fn,
                        tasks[index],
                    )
                    wall1, cpu1 = process_clock()
                    monitor.observe_task(
                        label, 0.0, wall1 - wall0, cpu1 - cpu0, "serial"
                    )
                    box.collect_serial(index, record)
                elif monitor.enabled:
                    wall0, cpu0 = process_clock()
                    results[index] = fn(*tasks[index])
                    wall1, cpu1 = process_clock()
                    monitor.observe_task(
                        label, 0.0, wall1 - wall0, cpu1 - cpu0, "serial"
                    )
                else:
                    results[index] = fn(*tasks[index])
            except policy.retry_on as error:
                if attempt >= len(delays):
                    raise
                events.record(
                    EVENT_TASK_RETRY,
                    label=label,
                    task=index,
                    error=str(error),
                    serial=True,
                )
                policy.sleep(delays[attempt])
                attempt += 1
            else:
                done[index] = True
                break


def _run_pool_round(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    pending: Sequence[int],
    width: int,
    label: str,
    policy: SupervisorPolicy,
    plan: Optional[FaultPlan],
    results: List[Any],
    done: List[bool],
    events: RuntimeEventLog,
    round_index: int = 0,
    box: Optional[WorkerMergeBox] = None,
) -> Optional[str]:
    """One ladder rung: submit *pending* to a *width*-worker pool.

    Returns ``None`` when every submitted task completed, else the event
    kind that ended or degraded the round.  Completed results are kept
    across failures — only incomplete tasks climb down to the next rung.
    """
    directives: Dict[int, FaultDirective] = {}
    if plan is not None:
        for index in pending:
            directive = plan.take(label, index)
            if directive is not None:
                directives[index] = directive
    failure: Optional[str] = None
    monitor: ResourceMonitor = current_monitor()
    measure = monitor.enabled
    pool = ProcessPoolExecutor(max_workers=width)
    try:
        futures: Dict[Any, int] = {}
        submitted: Dict[int, float] = {}
        for index in pending:
            futures[
                pool.submit(
                    _supervised_call,
                    fn,
                    tasks[index],
                    directives.get(index),
                    measure,
                    box.task_context(index, round_index)
                    if box is not None
                    else None,
                )
            ] = index
            if measure:
                submitted[index] = time.perf_counter()
        outstanding = set(futures)
        while outstanding:
            finished, outstanding = wait(
                outstanding, timeout=policy.task_timeout, return_when=FIRST_COMPLETED
            )
            if not finished:
                events.record(
                    EVENT_TASK_HANG,
                    label=label,
                    n_pending=len(outstanding),
                    timeout=policy.task_timeout,
                )
                return EVENT_TASK_HANG
            for future in finished:
                index = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    events.record(EVENT_WORKER_LOST, label=label, task=index)
                    return EVENT_WORKER_LOST
                except MemoryError as error:
                    events.record(
                        EVENT_MEMORY_PRESSURE, label=label, task=index, error=str(error)
                    )
                    failure = EVENT_MEMORY_PRESSURE
                except policy.retry_on as error:
                    events.record(
                        EVENT_TASK_RETRY, label=label, task=index, error=str(error)
                    )
                    if failure is None:
                        failure = EVENT_TASK_RETRY
                else:
                    if isinstance(value, _MeasuredResult):
                        # queue-wait = submit-to-result latency minus the
                        # worker's own execution wall; observation only
                        latency = time.perf_counter() - submitted.get(
                            index, time.perf_counter()
                        )
                        monitor.observe_task(
                            label,
                            max(latency - value.exec_wall_s, 0.0),
                            value.exec_wall_s,
                            value.exec_cpu_s,
                            value.pid,
                        )
                        value = value.result
                    results[index] = value
                    done[index] = True
                    if box is not None:
                        box.note_completed(index, round_index)
        return failure
    finally:
        # wait=False + cancel_futures: a hung worker must not hold the
        # coordinator hostage; its eventual result is discarded.
        pool.shutdown(wait=False, cancel_futures=True)


def supervised_map(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    max_workers: int,
    label: str,
    policy: Optional[SupervisorPolicy] = None,
) -> List[Any]:
    """Map *fn* over argument tuples with supervision; results in task order.

    Bit-identical to ``[fn(*t) for t in tasks]`` by construction: tasks
    carry their own seeds, results land by index, and every failure path
    ends at in-process serial execution of whatever remains.  *label* is
    both the event/fault site name and the degradation provenance key.
    """
    policy = current_policy() if policy is None else policy
    task_list = list(tasks)
    n = len(task_list)
    results: List[Any] = [None] * n
    done = [False] * n
    events = current_event_log()
    jobs = max(1, min(int(max_workers), n))
    box = workerctx.open_box(label)
    try:
        if jobs <= 1:
            _run_serial(
                fn, task_list, range(n), results, done, label, policy, events, box
            )
            if box is not None:
                box.merge()
            return results
        plan = current_fault_plan()
        widths = ladder_widths(jobs, policy.max_retries)
        delays = backoff_schedule(
            len(widths), policy.base_delay, policy.multiplier
        )
        step = 0
        while True:
            pending = [index for index in range(n) if not done[index]]
            if not pending:
                break
            width = widths[step]
            if width == 0:
                events.record(
                    EVENT_SERIAL_FALLBACK, label=label, n_tasks=len(pending)
                )
                logger.warning(
                    "degraded to serial execution",
                    label=label,
                    n_tasks=len(pending),
                )
                with current_tracer().span("segugio_supervisor_serial"):
                    _run_serial(
                        fn,
                        task_list,
                        pending,
                        results,
                        done,
                        label,
                        policy,
                        events,
                        box,
                    )
                break
            failure = _run_pool_round(
                fn,
                task_list,
                pending,
                width,
                label,
                policy,
                plan,
                results,
                done,
                events,
                round_index=step,
                box=box,
            )
            if failure is None:
                break
            next_step = step + 1
            if failure == EVENT_MEMORY_PRESSURE:
                # same-width resubmits would hit the same memory ceiling
                while widths[next_step] != 0 and widths[next_step] >= width:
                    next_step += 1
            if widths[next_step] != 0 and widths[next_step] < width:
                events.record(
                    EVENT_POOL_SHRUNK,
                    label=label,
                    from_workers=width,
                    to_workers=widths[next_step],
                )
            policy.sleep(delays[min(step, len(delays) - 1)])
            step = next_step
        if box is not None:
            box.merge()
        return results
    finally:
        if box is not None:
            box.cleanup()


def supervised_process_day(
    tracker: "DomainTracker",
    context: "ObservationContext",
    policy: Optional[SupervisorPolicy] = None,
) -> "DayReport":
    """Run one tracker day with transient-fault retry, guarded for safety.

    A transient error (``policy.retry_on``) is retried on the deterministic
    backoff schedule **only while the tracker's state is untouched** — the
    common case, since fit/classify faults surface before ``finalize_day``
    mutates the ledger.  A day that failed after mutating state re-raises
    immediately: replaying it could double-count, and loud is better than
    subtly wrong.
    """
    policy = current_policy() if policy is None else policy
    events = current_event_log()
    delays = backoff_schedule(
        policy.max_retries + 2, policy.base_delay, policy.multiplier
    )
    before = tracker.state_dict()
    telemetry = getattr(tracker, "telemetry", None)
    decisions = (
        telemetry.decisions if telemetry is not None else current_decision_log()
    )
    decisions_mark = len(decisions.records)
    for attempt, delay in enumerate(delays):
        try:
            return tracker.process_day(context)
        except policy.retry_on as error:
            if tracker.state_dict() != before:
                raise
            # discard any decision records the failed attempt emitted, so
            # the retried day's decisions.jsonl stays bit-identical
            del decisions.records[decisions_mark:]
            events.record(
                EVENT_DAY_RETRY,
                day=int(context.day),
                attempt=attempt,
                error=str(error),
            )
            logger.warning(
                "retrying day after transient error",
                day=int(context.day),
                attempt=attempt,
                error=str(error),
            )
            policy.sleep(delay)
    return tracker.process_day(context)

"""Checksummed checkpoint/resume for multi-week tracking runs.

A :class:`~repro.core.tracker.DomainTracker` deployment runs for weeks; a
crash halfway must not force re-scoring completed days (each day is a full
train+classify cycle), nor may it silently resume from a half-written or
bit-rotted file.  A checkpoint therefore:

* persists the full mutable state (ledger, day cursor, per-day thresholds)
  *and* the :class:`~repro.core.pipeline.SegugioConfig`, so the resumed run
  reproduces the original bit-for-bit;
* is written atomically (staged then renamed, never torn);
* carries a SHA-256 of its payload in a one-line header, so corruption —
  truncation, a flipped byte, a partial rsync — is *refused* with an
  actionable :class:`CheckpointError` instead of resuming a wrong ledger.

Format: a single text file whose first line is
``segugio-checkpoint v<N> sha256=<hex>`` and whose remainder is canonical
(sorted-keys) JSON.

The tracker's day-over-day *drift reference* (full feature matrix and
score vector of the last processed day) is deliberately outside the
checksummed payload — it would bloat every save and the ledger does not
need it.  It rides in a best-effort ``<path>.drift.npz`` sidecar instead:
written atomically next to each checkpoint, loaded on resume only when its
day matches the checkpoint's last processed day, and silently skipped when
missing, stale, or corrupt — a lost sidecar costs one day's drift summary,
never the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core.pipeline import SegugioConfig
from repro.core.pruning import PruneConfig
from repro.obs.events import current_event_log
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import current_tracer
from repro.runtime.faults import maybe_fault
from repro.runtime.retry import atomic_file, retry
from repro.utils.errors import CheckpointError

if TYPE_CHECKING:  # runtime import would cycle: tracker imports this module
    from repro.core.tracker import DomainTracker

CHECKPOINT_VERSION = 1
_HEADER_PREFIX = "segugio-checkpoint"

DRIFT_SIDECAR_SUFFIX = ".drift.npz"

_log = get_logger("checkpoint")


def config_to_dict(config: SegugioConfig) -> dict:
    """JSON-serializable form of a :class:`SegugioConfig`."""
    payload = dataclasses.asdict(config)
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = list(payload["feature_columns"])
    return payload


def config_from_dict(payload: dict) -> SegugioConfig:
    """Rebuild a :class:`SegugioConfig` from :func:`config_to_dict`."""
    payload = dict(payload)
    prune = payload.get("prune")
    if isinstance(prune, dict):
        payload["prune"] = PruneConfig(**prune)
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = tuple(payload["feature_columns"])
    try:
        return SegugioConfig(**payload)
    except TypeError as error:
        raise CheckpointError(
            f"checkpoint config does not match this library's "
            f"SegugioConfig ({error}); the checkpoint was written by an "
            f"incompatible version"
        ) from None


def _digest(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def save_checkpoint(tracker: "DomainTracker", path: str) -> None:
    """Atomically write *tracker* (a :class:`DomainTracker`) to *path*.

    Transient ``OSError`` during the write is retried on the deterministic
    backoff schedule, each retry recorded as an ``io_retry`` runtime event;
    the atomic staging pattern guarantees a failed attempt leaves no torn
    file behind.  The drift sidecar is saved best-effort afterwards — a
    sidecar failure warns and is recorded, but never fails the checkpoint.
    """
    payload = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "config": config_to_dict(tracker.config),
        "state": tracker.state_dict(),
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    header = f"{_HEADER_PREFIX} v{CHECKPOINT_VERSION} sha256={_digest(body)}"
    events = current_event_log()

    def _write() -> None:
        with atomic_file(path) as staging:
            with open(staging, "w") as stream:
                stream.write(header + "\n" + body + "\n")
            maybe_fault("checkpoint_save", path=staging)

    def _on_retry(attempt: int, error: BaseException) -> None:
        events.record(
            "io_retry",
            site="checkpoint_save",
            path=path,
            attempt=attempt,
            error=str(error),
        )
        _log.warning(
            "checkpoint_save_retry", path=path, attempt=attempt, error=str(error)
        )

    with current_tracer().span("segugio_checkpoint_save", path=path):
        retry(attempts=3, on_retry=_on_retry)(_write)()
        try:
            save_drift_sidecar(tracker, path)
        except OSError as error:
            events.record(
                "io_retry",
                site="drift_sidecar_save",
                path=path,
                attempt=0,
                error=str(error),
            )
            _log.warning(
                "drift_sidecar_save_failed", path=path, error=str(error)
            )
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "segugio_checkpoint_saves_total", "checkpoints written"
        ).inc()
        registry.gauge(
            "segugio_checkpoint_bytes", "size of the last checkpoint"
        ).set(len(header) + len(body) + 2)
    _log.info(
        "checkpoint_saved",
        path=path,
        n_days=len(tracker.days_processed),
        n_tracked=len(tracker.tracked),
    )


def drift_sidecar_path(path: str) -> str:
    """Where the drift sidecar for checkpoint *path* lives."""
    return path + DRIFT_SIDECAR_SUFFIX


def save_drift_sidecar(tracker: "DomainTracker", path: str) -> Optional[str]:
    """Persist the tracker's drift reference next to its checkpoint.

    Writes ``<path>.drift.npz`` atomically (the reference arrays plus a
    JSON metadata record), so a resumed run's first drift summary is
    bit-identical to the one an uninterrupted run would have computed.
    When the tracker has no reference yet, any stale sidecar is removed —
    a sidecar must never outlive the state it describes.  Returns the
    sidecar path, or None when nothing was written.
    """
    sidecar = drift_sidecar_path(path)
    reference = tracker.drift_reference()
    if reference is None:
        if os.path.exists(sidecar):
            os.remove(sidecar)
        return None
    meta = {
        "day": int(reference["day"]),  # type: ignore[arg-type]
        "blacklist": sorted(reference["blacklist"]),  # type: ignore[arg-type]
        "prune_stats": dict(reference["prune_stats"]),  # type: ignore[arg-type]
        "n_scored": int(reference["n_scored"]),  # type: ignore[arg-type]
    }
    with atomic_file(sidecar) as staging:
        with open(staging, "wb") as stream:
            np.savez(
                stream,
                features=np.asarray(reference["features"], dtype=np.float64),
                scores=np.asarray(reference["scores"], dtype=np.float64),
                meta=np.array(json.dumps(meta, sort_keys=True)),
            )
    _log.info("drift_sidecar_saved", path=sidecar, day=meta["day"])
    return sidecar


def load_drift_sidecar(
    path: str, expected_day: Optional[int] = None
) -> Optional[Dict[str, object]]:
    """Load the drift reference saved next to checkpoint *path*, if usable.

    Returns None — with a structured warning, never an exception — when
    the sidecar is missing, unreadable, or describes a different day than
    *expected_day* (it then predates the checkpoint and would produce a
    wrong drift summary).  The sidecar is an optimization, not state: the
    resumed ledger is bit-identical either way.
    """
    sidecar = drift_sidecar_path(path)
    if not os.path.exists(sidecar):
        return None
    try:
        with np.load(sidecar, allow_pickle=False) as data:
            features = np.array(data["features"], dtype=np.float64)
            scores = np.array(data["scores"], dtype=np.float64)
            meta = json.loads(str(data["meta"][()]))
        day = int(meta["day"])
        reference: Dict[str, object] = {
            "day": day,
            "features": features,
            "scores": scores,
            "blacklist": frozenset(str(name) for name in meta["blacklist"]),
            "prune_stats": dict(meta["prune_stats"]),
            "n_scored": int(meta["n_scored"]),
        }
    except Exception as error:  # any corruption mode: degrade, don't die
        _log.warning(
            "drift_sidecar_unreadable", path=sidecar, error=str(error)
        )
        return None
    if expected_day is not None and day != int(expected_day):
        _log.warning(
            "drift_sidecar_stale",
            path=sidecar,
            sidecar_day=day,
            expected_day=int(expected_day),
        )
        return None
    return reference


def load_checkpoint(path: str) -> dict:
    """Read and verify a checkpoint; returns the decoded payload.

    Raises :class:`CheckpointError` — never a bare parse error — for every
    corruption mode: missing file, foreign format, unsupported version,
    checksum mismatch (truncation or bit-rot), undecodable body.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: checkpoint file does not exist")
    # Read as bytes: a flipped bit can make the file invalid UTF-8, and
    # that too must surface as a CheckpointError, not a codec error.
    with open(path, "rb") as stream:
        head, _, body_bytes = stream.read().partition(b"\n")
    body_bytes = body_bytes.rstrip(b"\n")
    try:
        header = head.decode("utf-8")
    except UnicodeDecodeError:
        raise CheckpointError(
            f"{path}: not a segugio checkpoint (undecodable header)"
        ) from None
    parts = header.split()
    if len(parts) != 3 or parts[0] != _HEADER_PREFIX:
        raise CheckpointError(
            f"{path}: not a segugio checkpoint (bad header {header[:60]!r})"
        )
    version_text, checksum_text = parts[1], parts[2]
    if not version_text.startswith("v") or not checksum_text.startswith(
        "sha256="
    ):
        raise CheckpointError(
            f"{path}: malformed checkpoint header {header[:60]!r}"
        )
    try:
        version = int(version_text[1:])
    except ValueError:
        raise CheckpointError(
            f"{path}: non-numeric checkpoint version {version_text!r}"
        ) from None
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is not supported by "
            f"this library (supports version {CHECKPOINT_VERSION}); "
            f"re-run the original tracking job or upgrade the library"
        )
    expected = checksum_text[len("sha256="):]
    actual = hashlib.sha256(body_bytes).hexdigest()
    if actual != expected:
        raise CheckpointError(
            f"{path}: checksum mismatch (header says {expected[:12]}..., "
            f"body hashes to {actual[:12]}...) — the file is truncated or "
            f"corrupted; restore it from a good copy or restart the "
            f"tracking run from scratch"
        )
    try:
        payload = json.loads(body_bytes.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"{path}: checkpoint body is not valid JSON ({error})"
        ) from None
    for key in ("checkpoint_version", "config", "state"):
        if key not in payload:
            raise CheckpointError(
                f"{path}: checkpoint payload is missing {key!r}"
            )
    return payload


def resume_tracker(
    path: str, config: Optional[SegugioConfig] = None
) -> "DomainTracker":
    """Rebuild the :class:`DomainTracker` stored at *path*.

    The persisted config is used unless *config* overrides it (overriding
    forfeits the bit-identical-resume guarantee and is for experiments
    only).
    """
    from repro.core.tracker import DomainTracker

    with current_tracer().span("segugio_checkpoint_resume", path=path):
        payload = load_checkpoint(path)
        resolved = (
            config
            if config is not None
            else config_from_dict(payload["config"])
        )
        tracker = DomainTracker.from_state(payload["state"], config=resolved)
        reference = load_drift_sidecar(
            path,
            expected_day=(
                tracker.days_processed[-1] if tracker.days_processed else None
            ),
        )
        if reference is not None:
            tracker.restore_drift_reference(reference)
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "segugio_checkpoint_resumes_total", "checkpoints resumed from"
        ).inc()
    _log.info(
        "checkpoint_resumed",
        path=path,
        n_days=len(tracker.days_processed),
        n_tracked=len(tracker.tracked),
    )
    return tracker

"""Checksummed checkpoint/resume for multi-week tracking runs.

A :class:`~repro.core.tracker.DomainTracker` deployment runs for weeks; a
crash halfway must not force re-scoring completed days (each day is a full
train+classify cycle), nor may it silently resume from a half-written or
bit-rotted file.  A checkpoint therefore:

* persists the full mutable state (ledger, day cursor, per-day thresholds)
  *and* the :class:`~repro.core.pipeline.SegugioConfig`, so the resumed run
  reproduces the original bit-for-bit;
* is written atomically (staged then renamed, never torn);
* carries a SHA-256 of its payload in a one-line header, so corruption —
  truncation, a flipped byte, a partial rsync — is *refused* with an
  actionable :class:`CheckpointError` instead of resuming a wrong ledger.

Format: a single text file whose first line is
``segugio-checkpoint v<N> sha256=<hex>`` and whose remainder is canonical
(sorted-keys) JSON.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import TYPE_CHECKING, Optional

from repro.core.pipeline import SegugioConfig
from repro.core.pruning import PruneConfig
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.tracing import current_tracer
from repro.runtime.retry import atomic_file
from repro.utils.errors import CheckpointError

if TYPE_CHECKING:  # runtime import would cycle: tracker imports this module
    from repro.core.tracker import DomainTracker

CHECKPOINT_VERSION = 1
_HEADER_PREFIX = "segugio-checkpoint"

_log = get_logger("checkpoint")


def config_to_dict(config: SegugioConfig) -> dict:
    """JSON-serializable form of a :class:`SegugioConfig`."""
    payload = dataclasses.asdict(config)
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = list(payload["feature_columns"])
    return payload


def config_from_dict(payload: dict) -> SegugioConfig:
    """Rebuild a :class:`SegugioConfig` from :func:`config_to_dict`."""
    payload = dict(payload)
    prune = payload.get("prune")
    if isinstance(prune, dict):
        payload["prune"] = PruneConfig(**prune)
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = tuple(payload["feature_columns"])
    try:
        return SegugioConfig(**payload)
    except TypeError as error:
        raise CheckpointError(
            f"checkpoint config does not match this library's "
            f"SegugioConfig ({error}); the checkpoint was written by an "
            f"incompatible version"
        ) from None


def _digest(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def save_checkpoint(tracker: "DomainTracker", path: str) -> None:
    """Atomically write *tracker* (a :class:`DomainTracker`) to *path*."""
    payload = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "config": config_to_dict(tracker.config),
        "state": tracker.state_dict(),
    }
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    header = f"{_HEADER_PREFIX} v{CHECKPOINT_VERSION} sha256={_digest(body)}"
    with current_tracer().span("segugio_checkpoint_save", path=path):
        with atomic_file(path) as staging:
            with open(staging, "w") as stream:
                stream.write(header + "\n" + body + "\n")
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "segugio_checkpoint_saves_total", "checkpoints written"
        ).inc()
        registry.gauge(
            "segugio_checkpoint_bytes", "size of the last checkpoint"
        ).set(len(header) + len(body) + 2)
    _log.info(
        "checkpoint_saved",
        path=path,
        n_days=len(tracker.days_processed),
        n_tracked=len(tracker.tracked),
    )


def load_checkpoint(path: str) -> dict:
    """Read and verify a checkpoint; returns the decoded payload.

    Raises :class:`CheckpointError` — never a bare parse error — for every
    corruption mode: missing file, foreign format, unsupported version,
    checksum mismatch (truncation or bit-rot), undecodable body.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"{path}: checkpoint file does not exist")
    # Read as bytes: a flipped bit can make the file invalid UTF-8, and
    # that too must surface as a CheckpointError, not a codec error.
    with open(path, "rb") as stream:
        head, _, body_bytes = stream.read().partition(b"\n")
    body_bytes = body_bytes.rstrip(b"\n")
    try:
        header = head.decode("utf-8")
    except UnicodeDecodeError:
        raise CheckpointError(
            f"{path}: not a segugio checkpoint (undecodable header)"
        ) from None
    parts = header.split()
    if len(parts) != 3 or parts[0] != _HEADER_PREFIX:
        raise CheckpointError(
            f"{path}: not a segugio checkpoint (bad header {header[:60]!r})"
        )
    version_text, checksum_text = parts[1], parts[2]
    if not version_text.startswith("v") or not checksum_text.startswith(
        "sha256="
    ):
        raise CheckpointError(
            f"{path}: malformed checkpoint header {header[:60]!r}"
        )
    try:
        version = int(version_text[1:])
    except ValueError:
        raise CheckpointError(
            f"{path}: non-numeric checkpoint version {version_text!r}"
        ) from None
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is not supported by "
            f"this library (supports version {CHECKPOINT_VERSION}); "
            f"re-run the original tracking job or upgrade the library"
        )
    expected = checksum_text[len("sha256="):]
    actual = hashlib.sha256(body_bytes).hexdigest()
    if actual != expected:
        raise CheckpointError(
            f"{path}: checksum mismatch (header says {expected[:12]}..., "
            f"body hashes to {actual[:12]}...) — the file is truncated or "
            f"corrupted; restore it from a good copy or restart the "
            f"tracking run from scratch"
        )
    try:
        payload = json.loads(body_bytes.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointError(
            f"{path}: checkpoint body is not valid JSON ({error})"
        ) from None
    for key in ("checkpoint_version", "config", "state"):
        if key not in payload:
            raise CheckpointError(
                f"{path}: checkpoint payload is missing {key!r}"
            )
    return payload


def resume_tracker(
    path: str, config: Optional[SegugioConfig] = None
) -> "DomainTracker":
    """Rebuild the :class:`DomainTracker` stored at *path*.

    The persisted config is used unless *config* overrides it (overriding
    forfeits the bit-identical-resume guarantee and is for experiments
    only).
    """
    from repro.core.tracker import DomainTracker

    with current_tracer().span("segugio_checkpoint_resume", path=path):
        payload = load_checkpoint(path)
        resolved = (
            config
            if config is not None
            else config_from_dict(payload["config"])
        )
        tracker = DomainTracker.from_state(payload["state"], config=resolved)
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "segugio_checkpoint_resumes_total", "checkpoints resumed from"
        ).inc()
    _log.info(
        "checkpoint_resumed",
        path=path,
        n_days=len(tracker.days_processed),
        n_tracked=len(tracker.tracked),
    )
    return tracker

"""Strict/lenient observation loading with quarantine accounting.

Real intelligence feeds and collector outputs are routinely stale, partial,
and malformed.  This module loads an observation directory (the layout of
:mod:`repro.datasets.store`) in one of two modes:

* ``strict`` — the first malformed record raises a located error
  (:class:`FeedFormatError` with file and 1-based line number, or
  :class:`IngestError` for structural faults).  This is the right mode for
  round-trip pipelines where any fault means a bug.
* ``lenient`` — malformed records are *quarantined*: dropped from the
  loaded context and tallied per category (``trace:bad_ipv4``,
  ``pdns:id_range``, ...) in an :class:`IngestReport`, with the first few
  offenders kept verbatim for the post-mortem.  If the overall malformed
  fraction exceeds ``max_error_rate`` the load fails loudly instead — a
  feed that is 30% garbage is a dead feed, not a noisy one.

Structural faults abort in *both* modes: a missing file, a torn positional
interner (``domains.txt`` disagreeing with ``meta.json``), or a trace whose
day header contradicts the metadata would silently shift every id or
feature window — exactly the "silent wrong answer" this layer exists to
prevent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import ObservationContext
from repro.datasets import store
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import DayTrace, parse_trace_line
from repro.intel.blacklist import CncBlacklist, parse_blacklist_line
from repro.intel.whitelist import DomainWhitelist, parse_whitelist_line
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import current_tracer
from repro.utils.errors import FeedFormatError, IngestError
from repro.utils.ids import Interner

DEFAULT_MAX_ERROR_RATE = 0.05
MAX_QUARANTINE_SAMPLES = 25

_log = get_logger("ingest")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One malformed record set aside by a lenient load."""

    source: str
    line: int  # 1-based; 0 for array-valued (npz) records
    category: str
    detail: str


@dataclass
class IngestReport:
    """Accounting for one observation load: what was kept, what was not.

    ``counters`` maps quarantine categories (``trace:bad_ipv4``, ...) to
    how many records each absorbed; ``quarantined`` keeps the first
    :data:`MAX_QUARANTINE_SAMPLES` offenders verbatim so the operator can
    see *which* lines were bad, not just how many.
    """

    source: str
    mode: str = "strict"
    n_ok: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)

    @property
    def n_quarantined(self) -> int:
        return sum(self.counters.values())

    @property
    def n_seen(self) -> int:
        return self.n_ok + self.n_quarantined

    @property
    def error_rate(self) -> float:
        seen = self.n_seen
        return self.n_quarantined / seen if seen else 0.0

    def keep(self, n: int = 1) -> None:
        self.n_ok += n

    def quarantine(
        self, source: str, line: int, category: str, detail: str
    ) -> None:
        self.counters[category] = self.counters.get(category, 0) + 1
        if len(self.quarantined) < MAX_QUARANTINE_SAMPLES:
            self.quarantined.append(
                QuarantinedRecord(source, line, category, detail)
            )

    def summary(self) -> str:
        lines = [
            f"ingest of {self.source} ({self.mode}): "
            f"{self.n_ok} records kept, {self.n_quarantined} quarantined "
            f"({self.error_rate:.2%})"
        ]
        for category in sorted(self.counters):
            lines.append(f"  {category}: {self.counters[category]}")
        for record in self.quarantined[:5]:
            location = (
                f"{record.source}:{record.line}"
                if record.line
                else record.source
            )
            lines.append(f"    e.g. {location}: {record.detail}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the run manifest's ingest section."""
        return {
            "source": self.source,
            "mode": self.mode,
            "n_ok": self.n_ok,
            "n_quarantined": self.n_quarantined,
            "error_rate": round(self.error_rate, 6),
            "counters": dict(sorted(self.counters.items())),
            "samples": [
                {
                    "source": record.source,
                    "line": record.line,
                    "category": record.category,
                    "detail": record.detail,
                }
                for record in self.quarantined
            ],
        }

    def emit_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish this load's accounting as ``segugio_ingest_*`` metrics.

        Called by :func:`load_observation_checked` *before* the error-rate
        cap can fail the load, so a day that quarantined 30% of its records
        is visible in the run's metrics and manifest after the fact — not
        only in the one-shot :class:`IngestError` message.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        records = registry.counter(
            "segugio_ingest_records_total",
            "records seen by ingest, by outcome",
            labels=("outcome",),
        )
        records.inc(self.n_ok, outcome="kept")
        if self.n_quarantined:
            records.inc(self.n_quarantined, outcome="quarantined")
            per_category = registry.counter(
                "segugio_ingest_quarantined_total",
                "quarantined records per category",
                labels=("category",),
            )
            for category, count in self.counters.items():
                per_category.inc(count, category=category)
        registry.gauge(
            "segugio_ingest_error_rate",
            "malformed fraction of the most recent load",
        ).set(self.error_rate)


# ---------------------------------------------------------------------- #
# lenient feed/trace loaders
# ---------------------------------------------------------------------- #


def load_trace_lenient(
    path: str,
    report: IngestReport,
    machines: Optional[Interner] = None,
    domains: Optional[Interner] = None,
) -> DayTrace:
    """Line-by-line :meth:`DayTrace.load` that quarantines bad records."""
    machines = machines if machines is not None else Interner()
    domains = domains if domains is not None else Interner()
    day = 0
    edge_m: List[int] = []
    edge_d: List[int] = []
    resolutions: Dict[int, set] = {}
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "day":
                    try:
                        candidate = int(parts[1])
                    except ValueError:
                        report.quarantine(
                            path, lineno, "trace:bad_day",
                            f"non-numeric day header {parts[1]!r}",
                        )
                        continue
                    if candidate < 0:
                        report.quarantine(
                            path, lineno, "trace:bad_day",
                            f"negative day header {candidate}",
                        )
                        continue
                    day = candidate
                continue
            try:
                machine, domain, ips = parse_trace_line(
                    line, source=path, lineno=lineno
                )
            except FeedFormatError as error:
                report.quarantine(
                    path, lineno, f"trace:{error.category}", error.detail
                )
                continue
            mid = machines.intern(machine)
            did = domains.intern(domain)
            edge_m.append(mid)
            edge_d.append(did)
            if ips:
                resolutions.setdefault(did, set()).update(ips)
            report.keep()
    packed = {
        did: np.array(sorted(ips), dtype=np.uint32)
        for did, ips in resolutions.items()
    }
    return DayTrace.build(day, machines, domains, edge_m, edge_d, packed)


def load_blacklist_lenient(
    path: str, report: IngestReport, name: str = "blacklist"
) -> CncBlacklist:
    """Line-by-line :meth:`CncBlacklist.load` that quarantines bad records."""
    blacklist = CncBlacklist(name)
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            try:
                domain, added_day, family = parse_blacklist_line(
                    line, source=path, lineno=lineno
                )
            except FeedFormatError as error:
                report.quarantine(
                    path, lineno, f"blacklist:{error.category}", error.detail
                )
                continue
            blacklist.add(domain, added_day, family)
            report.keep()
    return blacklist


def load_whitelist_lenient(
    path: str,
    report: IngestReport,
    psl: Optional[PublicSuffixList] = None,
    name: str = "whitelist",
) -> DomainWhitelist:
    """Line-by-line :meth:`DomainWhitelist.load` that quarantines bad
    records."""
    e2lds: List[str] = []
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                e2lds.append(
                    parse_whitelist_line(line, source=path, lineno=lineno)
                )
            except FeedFormatError as error:
                report.quarantine(
                    path, lineno, f"whitelist:{error.category}", error.detail
                )
                continue
            report.keep()
    return DomainWhitelist(e2lds, psl=psl, name=name)


# ---------------------------------------------------------------------- #
# id-range screening for the binary (npz) payloads
# ---------------------------------------------------------------------- #


def _screen_pdns(
    days: np.ndarray,
    domains: np.ndarray,
    ips: np.ndarray,
    n_domains: int,
    observation_day: int,
    strict: bool,
    report: IngestReport,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    bad_id = (domains < 0) | (domains >= n_domains)
    bad_day = (days < 0) | (days > observation_day)
    if strict:
        if bad_id.any():
            offender = int(domains[bad_id][0])
            raise IngestError(
                f"{report.source}/pdns.npz: domain id {offender} outside "
                f"[0, {n_domains}) — the export is torn or ids were remapped"
            )
        if bad_day.any():
            offender = int(days[bad_day][0])
            raise IngestError(
                f"{report.source}/pdns.npz: day {offender} outside "
                f"[0, {observation_day}] for an observation of day "
                f"{observation_day}"
            )
    else:
        n_bad_id = int(bad_id.sum())
        n_bad_day = int(bad_day[~bad_id].sum())
        if n_bad_id:
            report.counters["pdns:id_range"] = (
                report.counters.get("pdns:id_range", 0) + n_bad_id
            )
            if len(report.quarantined) < MAX_QUARANTINE_SAMPLES:
                report.quarantined.append(
                    QuarantinedRecord(
                        f"{report.source}/pdns.npz",
                        0,
                        "pdns:id_range",
                        f"{n_bad_id} rows with domain ids outside "
                        f"[0, {n_domains})",
                    )
                )
        if n_bad_day:
            report.counters["pdns:bad_day"] = (
                report.counters.get("pdns:bad_day", 0) + n_bad_day
            )
    keep = ~(bad_id | bad_day)
    report.keep(int(keep.sum()))
    return days[keep], domains[keep], ips[keep]


def _screen_activity(
    pairs: np.ndarray,
    n_keys: int,
    observation_day: int,
    label: str,
    strict: bool,
    report: IngestReport,
) -> np.ndarray:
    if pairs.size == 0:
        return pairs
    days = pairs[:, 0]
    keys = pairs[:, 1]
    bad_key = (keys < 0) | (keys >= n_keys)
    bad_day = (days < 0) | (days > observation_day)
    if strict:
        if bad_key.any():
            offender = int(keys[bad_key][0])
            raise IngestError(
                f"{report.source}/activity.npz[{label}]: key {offender} "
                f"outside [0, {n_keys}) — the export is torn or ids were "
                f"remapped"
            )
        if bad_day.any():
            offender = int(days[bad_day][0])
            raise IngestError(
                f"{report.source}/activity.npz[{label}]: day {offender} "
                f"outside [0, {observation_day}]"
            )
    else:
        n_bad = int((bad_key | bad_day).sum())
        if n_bad:
            report.counters[f"activity:{label}:id_range"] = (
                report.counters.get(f"activity:{label}:id_range", 0) + n_bad
            )
    keep = ~(bad_key | bad_day)
    report.keep(int(keep.sum()))
    return pairs[keep]


# ---------------------------------------------------------------------- #
# the checked directory load
# ---------------------------------------------------------------------- #


def load_observation_checked(
    directory: str,
    mode: str = "strict",
    max_error_rate: float = DEFAULT_MAX_ERROR_RATE,
) -> Tuple[ObservationContext, IngestReport]:
    """Load an observation directory with explicit fault accounting.

    Returns ``(context, report)``.  In ``strict`` mode any malformed record
    raises immediately; in ``lenient`` mode malformed records are
    quarantined into the report, and an :class:`IngestError` is raised only
    when the malformed fraction exceeds *max_error_rate* or a structural
    fault (missing file, torn interner, day mismatch) makes the directory
    unloadable without silent corruption.
    """
    if mode not in ("strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")
    if not 0 <= max_error_rate < 1:
        raise ValueError(
            f"max_error_rate must be in [0, 1), got {max_error_rate}"
        )
    with current_tracer().span(
        "segugio_ingest_load_observation", directory=directory, mode=mode
    ):
        return _load_observation_checked(directory, mode, max_error_rate)


def _load_observation_checked(
    directory: str, mode: str, max_error_rate: float
) -> Tuple[ObservationContext, IngestReport]:
    strict = mode == "strict"
    report = IngestReport(source=directory, mode=mode)

    missing = [
        name
        for name in store.OBSERVATION_FILES
        if not os.path.exists(os.path.join(directory, name))
    ]
    if missing:
        raise IngestError(
            f"{directory}: missing observation files {missing} — "
            f"the directory is torn or is not a Segugio export"
        )

    meta = store.load_meta(directory)
    day = int(meta["day"])
    n_domains = int(meta["n_domains"])
    n_machines = int(meta["n_machines"])

    # Positional interners: a count mismatch shifts every id, so this
    # aborts in both modes.
    domains = store.load_interner(
        os.path.join(directory, "domains.txt"), n_domains, "domains"
    )
    machines = store.load_interner(
        os.path.join(directory, "machines.txt"), n_machines, "machines"
    )
    report.keep(n_domains + n_machines)

    trace_path = os.path.join(directory, "trace.tsv")
    if strict:
        trace = DayTrace.load(trace_path, machines=machines, domains=domains)
        report.keep(trace.n_edges)
    else:
        trace = load_trace_lenient(
            trace_path, report, machines=machines, domains=domains
        )
    if trace.day != day:
        raise IngestError(
            f"{trace_path}: trace is for day {trace.day} but meta.json "
            f"says day {day} — wrong file in the directory"
        )
    if len(domains) != n_domains or len(machines) != n_machines:
        raise IngestError(
            f"{trace_path}: trace references "
            f"{len(domains) - n_domains} domains / "
            f"{len(machines) - n_machines} machines beyond the positional "
            f"interners — the export is torn"
        )

    blacklist_path = os.path.join(directory, "blacklist.tsv")
    whitelist_path = os.path.join(directory, "whitelist.txt")
    psl = PublicSuffixList()
    psl.add_private_suffixes(meta.get("private_suffixes", []))
    if strict:
        blacklist = CncBlacklist.load(blacklist_path)
        whitelist = DomainWhitelist.load(whitelist_path, psl=psl)
        report.keep(len(blacklist) + len(whitelist))
    else:
        blacklist = load_blacklist_lenient(blacklist_path, report)
        whitelist = load_whitelist_lenient(whitelist_path, report, psl=psl)
    e2ld_index = E2ldIndex(domains, psl)

    days, dom, ips = store.load_pdns_arrays(directory)
    days, dom, ips = _screen_pdns(
        days, dom, ips, n_domains, day, strict, report
    )
    pdns = store.build_pdns(days, dom, ips)

    fqd_pairs, e2ld_pairs = store.load_activity_arrays(directory)
    fqd_pairs = _screen_activity(
        fqd_pairs, n_domains, day, "fqd", strict, report
    )
    e2ld_pairs = _screen_activity(
        e2ld_pairs, len(e2ld_index), day, "e2ld", strict, report
    )
    fqd_activity = store.build_activity_index(fqd_pairs)
    e2ld_activity = store.build_activity_index(e2ld_pairs)

    registry = get_registry()
    if registry.enabled:
        report.emit_metrics(registry)
        bytes_read = registry.counter(
            "segugio_ingest_bytes_total",
            "bytes read from observation files",
            labels=("file",),
        )
        for name in store.OBSERVATION_FILES:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                bytes_read.inc(os.path.getsize(path), file=name)
    if report.n_quarantined:
        _log.warning(
            "records_quarantined",
            source=directory,
            mode=mode,
            n_ok=report.n_ok,
            n_quarantined=report.n_quarantined,
            error_rate=round(report.error_rate, 6),
            counters=dict(sorted(report.counters.items())),
        )

    if report.error_rate > max_error_rate:
        _log.error(
            "error_rate_cap_exceeded",
            source=directory,
            error_rate=round(report.error_rate, 6),
            max_error_rate=max_error_rate,
        )
        raise IngestError(
            f"{directory}: {report.n_quarantined} of {report.n_seen} "
            f"records malformed ({report.error_rate:.2%}), above the "
            f"{max_error_rate:.2%} cap — refusing to train on a gutted "
            f"observation; breakdown: {dict(sorted(report.counters.items()))}"
        )

    context = ObservationContext(
        day=day,
        trace=trace,
        fqd_activity=fqd_activity,
        e2ld_activity=e2ld_activity,
        e2ld_index=e2ld_index,
        pdns=pdns,
        blacklist=blacklist,
        whitelist=whitelist,
    )
    return context, report

"""Strict/lenient observation loading with quarantine accounting.

Real intelligence feeds and collector outputs are routinely stale, partial,
and malformed.  This module loads an observation directory (the layout of
:mod:`repro.datasets.store`) in one of two modes:

* ``strict`` — the first malformed record raises a located error
  (:class:`FeedFormatError` with file and 1-based line number, or
  :class:`IngestError` for structural faults).  This is the right mode for
  round-trip pipelines where any fault means a bug.
* ``lenient`` — malformed records are *quarantined*: dropped from the
  loaded context and tallied per category (``trace:bad_ipv4``,
  ``pdns:id_range``, ...) in an :class:`IngestReport`, with the first few
  offenders kept verbatim for the post-mortem.  If the overall malformed
  fraction exceeds ``max_error_rate`` the load fails loudly instead — a
  feed that is 30% garbage is a dead feed, not a noisy one.

Structural faults abort in *both* modes: a missing file, a torn positional
interner (``domains.txt`` disagreeing with ``meta.json``), or a trace whose
day header contradicts the metadata would silently shift every id or
feature window — exactly the "silent wrong answer" this layer exists to
prevent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import ObservationContext
from repro.datasets import store
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import (
    DEFAULT_BATCH_SIZE,
    DayTrace,
    TraceReader,
    iter_trace_batches,
)
from repro.intel.blacklist import CncBlacklist, parse_blacklist_line
from repro.intel.whitelist import DomainWhitelist, parse_whitelist_line
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import current_tracer
from repro.utils.errors import FeedFormatError, IngestError
from repro.utils.ids import Interner

if TYPE_CHECKING:  # runtime import of edgestore stays function-level
    from repro.datasets.edgestore import EdgeStoreWriter

DEFAULT_MAX_ERROR_RATE = 0.05
MAX_QUARANTINE_SAMPLES = 25

_log = get_logger("ingest")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One malformed record set aside by a lenient load."""

    source: str
    line: int  # 1-based; 0 for array-valued (npz) records
    category: str
    detail: str


@dataclass
class IngestReport:
    """Accounting for one observation load: what was kept, what was not.

    ``counters`` maps quarantine categories (``trace:bad_ipv4``, ...) to
    how many records each absorbed; ``quarantined`` keeps the first
    :data:`MAX_QUARANTINE_SAMPLES` offenders verbatim so the operator can
    see *which* lines were bad, not just how many.

    Kept records are additionally tallied per feed *source* (``trace``,
    ``blacklist``, ``whitelist``, ``pdns``, ``activity``, ``interner``)
    in ``kept``; quarantine counters already carry their source as the
    category prefix.  The error-rate cap is applied *per source* — a
    30%-garbage trace must not slip under the cap just because large
    (always-clean) interner or pdns arrays dilute the overall rate.
    """

    source: str
    mode: str = "strict"
    n_ok: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    kept: Dict[str, int] = field(default_factory=dict)

    @property
    def n_quarantined(self) -> int:
        return sum(self.counters.values())

    @property
    def n_seen(self) -> int:
        return self.n_ok + self.n_quarantined

    @property
    def error_rate(self) -> float:
        seen = self.n_seen
        return self.n_quarantined / seen if seen else 0.0

    def keep(self, n: int = 1, source: str = "records") -> None:
        self.n_ok += n
        self.kept[source] = self.kept.get(source, 0) + n

    def source_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-source kept/quarantined counts and malformed fraction.

        The source of a quarantine counter is its category prefix
        (``trace:bad_ipv4`` → ``trace``), matching the ``source=`` tags
        passed to :meth:`keep`.
        """
        quarantined: Dict[str, int] = {}
        for category, count in self.counters.items():
            prefix = category.split(":", 1)[0]
            quarantined[prefix] = quarantined.get(prefix, 0) + count
        stats: Dict[str, Dict[str, float]] = {}
        for source in sorted(set(self.kept) | set(quarantined)):
            kept = self.kept.get(source, 0)
            bad = quarantined.get(source, 0)
            seen = kept + bad
            stats[source] = {
                "kept": kept,
                "quarantined": bad,
                "error_rate": bad / seen if seen else 0.0,
            }
        return stats

    def sources_over_cap(
        self, max_error_rate: float
    ) -> Dict[str, Dict[str, float]]:
        """The subset of :meth:`source_stats` whose rate exceeds the cap."""
        return {
            source: stats
            for source, stats in self.source_stats().items()
            if stats["error_rate"] > max_error_rate
        }

    def quarantine(
        self, source: str, line: int, category: str, detail: str
    ) -> None:
        self.counters[category] = self.counters.get(category, 0) + 1
        if len(self.quarantined) < MAX_QUARANTINE_SAMPLES:
            self.quarantined.append(
                QuarantinedRecord(source, line, category, detail)
            )

    def summary(self) -> str:
        lines = [
            f"ingest of {self.source} ({self.mode}): "
            f"{self.n_ok} records kept, {self.n_quarantined} quarantined "
            f"({self.error_rate:.2%})"
        ]
        for source, stats in self.source_stats().items():
            if stats["quarantined"]:
                lines.append(
                    f"  {source}: {stats['quarantined']} of "
                    f"{stats['kept'] + stats['quarantined']} quarantined "
                    f"({stats['error_rate']:.2%})"
                )
        for category in sorted(self.counters):
            lines.append(f"  {category}: {self.counters[category]}")
        for record in self.quarantined[:5]:
            location = (
                f"{record.source}:{record.line}"
                if record.line
                else record.source
            )
            lines.append(f"    e.g. {location}: {record.detail}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the run manifest's ingest section."""
        return {
            "source": self.source,
            "mode": self.mode,
            "n_ok": self.n_ok,
            "n_quarantined": self.n_quarantined,
            "error_rate": round(self.error_rate, 6),
            "counters": dict(sorted(self.counters.items())),
            "sources": {
                source: {
                    "kept": stats["kept"],
                    "quarantined": stats["quarantined"],
                    "error_rate": round(stats["error_rate"], 6),
                }
                for source, stats in self.source_stats().items()
            },
            "samples": [
                {
                    "source": record.source,
                    "line": record.line,
                    "category": record.category,
                    "detail": record.detail,
                }
                for record in self.quarantined
            ],
        }

    def emit_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Publish this load's accounting as ``segugio_ingest_*`` metrics.

        Called by :func:`load_observation_checked` *before* the error-rate
        cap can fail the load, so a day that quarantined 30% of its records
        is visible in the run's metrics and manifest after the fact — not
        only in the one-shot :class:`IngestError` message.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        records = registry.counter(
            "segugio_ingest_records_total",
            "records seen by ingest, by outcome",
            labels=("outcome",),
        )
        records.inc(self.n_ok, outcome="kept")
        if self.n_quarantined:
            records.inc(self.n_quarantined, outcome="quarantined")
            per_category = registry.counter(
                "segugio_ingest_quarantined_total",
                "quarantined records per category",
                labels=("category",),
            )
            for category, count in self.counters.items():
                per_category.inc(count, category=category)
        registry.gauge(
            "segugio_ingest_error_rate",
            "malformed fraction of the most recent load",
        ).set(self.error_rate)


# ---------------------------------------------------------------------- #
# lenient feed/trace loaders
# ---------------------------------------------------------------------- #


def load_trace_lenient(
    path: str,
    report: IngestReport,
    machines: Optional[Interner] = None,
    domains: Optional[Interner] = None,
) -> DayTrace:
    """Line-by-line :meth:`DayTrace.load` that quarantines bad records.

    A ``# day N`` header appearing after edge records (which strict mode
    rejects as ``late_day_header``) is quarantined here and the
    established day kept — it must not silently re-tag earlier records.
    """
    machines = machines if machines is not None else Interner()
    domains = domains if domains is not None else Interner()
    edge_m: List[int] = []
    edge_d: List[int] = []
    resolutions: Dict[int, set] = {}
    with open(path) as stream:
        reader = TraceReader(
            stream, source=path, on_error=_quarantine_trace_error(report)
        )
        for record in reader:
            mid = machines.intern(record.machine)
            did = domains.intern(record.domain)
            edge_m.append(mid)
            edge_d.append(did)
            if record.ips:
                resolutions.setdefault(did, set()).update(record.ips)
            report.keep(source="trace")
    packed = {
        did: np.array(sorted(ips), dtype=np.uint32)
        for did, ips in resolutions.items()
    }
    return DayTrace.build(
        reader.day, machines, domains, edge_m, edge_d, packed
    )


def _quarantine_trace_error(report: IngestReport):
    """An ``on_error`` hook routing reader errors into the report."""

    def on_error(error: FeedFormatError) -> None:
        report.quarantine(
            error.source, error.line, f"trace:{error.category}", error.detail
        )

    return on_error


def load_trace_to_store(
    path: str,
    writer: "EdgeStoreWriter",
    machines: Optional[Interner] = None,
    domains: Optional[Interner] = None,
    *,
    report: Optional[IngestReport] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Tuple[int, int]:
    """Stream a trace TSV into an edge-store *writer* batch by batch.

    The writer is any object with ``add_batch(machine_ids, domain_ids)``,
    ``add_resolutions(domain_ids, ips)``, and ``set_day(day)`` — in
    practice :class:`repro.datasets.edgestore.EdgeStoreWriter`.  Failure
    mode follows the report: no report or ``mode="strict"`` raises on the
    first malformed record; ``mode="lenient"`` quarantines into the
    report.  Returns ``(day, n_records)``.
    """
    on_error = None
    if report is not None and report.mode == "lenient":
        on_error = _quarantine_trace_error(report)
    machines = machines if machines is not None else Interner()
    domains = domains if domains is not None else Interner()
    with open(path) as stream:
        reader = TraceReader(stream, source=path, on_error=on_error)
        for batch in iter_trace_batches(
            reader, machines, domains, batch_size=batch_size
        ):
            writer.add_batch(batch.machine_ids, batch.domain_ids)
            if batch.res_domains.size:
                writer.add_resolutions(batch.res_domains, batch.res_ips)
            if report is not None:
                report.keep(int(batch.machine_ids.size), source="trace")
        writer.set_day(reader.day)
    return reader.day, reader.n_records


def load_blacklist_lenient(
    path: str, report: IngestReport, name: str = "blacklist"
) -> CncBlacklist:
    """Line-by-line :meth:`CncBlacklist.load` that quarantines bad records."""
    blacklist = CncBlacklist(name)
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            try:
                domain, added_day, family = parse_blacklist_line(
                    line, source=path, lineno=lineno
                )
            except FeedFormatError as error:
                report.quarantine(
                    path, lineno, f"blacklist:{error.category}", error.detail
                )
                continue
            blacklist.add(domain, added_day, family)
            report.keep(source="blacklist")
    return blacklist


def load_whitelist_lenient(
    path: str,
    report: IngestReport,
    psl: Optional[PublicSuffixList] = None,
    name: str = "whitelist",
) -> DomainWhitelist:
    """Line-by-line :meth:`DomainWhitelist.load` that quarantines bad
    records."""
    e2lds: List[str] = []
    with open(path) as stream:
        for lineno, line in enumerate(stream, start=1):
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                e2lds.append(
                    parse_whitelist_line(line, source=path, lineno=lineno)
                )
            except FeedFormatError as error:
                report.quarantine(
                    path, lineno, f"whitelist:{error.category}", error.detail
                )
                continue
            report.keep(source="whitelist")
    return DomainWhitelist(e2lds, psl=psl, name=name)


# ---------------------------------------------------------------------- #
# id-range screening for the binary (npz) payloads
# ---------------------------------------------------------------------- #


def _screen_pdns(
    days: np.ndarray,
    domains: np.ndarray,
    ips: np.ndarray,
    n_domains: int,
    observation_day: int,
    strict: bool,
    report: IngestReport,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    bad_id = (domains < 0) | (domains >= n_domains)
    bad_day = (days < 0) | (days > observation_day)
    if strict:
        if bad_id.any():
            offender = int(domains[bad_id][0])
            raise IngestError(
                f"{report.source}/pdns.npz: domain id {offender} outside "
                f"[0, {n_domains}) — the export is torn or ids were remapped"
            )
        if bad_day.any():
            offender = int(days[bad_day][0])
            raise IngestError(
                f"{report.source}/pdns.npz: day {offender} outside "
                f"[0, {observation_day}] for an observation of day "
                f"{observation_day}"
            )
    else:
        n_bad_id = int(bad_id.sum())
        n_bad_day = int(bad_day[~bad_id].sum())
        if n_bad_id:
            report.counters["pdns:id_range"] = (
                report.counters.get("pdns:id_range", 0) + n_bad_id
            )
            if len(report.quarantined) < MAX_QUARANTINE_SAMPLES:
                report.quarantined.append(
                    QuarantinedRecord(
                        f"{report.source}/pdns.npz",
                        0,
                        "pdns:id_range",
                        f"{n_bad_id} rows with domain ids outside "
                        f"[0, {n_domains})",
                    )
                )
        if n_bad_day:
            report.counters["pdns:bad_day"] = (
                report.counters.get("pdns:bad_day", 0) + n_bad_day
            )
    keep = ~(bad_id | bad_day)
    report.keep(int(keep.sum()), source="pdns")
    return days[keep], domains[keep], ips[keep]


def _screen_activity(
    pairs: np.ndarray,
    n_keys: int,
    observation_day: int,
    label: str,
    strict: bool,
    report: IngestReport,
) -> np.ndarray:
    if pairs.size == 0:
        return pairs
    days = pairs[:, 0]
    keys = pairs[:, 1]
    bad_key = (keys < 0) | (keys >= n_keys)
    bad_day = (days < 0) | (days > observation_day)
    if strict:
        if bad_key.any():
            offender = int(keys[bad_key][0])
            raise IngestError(
                f"{report.source}/activity.npz[{label}]: key {offender} "
                f"outside [0, {n_keys}) — the export is torn or ids were "
                f"remapped"
            )
        if bad_day.any():
            offender = int(days[bad_day][0])
            raise IngestError(
                f"{report.source}/activity.npz[{label}]: day {offender} "
                f"outside [0, {observation_day}]"
            )
    else:
        n_bad = int((bad_key | bad_day).sum())
        if n_bad:
            report.counters[f"activity:{label}:id_range"] = (
                report.counters.get(f"activity:{label}:id_range", 0) + n_bad
            )
            if len(report.quarantined) < MAX_QUARANTINE_SAMPLES:
                report.quarantined.append(
                    QuarantinedRecord(
                        f"{report.source}/activity.npz[{label}]",
                        0,
                        f"activity:{label}:id_range",
                        f"{n_bad} rows with keys outside [0, {n_keys}) or "
                        f"days outside [0, {observation_day}]",
                    )
                )
    keep = ~(bad_key | bad_day)
    report.keep(int(keep.sum()), source="activity")
    return pairs[keep]


# ---------------------------------------------------------------------- #
# the checked directory load
# ---------------------------------------------------------------------- #


def load_observation_checked(
    directory: str,
    mode: str = "strict",
    max_error_rate: float = DEFAULT_MAX_ERROR_RATE,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    edgestore_dir: Optional[str] = None,
) -> Tuple[ObservationContext, IngestReport]:
    """Load an observation directory with explicit fault accounting.

    Returns ``(context, report)``.  In ``strict`` mode any malformed record
    raises immediately; in ``lenient`` mode malformed records are
    quarantined into the report, and an :class:`IngestError` is raised only
    when any single source's malformed fraction exceeds *max_error_rate*
    or a structural fault (missing file, torn interner, day mismatch)
    makes the directory unloadable without silent corruption.

    With *shards* set, the trace streams through fixed-size batches into
    a sharded edge store under *edgestore_dir* (default:
    ``<directory>/edgestore``) and the returned context carries a
    memory-mapped :class:`~repro.datasets.edgestore.ShardedDayTrace`
    instead of an in-memory :class:`DayTrace`.
    """
    if mode not in ("strict", "lenient"):
        raise ValueError(f"mode must be 'strict' or 'lenient', got {mode!r}")
    if not 0 <= max_error_rate < 1:
        raise ValueError(
            f"max_error_rate must be in [0, 1), got {max_error_rate}"
        )
    if shards is not None and shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    with current_tracer().span(
        "segugio_ingest_load_observation", directory=directory, mode=mode
    ):
        return _load_observation_checked(
            directory,
            mode,
            max_error_rate,
            shards=shards,
            batch_size=batch_size,
            edgestore_dir=edgestore_dir,
        )


def _load_observation_checked(
    directory: str,
    mode: str,
    max_error_rate: float,
    shards: Optional[int] = None,
    batch_size: Optional[int] = None,
    edgestore_dir: Optional[str] = None,
) -> Tuple[ObservationContext, IngestReport]:
    strict = mode == "strict"
    report = IngestReport(source=directory, mode=mode)

    missing = [
        name
        for name in store.OBSERVATION_FILES
        if not os.path.exists(os.path.join(directory, name))
    ]
    if missing:
        raise IngestError(
            f"{directory}: missing observation files {missing} — "
            f"the directory is torn or is not a Segugio export"
        )

    meta = store.load_meta(directory)
    day = int(meta["day"])
    n_domains = int(meta["n_domains"])
    n_machines = int(meta["n_machines"])

    # Positional interners: a count mismatch shifts every id, so this
    # aborts in both modes.
    domains = store.load_interner(
        os.path.join(directory, "domains.txt"), n_domains, "domains"
    )
    machines = store.load_interner(
        os.path.join(directory, "machines.txt"), n_machines, "machines"
    )
    report.keep(n_domains + n_machines, source="interner")

    trace_path = os.path.join(directory, "trace.tsv")
    if shards is not None:
        # Streamed, sharded path: records flow through fixed-size batches
        # into a columnar edge store; nothing edge-shaped is materialized
        # in Python.  Function-level import keeps the edgestore module
        # optional for the plain in-memory path.
        from repro.datasets.edgestore import EdgeStoreWriter, ShardedDayTrace

        store_dir = (
            edgestore_dir
            if edgestore_dir is not None
            else os.path.join(directory, "edgestore")
        )
        writer = EdgeStoreWriter(store_dir, n_shards=shards)
        load_trace_to_store(
            trace_path,
            writer,
            machines,
            domains,
            report=report,
            batch_size=batch_size or DEFAULT_BATCH_SIZE,
        )
        writer.finalize(n_machines=len(machines), n_domains=len(domains))
        trace = ShardedDayTrace.open(store_dir, machines, domains)
    elif strict:
        trace = DayTrace.load(trace_path, machines=machines, domains=domains)
        report.keep(trace.n_edges, source="trace")
    else:
        trace = load_trace_lenient(
            trace_path, report, machines=machines, domains=domains
        )
    if trace.day != day:
        raise IngestError(
            f"{trace_path}: trace is for day {trace.day} but meta.json "
            f"says day {day} — wrong file in the directory"
        )
    if len(domains) != n_domains or len(machines) != n_machines:
        raise IngestError(
            f"{trace_path}: trace references "
            f"{len(domains) - n_domains} domains / "
            f"{len(machines) - n_machines} machines beyond the positional "
            f"interners — the export is torn"
        )

    blacklist_path = os.path.join(directory, "blacklist.tsv")
    whitelist_path = os.path.join(directory, "whitelist.txt")
    psl = PublicSuffixList()
    psl.add_private_suffixes(meta.get("private_suffixes", []))
    if strict:
        blacklist = CncBlacklist.load(blacklist_path)
        whitelist = DomainWhitelist.load(whitelist_path, psl=psl)
        report.keep(len(blacklist), source="blacklist")
        report.keep(len(whitelist), source="whitelist")
    else:
        blacklist = load_blacklist_lenient(blacklist_path, report)
        whitelist = load_whitelist_lenient(whitelist_path, report, psl=psl)
    e2ld_index = E2ldIndex(domains, psl)

    days, dom, ips = store.load_pdns_arrays(directory)
    days, dom, ips = _screen_pdns(
        days, dom, ips, n_domains, day, strict, report
    )
    pdns = store.build_pdns(days, dom, ips)

    fqd_pairs, e2ld_pairs = store.load_activity_arrays(directory)
    fqd_pairs = _screen_activity(
        fqd_pairs, n_domains, day, "fqd", strict, report
    )
    e2ld_pairs = _screen_activity(
        e2ld_pairs, len(e2ld_index), day, "e2ld", strict, report
    )
    fqd_activity = store.build_activity_index(fqd_pairs)
    e2ld_activity = store.build_activity_index(e2ld_pairs)

    registry = get_registry()
    if registry.enabled:
        report.emit_metrics(registry)
        bytes_read = registry.counter(
            "segugio_ingest_bytes_total",
            "bytes read from observation files",
            labels=("file",),
        )
        for name in store.OBSERVATION_FILES:
            path = os.path.join(directory, name)
            if os.path.exists(path):
                bytes_read.inc(os.path.getsize(path), file=name)
    if report.n_quarantined:
        _log.warning(
            "records_quarantined",
            source=directory,
            mode=mode,
            n_ok=report.n_ok,
            n_quarantined=report.n_quarantined,
            error_rate=round(report.error_rate, 6),
            counters=dict(sorted(report.counters.items())),
        )

    over_cap = report.sources_over_cap(max_error_rate)
    if over_cap:
        _log.error(
            "error_rate_cap_exceeded",
            source=directory,
            sources=sorted(over_cap),
            error_rate=round(report.error_rate, 6),
            max_error_rate=max_error_rate,
        )
        worst = "; ".join(
            f"{source} {stats['quarantined']} of "
            f"{stats['kept'] + stats['quarantined']} malformed "
            f"({stats['error_rate']:.2%})"
            for source, stats in over_cap.items()
        )
        raise IngestError(
            f"{directory}: {worst}, above the {max_error_rate:.2%} "
            f"per-source cap — refusing to train on a gutted observation; "
            f"breakdown: {dict(sorted(report.counters.items()))}"
        )

    context = ObservationContext(
        day=day,
        trace=trace,
        fqd_activity=fqd_activity,
        e2ld_activity=e2ld_activity,
        e2ld_index=e2ld_index,
        pdns=pdns,
        blacklist=blacklist,
        whitelist=whitelist,
    )
    return context, report

"""Pre-flight health checks over an observation day.

``segugio health`` (and :meth:`DomainTracker.process_day`) run these checks
before committing a day's compute.  Each check yields a
:class:`HealthFinding` with a severity and a *decision* — the documented
way the pipeline degrades (or aborts) under that fault:

========================  ========  =========================================
check                     severity  decision
========================  ========  =========================================
``blacklist_empty``       critical  training aborts (no malware ground truth)
``blacklist_unpublished`` critical  no entries published by the observation
                                    day: training aborts
``blacklist_stale``       warning   train on old ground truth; new families
                                    surface only through behavior features
``whitelist_empty``       critical  training aborts (no benign ground truth)
``blacklist_coverage``    critical  feed has entries but none appear in the
                                    trace: training aborts
``pdns_empty_window``     warning   F3 (IP-abuse) features fall back to zero
``activity_gaps``         warning   F2 (activity) features undercount on the
                                    missing days
``activity_empty``        warning   F2 features fall back to zero
``graph_empty``           critical  no edges: nothing to build, fit aborts
``graph_degenerate``      warning   fewer than 2 machines or 2 domains:
                                    machine-behavior features are meaningless
========================  ========  =========================================

Warnings degrade with provenance (they are threaded into
``DetectionReport.provenance`` / ``DayReport.provenance``); criticals are
faults the pipeline refuses to paper over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.features import DEFAULT_ACTIVITY_WINDOW
from repro.core.pipeline import DEFAULT_PDNS_WINDOW_DAYS, ObservationContext
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry

_log = get_logger("health")

OK = "ok"
WARNING = "warning"
CRITICAL = "critical"

_SEVERITY_RANK = {OK: 0, WARNING: 1, CRITICAL: 2}

DEFAULT_BLACKLIST_STALE_DAYS = 30


@dataclass(frozen=True)
class HealthFinding:
    """Outcome of one health check."""

    check: str
    severity: str
    message: str
    decision: str

    def __str__(self) -> str:
        return f"[{self.severity.upper():8s}] {self.check}: {self.message} -> {self.decision}"


@dataclass
class HealthReport:
    """All findings for one observation day."""

    day: int
    findings: List[HealthFinding] = field(default_factory=list)

    @property
    def worst(self) -> str:
        if not self.findings:
            return OK
        return max(self.findings, key=lambda f: _SEVERITY_RANK[f.severity]).severity

    @property
    def ok(self) -> bool:
        return self.worst != CRITICAL

    def warnings(self) -> List[HealthFinding]:
        return [f for f in self.findings if f.severity == WARNING]

    def criticals(self) -> List[HealthFinding]:
        return [f for f in self.findings if f.severity == CRITICAL]

    def provenance(self) -> List[str]:
        """Compact ``check:severity`` tags for threading into day reports."""
        return [
            f"{f.check}:{f.severity}"
            for f in self.findings
            if f.severity != OK
        ]

    def raise_for_critical(self) -> None:
        """Raise ``ValueError`` describing every critical finding."""
        criticals = self.criticals()
        if criticals:
            details = "; ".join(
                f"{f.check}: {f.message} ({f.decision})" for f in criticals
            )
            raise ValueError(
                f"observation day {self.day} failed pre-flight health "
                f"checks: {details}"
            )

    def summary(self) -> str:
        lines = [
            f"health of observation day {self.day}: {self.worst.upper()} "
            f"({len(self.criticals())} critical, "
            f"{len(self.warnings())} warning)"
        ]
        lines.extend(str(f) for f in self.findings if f.severity != OK)
        return "\n".join(lines)


def check_context(
    context: ObservationContext,
    activity_window: int = DEFAULT_ACTIVITY_WINDOW,
    pdns_window: int = DEFAULT_PDNS_WINDOW_DAYS,
    blacklist_stale_days: int = DEFAULT_BLACKLIST_STALE_DAYS,
) -> HealthReport:
    """Run every pre-flight check against *context*."""
    report = HealthReport(day=context.day)
    add = report.findings.append
    day = context.day

    # --- feeds ------------------------------------------------------- #
    if len(context.blacklist) == 0:
        add(HealthFinding(
            "blacklist_empty", CRITICAL,
            "the C&C blacklist feed has no entries",
            "training aborts: no malware ground truth",
        ))
    else:
        published = context.blacklist.domains(as_of_day=day)
        if not published:
            add(HealthFinding(
                "blacklist_unpublished", CRITICAL,
                f"feed holds {len(context.blacklist)} entries but none "
                f"published by day {day}",
                "training aborts: no malware ground truth as of this day",
            ))
        else:
            newest = max(
                entry.added_day
                for entry in context.blacklist
                if entry.added_day <= day
            )
            age = day - newest
            if age > blacklist_stale_days:
                add(HealthFinding(
                    "blacklist_stale", WARNING,
                    f"newest published entry is {age} days old "
                    f"(threshold {blacklist_stale_days})",
                    "train on old ground truth; newly-registered C&C "
                    "surfaces only through behavior features",
                ))
            else:
                add(HealthFinding(
                    "blacklist_fresh", OK,
                    f"newest published entry is {age} days old", "none",
                ))
            in_trace = sum(
                1
                for name in published
                if context.domain_id(name) is not None
            )
            if in_trace == 0:
                add(HealthFinding(
                    "blacklist_coverage", CRITICAL,
                    "no published blacklist domain appears in the day's "
                    "trace",
                    "training aborts: no malware-labeled graph nodes",
                ))

    if len(context.whitelist) == 0:
        add(HealthFinding(
            "whitelist_empty", CRITICAL,
            "the benign whitelist has no e2LDs",
            "training aborts: no benign ground truth",
        ))

    # --- collectors -------------------------------------------------- #
    pdns_start = max(day - pdns_window, 0)
    pdns_days, _, _ = context.pdns.window_records(pdns_start, day - 1)
    if pdns_days.size == 0:
        add(HealthFinding(
            "pdns_empty_window", WARNING,
            f"no passive-DNS records in [{pdns_start}, {day - 1}] "
            f"(collector dead or window misaligned)",
            "F3 IP-abuse features fall back to zero",
        ))

    act_start = max(day - activity_window + 1, 0)
    active_days = set(
        context.fqd_activity.days_with_activity(act_start, day)
    )
    if not active_days:
        add(HealthFinding(
            "activity_empty", WARNING,
            f"activity index has no data in [{act_start}, {day}]",
            "F2 activity features fall back to zero",
        ))
    else:
        gaps = [d for d in range(act_start, day + 1) if d not in active_days]
        if gaps:
            add(HealthFinding(
                "activity_gaps", WARNING,
                f"no activity recorded on days {gaps} inside the "
                f"{activity_window}-day feature window",
                "F2 activity features undercount on the missing days",
            ))

    # --- graph -------------------------------------------------------- #
    n_edges = context.trace.n_edges
    if n_edges == 0:
        add(HealthFinding(
            "graph_empty", CRITICAL,
            "the day's trace has no query edges",
            "fit aborts: there is no behavior graph to build",
        ))
    else:
        n_machines = int(context.trace.unique_machine_ids().size)
        n_domains = int(context.trace.unique_domain_ids().size)
        if n_machines < 2 or n_domains < 2:
            add(HealthFinding(
                "graph_degenerate", WARNING,
                f"graph has {n_machines} machines and {n_domains} domains",
                "machine-behavior features are meaningless at this size",
            ))

    if not report.findings:
        add(HealthFinding("all", OK, "all checks passed", "none"))

    registry = get_registry()
    if registry.enabled:
        outcomes = registry.counter(
            "segugio_health_findings_total",
            "health-check findings by check and severity",
            labels=("check", "severity"),
        )
        for finding in report.findings:
            outcomes.inc(1, check=finding.check, severity=finding.severity)
    for finding in report.findings:
        if finding.severity == WARNING:
            _log.warning(
                "health_finding",
                day=day,
                check=finding.check,
                message=finding.message,
                decision=finding.decision,
            )
        elif finding.severity == CRITICAL:
            _log.error(
                "health_finding",
                day=day,
                check=finding.check,
                message=finding.message,
                decision=finding.decision,
            )
    return report

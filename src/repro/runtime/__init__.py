"""Fault-tolerant runtime for continuous Segugio deployments.

A deployment that retrains and re-scores every day (paper §IV-F) fails in
practice not because the classifier is wrong but because an *input* is torn:
a blacklist feed gone stale, a trace file truncated mid-write, a pDNS
collector that died, a crash halfway through a multi-week tracking run.
This package wraps the fit→classify→track loop against exactly those
faults:

* :mod:`repro.runtime.ingest` — strict/lenient observation loading with
  malformed records quarantined into an :class:`IngestReport` and a
  configurable error-rate cap above which loading fails loudly.
* :mod:`repro.runtime.health` — pre-flight :class:`HealthReport` over an
  :class:`~repro.core.pipeline.ObservationContext`: stale feeds, empty pDNS
  windows, activity gaps, degenerate graphs, each mapped to a documented
  degradation decision.
* :mod:`repro.runtime.retry` — deterministic-backoff retries for flaky
  loaders and atomic write-temp-then-rename saves.
* :mod:`repro.runtime.checkpoint` — checksummed checkpoint/resume for
  :class:`~repro.core.tracker.DomainTracker` so a killed run resumes to a
  bit-identical ledger.
* :mod:`repro.runtime.supervisor` — supervised process-pool execution with
  a deterministic degradation ladder (resubmit → shrink pool → serial)
  that converts worker death, hangs, and transient errors into recorded
  slowdowns instead of wrong or missing results.
* :mod:`repro.runtime.faults` — deterministic, seed-keyed fault injection
  (``SEGUGIO_FAULTS`` / ``--inject-faults`` / ``segugio chaos``) proving
  the ladder's bit-identical-output invariant.

Submodules are resolved lazily so low-level packages (``repro.datasets``)
can import :mod:`repro.runtime.retry` without dragging in the ingest and
checkpoint layers that themselves build on those packages.
"""

from __future__ import annotations

from repro.utils.errors import (
    CheckpointError,
    FeedFormatError,
    FormatVersionError,
    IngestError,
)

_LAZY_EXPORTS = {
    "IngestReport": "repro.runtime.ingest",
    "QuarantinedRecord": "repro.runtime.ingest",
    "load_observation_checked": "repro.runtime.ingest",
    "HealthFinding": "repro.runtime.health",
    "HealthReport": "repro.runtime.health",
    "check_context": "repro.runtime.health",
    "OK": "repro.runtime.health",
    "WARNING": "repro.runtime.health",
    "CRITICAL": "repro.runtime.health",
    "retry": "repro.runtime.retry",
    "backoff_schedule": "repro.runtime.retry",
    "atomic_file": "repro.runtime.retry",
    "atomic_directory": "repro.runtime.retry",
    "save_checkpoint": "repro.runtime.checkpoint",
    "load_checkpoint": "repro.runtime.checkpoint",
    "resume_tracker": "repro.runtime.checkpoint",
    "load_drift_sidecar": "repro.runtime.checkpoint",
    "save_drift_sidecar": "repro.runtime.checkpoint",
    "SupervisorPolicy": "repro.runtime.supervisor",
    "supervised_map": "repro.runtime.supervisor",
    "supervised_process_day": "repro.runtime.supervisor",
    "current_policy": "repro.runtime.supervisor",
    "use_policy": "repro.runtime.supervisor",
    "FaultPlan": "repro.runtime.faults",
    "FaultPlanError": "repro.runtime.faults",
    "FaultSpec": "repro.runtime.faults",
    "load_fault_plan": "repro.runtime.faults",
    "install_fault_plan": "repro.runtime.faults",
    "use_fault_plan": "repro.runtime.faults",
    "current_fault_plan": "repro.runtime.faults",
    "maybe_fault": "repro.runtime.faults",
}

__all__ = sorted(
    [
        "CheckpointError",
        "FeedFormatError",
        "FormatVersionError",
        "IngestError",
        *_LAZY_EXPORTS,
    ]
)


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return __all__

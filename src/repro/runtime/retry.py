"""Deterministic retries and atomic filesystem writes.

Two failure classes dominate a long-running ISP deployment:

* *transient* I/O errors — a feed fetch hitting a flaky NFS mount, a
  collector file still being rotated — which deserve a bounded, reproducible
  retry schedule rather than an immediate abort, and
* *torn writes* — a crash halfway through ``save_observation`` leaving a
  directory that parses but lies — which atomic write-temp-then-rename
  staging makes structurally impossible.

The backoff here is deliberately deterministic (no jitter): two runs of the
same pipeline see the same schedule, which keeps failure-injection tests and
post-mortems reproducible.
"""

from __future__ import annotations

import functools
import os
import shutil
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple, Type


def backoff_schedule(
    attempts: int, base_delay: float, multiplier: float
) -> List[float]:
    """The exact sleep (seconds) before each retry: ``base * multiplier**k``.

    Length is ``attempts - 1`` — there is no sleep after the final attempt.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_delay < 0:
        raise ValueError(f"base_delay must be non-negative, got {base_delay}")
    if multiplier < 1:
        raise ValueError(f"multiplier must be >= 1, got {multiplier}")
    return [base_delay * multiplier**k for k in range(attempts - 1)]


def retry(
    attempts: int = 3,
    base_delay: float = 0.05,
    multiplier: float = 2.0,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> Callable:
    """Decorator: re-invoke a flaky loader on *retry_on* exceptions.

    ``on_retry(attempt_index, error)`` is called before each sleep, letting
    callers log or count retries; ``sleep`` is injectable so tests run at
    full speed.  The final failure is re-raised unchanged.
    """
    schedule = backoff_schedule(attempts, base_delay, multiplier)

    def decorator(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            for attempt, delay in enumerate(schedule):
                try:
                    return func(*args, **kwargs)
                except retry_on as error:
                    if on_retry is not None:
                        on_retry(attempt, error)
                    sleep(delay)
            return func(*args, **kwargs)

        return wrapper

    return decorator


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_file(path: str) -> Iterator[str]:
    """Yield a staging path; on clean exit fsync it and rename onto *path*.

    If the body raises, the staging file is removed and *path* is left
    exactly as it was — a reader can never observe a half-written file.
    """
    staging = path + ".tmp"
    if os.path.exists(staging):
        os.remove(staging)
    try:
        yield staging
        _fsync_file(staging)
        os.replace(staging, path)
    except BaseException:
        if os.path.exists(staging):
            os.remove(staging)
        raise


@contextmanager
def atomic_directory(directory: str) -> Iterator[str]:
    """Yield a staging directory; on clean exit swap it into *directory*.

    The body writes into ``<directory>.tmp``; only after it returns without
    raising is the staging tree fsynced and renamed into place.  A crash
    mid-body leaves any previous *directory* untouched (and at worst a stale
    ``.tmp`` sibling, which the next save clears).  A crash between the
    removal of an old *directory* and the final rename leaves *directory*
    missing and the complete staging tree on disk — detectably absent, never
    torn.
    """
    staging = directory.rstrip(os.sep) + ".tmp"
    if os.path.exists(staging):
        shutil.rmtree(staging)
    os.makedirs(staging)
    try:
        yield staging
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    for name in os.listdir(staging):
        _fsync_file(os.path.join(staging, name))
    if os.path.exists(directory):
        shutil.rmtree(directory)
    os.replace(staging, directory)

"""Deterministic, seed-keyed fault injection for the execution layer.

A fault-tolerance claim that is only exercised by real outages is not a
claim, it is a hope.  This module lets a test — or the ``segugio chaos``
subcommand — *schedule* the outages: a worker killed while fitting tree
batch 0, a predict task that wedges, a checkpoint write that hits a flaky
mount.  The supervised executor (:mod:`repro.runtime.supervisor`) and the
in-process fault sites then have to walk their degradation ladder, and the
chaos harness asserts the run's outputs are bit-identical to a fault-free
run.

Faults are described by a :class:`FaultPlan` — a list of :class:`FaultSpec`
entries loaded from JSON (``segugio chaos --plan``, ``--inject-faults``, or
the ``SEGUGIO_FAULTS`` environment variable).  Matching is deterministic
and seed-keyed: a spec either pins an exact ``(site, task)`` or fires
probabilistically via a ``rate``, where "probabilistically" means a SHA-256
hash of ``(plan seed, spec index, site, task)`` — the same plan and seed
always fire the same faults, so a failing chaos run replays exactly.

Fault taxonomy (``kind``):

* ``worker_kill`` — the worker process calls ``os._exit`` mid-task, which
  the parent observes as ``BrokenProcessPool``;
* ``task_hang`` — the worker sleeps past the supervisor's task timeout;
* ``io_error`` — the site raises a transient :class:`OSError`;
* ``corrupt_intermediate`` — the site scribbles garbage over its staging
  file *and* raises, modeling a torn write the atomic-rename layer must
  contain;
* ``memory_pressure`` — the site raises :class:`MemoryError`, modeling RSS
  exhaustion the supervisor answers by shrinking the pool.

Two delivery paths: in-process sites call :func:`maybe_fault` directly,
while worker-pool sites receive a picklable :class:`FaultDirective` taken
at submission time and executed by the supervisor's worker shim (module
globals do not reliably cross the fork/spawn boundary, the task payload
does).  Directives are consumed when taken — a resubmitted task runs
clean, which is exactly the transient-failure semantics being modeled.

This is the **only** module allowed to call process-kill primitives
(``os._exit``); the SEG011 lint rule enforces that containment.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: environment variable naming a fault-plan JSON file to activate
FAULTS_ENV_VAR = "SEGUGIO_FAULTS"

#: exit status used by injected worker kills (distinguishable from crashes)
KILL_EXIT_CODE = 3

FAULT_KINDS = (
    "worker_kill",
    "task_hang",
    "io_error",
    "corrupt_intermediate",
    "memory_pressure",
)

#: sites instrumented with fault hooks; plans loaded from JSON must name one
KNOWN_SITES = (
    "forest_fit",        # worker task: fit one seed-keyed tree batch
    "forest_predict",    # worker task: score one fixed tree chunk
    "pipeline_fit",      # in-process: start of Segugio.fit for a day
    "pipeline_classify", # in-process: start of Segugio.classify for a day
    "checkpoint_save",   # in-process: inside the atomic checkpoint write
    "shard_scan",        # worker task: degree/e2ld scan of one edge shard
    "shard_labels",      # worker task: label propagation over one shard
    "shard_prune",       # worker task: kept-edge extraction of one shard
)

#: policy override keys a plan file may carry (forwarded to SupervisorPolicy)
POLICY_KEYS = ("task_timeout", "max_retries", "base_delay", "multiplier")


class FaultPlanError(ValueError):
    """A fault-plan spec that cannot be parsed or validated."""


@dataclass(frozen=True)
class FaultDirective:
    """One injected fault, picklable so it can ride into a pool worker."""

    kind: str
    seconds: float = 0.0
    detail: str = ""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what kind, where, and when it fires.

    Either pin an exact task index (``task``), fire on every matching call
    up to ``count`` (``task=None, rate=None``), or fire seed-keyed at a
    given ``rate``.  ``seconds`` only matters for ``task_hang``.
    """

    kind: str
    site: str
    task: Optional[int] = None
    count: int = 1
    seconds: float = 30.0
    rate: Optional[float] = None


class FaultPlan:
    """An ordered set of fault specs with deterministic firing state."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        policy: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self.policy: Dict[str, float] = dict(policy or {})
        self._remaining: List[int] = [spec.count for spec in self.specs]
        self.fired: List[Dict[str, object]] = []

    @property
    def n_fired(self) -> int:
        return len(self.fired)

    def fired_kinds(self) -> List[str]:
        return sorted({str(entry["kind"]) for entry in self.fired})

    def _rate_fires(self, index: int, spec: FaultSpec, site: str, task: Optional[int]) -> bool:
        key = f"{self.seed}:{index}:{site}:{task}".encode("utf-8")
        digest = hashlib.sha256(key).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return fraction < float(spec.rate or 0.0)

    def take(self, site: str, task: Optional[int] = None) -> Optional[FaultDirective]:
        """Consume and return the first matching spec's directive, if any."""
        for index, spec in enumerate(self.specs):
            if self._remaining[index] <= 0 or spec.site != site:
                continue
            if spec.task is not None and task != spec.task:
                continue
            if spec.rate is not None and not self._rate_fires(index, spec, site, task):
                continue
            self._remaining[index] -= 1
            detail = f"{site}[{task}]" if task is not None else site
            self.fired.append(
                {"kind": spec.kind, "site": site, "task": task, "spec": index}
            )
            return FaultDirective(kind=spec.kind, seconds=spec.seconds, detail=detail)
        return None


def _located(source: str, index: Optional[int], message: str) -> FaultPlanError:
    where = source if index is None else f"{source}: faults[{index}]"
    return FaultPlanError(f"{where}: {message}")


def _spec_from_dict(
    payload: Mapping[str, object], source: str, index: int
) -> FaultSpec:
    if not isinstance(payload, Mapping):
        raise _located(source, index, f"expected an object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"kind", "site", "task", "count", "seconds", "rate"})
    if unknown:
        raise _located(source, index, f"unknown keys {unknown}")
    kind = payload.get("kind")
    if kind not in FAULT_KINDS:
        raise _located(
            source, index, f"unknown kind {kind!r} (known: {', '.join(FAULT_KINDS)})"
        )
    site = payload.get("site")
    if site not in KNOWN_SITES:
        raise _located(
            source, index, f"unknown site {site!r} (known: {', '.join(KNOWN_SITES)})"
        )
    task = payload.get("task")
    if task is not None and (not isinstance(task, int) or isinstance(task, bool) or task < 0):
        raise _located(source, index, f"task must be a non-negative integer, got {task!r}")
    count = payload.get("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise _located(source, index, f"count must be a positive integer, got {count!r}")
    seconds = payload.get("seconds", 30.0)
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds < 0:
        raise _located(source, index, f"seconds must be non-negative, got {seconds!r}")
    rate = payload.get("rate")
    if rate is not None and (
        not isinstance(rate, (int, float)) or isinstance(rate, bool) or not 0 < rate <= 1
    ):
        raise _located(source, index, f"rate must be in (0, 1], got {rate!r}")
    return FaultSpec(
        kind=str(kind),
        site=str(site),
        task=task,
        count=int(count),
        seconds=float(seconds),
        rate=None if rate is None else float(rate),
    )


def plan_from_dict(payload: Mapping[str, object], source: str = "<plan>") -> FaultPlan:
    """Build a :class:`FaultPlan`, raising a located error on any bad spec."""
    if not isinstance(payload, Mapping):
        raise _located(source, None, f"plan must be an object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - {"seed", "policy", "faults"})
    if unknown:
        raise _located(source, None, f"unknown top-level keys {unknown}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _located(source, None, f"seed must be an integer, got {seed!r}")
    policy = payload.get("policy", {})
    if not isinstance(policy, Mapping):
        raise _located(source, None, "policy must be an object")
    bad_policy = sorted(set(policy) - set(POLICY_KEYS))
    if bad_policy:
        raise _located(
            source, None, f"unknown policy keys {bad_policy} (known: {', '.join(POLICY_KEYS)})"
        )
    for key, value in policy.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise _located(source, None, f"policy.{key} must be a number, got {value!r}")
    faults = payload.get("faults", [])
    if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
        raise _located(source, None, "faults must be a list of fault specs")
    specs = [
        _spec_from_dict(entry, source, index) for index, entry in enumerate(faults)
    ]
    return FaultPlan(specs, seed=seed, policy={k: float(v) for k, v in policy.items()})


def load_fault_plan(path: str) -> FaultPlan:
    """Load a plan from a JSON file; errors name the file and the bad spec."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except OSError as error:
        raise FaultPlanError(f"{path}: cannot read fault plan: {error}") from error
    except json.JSONDecodeError as error:
        raise FaultPlanError(f"{path}: invalid JSON: {error}") from error
    return plan_from_dict(payload, source=path)


# ---------------------------------------------------------------------- #
# activation: one ambient plan, installed explicitly or via the env var
# ---------------------------------------------------------------------- #

_ACTIVE_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* process-wide (``None`` clears; overrides the env var)."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    _ACTIVE_PLAN = plan
    _ENV_CHECKED = True
    return plan


def current_fault_plan() -> Optional[FaultPlan]:
    """The active plan, lazily loading ``SEGUGIO_FAULTS`` on first call."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    if not _ENV_CHECKED:
        _ENV_CHECKED = True
        spec_path = os.environ.get(FAULTS_ENV_VAR)
        if spec_path:
            _ACTIVE_PLAN = load_fault_plan(spec_path)
    return _ACTIVE_PLAN


@contextmanager
def use_fault_plan(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scoped :func:`install_fault_plan`; restores the prior state on exit."""
    global _ACTIVE_PLAN, _ENV_CHECKED
    saved_plan, saved_checked = _ACTIVE_PLAN, _ENV_CHECKED
    _ACTIVE_PLAN, _ENV_CHECKED = plan, True
    try:
        yield plan
    finally:
        _ACTIVE_PLAN, _ENV_CHECKED = saved_plan, saved_checked


# ---------------------------------------------------------------------- #
# delivery
# ---------------------------------------------------------------------- #


def apply_directive(
    directive: FaultDirective, path: Optional[str] = None, in_worker: bool = True
) -> None:
    """Execute one directive at its site.

    Worker-only kinds (``worker_kill``, ``task_hang``) are no-ops when
    ``in_worker`` is false: killing or wedging the *coordinating* process
    is not a fault the ladder can absorb, and the serial ground floor must
    never be less safe than the pool it replaced.
    """
    if directive.kind == "worker_kill":
        if in_worker:
            os._exit(KILL_EXIT_CODE)
        return
    if directive.kind == "task_hang":
        if in_worker:
            time.sleep(directive.seconds)
        return
    if directive.kind == "io_error":
        raise OSError(f"injected transient I/O error at {directive.detail}")
    if directive.kind == "corrupt_intermediate":
        if path is not None:
            with open(path, "wb") as stream:
                stream.write(b"\x00corrupted-by-fault-injection\x00")
        raise OSError(f"injected torn write at {directive.detail}")
    if directive.kind == "memory_pressure":
        raise MemoryError(f"injected RSS pressure at {directive.detail}")
    raise FaultPlanError(f"unknown fault kind {directive.kind!r}")


def maybe_fault(
    site: str, task: Optional[int] = None, path: Optional[str] = None
) -> None:
    """In-process fault hook: cheap no-op unless an active plan matches."""
    plan = current_fault_plan()
    if plan is None:
        return
    directive = plan.take(site, task)
    if directive is None:
        return
    apply_directive(directive, path=path, in_worker=False)

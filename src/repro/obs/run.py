"""Per-run telemetry capture: one object that owns all three layers.

:class:`RunTelemetry` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracing.Tracer`, binds the run id into the
structured-logging context, and accumulates per-day records so a
``track``/``classify-dir`` run can be written out as a run manifest plus a
span-trace JSONL (see :mod:`repro.obs.manifest` for the schema)::

    telemetry = RunTelemetry(command="track", config=config_to_dict(cfg))
    tracker = DomainTracker(cfg, telemetry=telemetry)
    for context in days:
        tracker.process_day(context)          # records spans/metrics/day rows
    manifest_path, trace_path = telemetry.write(out_dir)

The object is inert until :meth:`activate` installs its registry and tracer
as the ambient instances; instrumented library code never sees it directly.
"""

from __future__ import annotations

import os
import time
from contextlib import ExitStack, contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs import logs as _logs
from repro.obs import manifest as _manifest
from repro.obs import monitor as _monitor
from repro.obs.events import RuntimeEventLog, use_event_log
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.provenance import DECISIONS_FILENAME, DecisionLog, use_decision_log
from repro.obs.resources import (
    ResourceBudget,
    ResourceMonitor,
    evaluate_budgets,
    use_monitor,
)
from repro.obs.tracing import Tracer, use_tracer


def _new_run_id() -> str:
    return f"{int(time.time()):x}-{os.urandom(4).hex()}"


class RunTelemetry:
    """Collects metrics, spans, day records, and warnings for one run."""

    def __init__(
        self,
        command: str = "run",
        config: Optional[Mapping[str, object]] = None,
        run_id: Optional[str] = None,
        enabled: bool = True,
        profile: bool = False,
        budgets: Optional[Sequence[ResourceBudget]] = None,
        resource_monitor: Optional[ResourceMonitor] = None,
    ) -> None:
        self.run_id = run_id if run_id is not None else _new_run_id()
        self.command = command
        self.config = dict(config) if config is not None else None
        self.enabled = bool(enabled)
        self.registry = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.decisions = DecisionLog(enabled=enabled)
        self.events = RuntimeEventLog(enabled=enabled)
        # Resource accounting is a second opt-in on top of telemetry: the
        # monitor observes only (decision outputs stay bit-identical), but
        # its samplers are not free, so ``--profile`` turns them on.
        self.resources = (
            resource_monitor
            if resource_monitor is not None
            else ResourceMonitor(enabled=bool(enabled and profile))
        )
        self.budgets: Tuple[ResourceBudget, ...] = tuple(budgets or ())
        self.days: List[Dict[str, object]] = []
        self.ingest_reports: List[Dict[str, object]] = []
        self.warnings: List[str] = []
        self.created_unix = time.time()

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #

    @contextmanager
    def activate(self) -> Iterator["RunTelemetry"]:
        """Install this run's registry/tracer as the ambient telemetry."""
        with ExitStack() as stack:
            stack.enter_context(use_registry(self.registry))
            stack.enter_context(use_tracer(self.tracer))
            stack.enter_context(use_decision_log(self.decisions))
            stack.enter_context(use_event_log(self.events))
            if self.resources.enabled:
                stack.enter_context(use_monitor(self.resources))
                stack.enter_context(self.resources.running())
            stack.enter_context(_logs.bound(run_id=self.run_id))
            yield self

    @contextmanager
    def day_scope(self, day: int) -> Iterator[Dict[str, object]]:
        """Record one day: spans nest under ``segugio_run_day``, and the day
        record receives the phase-seconds and registry deltas produced
        inside the block.  The caller fills outcome fields (threshold,
        detection counts, provenance) into the yielded dict."""
        metrics_before = self.registry.snapshot()
        phases_before = self.tracer.phase_totals()
        events_mark = self.events.mark()
        resources_mark = self.resources.day_mark()
        record: Dict[str, object] = {"day": int(day)}
        with _logs.bound(day=int(day)):
            with self.tracer.span("segugio_run_day", day=int(day)):
                yield record
        runtime_events = self.events.since(events_mark)
        if runtime_events:
            record["runtime_events"] = runtime_events
        phases_after = self.tracer.phase_totals()
        record["phases"] = {
            name: round(seconds - phases_before.get(name, 0.0), 6)
            for name, seconds in phases_after.items()
            if name != "segugio_run_day"
            and seconds - phases_before.get(name, 0.0) > 0
        }
        record["metrics"] = MetricsRegistry.delta(
            self.registry.snapshot(), metrics_before
        )
        resources_delta = self.resources.day_delta(resources_mark)
        if resources_delta is not None:
            record["resources"] = resources_delta
        self.days.append(record)
        # A finalized day's decision records are immutable; when the log
        # streams, append them to disk now instead of holding every
        # domain's record in memory for the whole campaign.
        self.decisions.flush_pending()

    # ------------------------------------------------------------------ #
    # accumulation
    # ------------------------------------------------------------------ #

    def stream_decisions(self, out_dir: str) -> None:
        """Stream ``decisions.jsonl`` incrementally into *out_dir*.

        Must name the same directory later passed to :meth:`write`.
        Byte-identical to the buffered path (records flush only after
        their day finalized), so callers can enable it whenever the
        output directory is known up front.  No-op when disabled.
        """
        if not self.enabled:
            return
        os.makedirs(out_dir, exist_ok=True)
        self.decisions.stream_to(os.path.join(out_dir, DECISIONS_FILENAME))

    def add_ingest_report(self, report) -> None:
        """Attach an :class:`repro.runtime.ingest.IngestReport` (or its
        dict form) to the manifest's ingest section."""
        payload = report.to_dict() if hasattr(report, "to_dict") else dict(report)
        self.ingest_reports.append(payload)

    def add_warning(self, text: str) -> None:
        self.warnings.append(str(text))

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #

    def degradations(self) -> List[str]:
        """Union of provenance tags across all recorded days."""
        tags = set()
        for record in self.days:
            tags.update(record.get("provenance", []))  # type: ignore[arg-type]
        return sorted(tags)

    def build_manifest(self) -> Dict[str, object]:
        n_day_events = sum(
            len(record.get("runtime_events", ()))  # type: ignore[arg-type]
            for record in self.days
        )
        health = _monitor.run_health(
            self.days, n_orphan_events=len(self.events) - n_day_events
        )
        # ``resources`` is a purely additive v2 key (like runtime_events):
        # absent unless the run profiled, and readers must render "n/a"
        # for manifests without it rather than fail.
        resources: Optional[Dict[str, object]] = None
        if self.resources.enabled:
            resources = self.resources.summary()
            violations = evaluate_budgets(resources, self.budgets)
            # Worker span loss degrades health like orphan runtime events:
            # a quarantined or missing sidecar record means part of the
            # trace timeline is reconstructed, not observed.
            n_lost = sum(
                int(stats.get("n_quarantined", 0)) + int(stats.get("n_missing", 0))  # type: ignore[arg-type]
                for stats in (resources.get("workers") or {}).values()  # type: ignore[union-attr]
            )
            if n_lost:
                violations = list(violations) + [
                    {
                        "rule": "worker_spans_quarantined",
                        "status": _monitor.STATUS_WARN,
                        "path": "resources.workers",
                        "value": n_lost,
                        "message": (
                            f"{n_lost} worker span record(s) quarantined or "
                            "missing (retried or killed pool tasks); the "
                            "merged trace covers completed attempts only"
                        ),
                    }
                ]
            if violations:
                reasons: List[Dict[str, object]] = health["reasons"]  # type: ignore[assignment]
                reasons.extend({"day": None, **v} for v in violations)
                health["status"] = _monitor.worst_status(
                    [str(health["status"])]
                    + [str(v["status"]) for v in violations]
                )
        manifest: Dict[str, object] = {
            "manifest_version": _manifest.MANIFEST_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "created_unix": round(self.created_unix, 6),
            "config": self.config,
            "config_sha256": _manifest.config_hash(self.config),
            "health": health,
            "days": self.days,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.span_tree(),
            "ingest": self.ingest_reports,
            "degradations": self.degradations(),
            "runtime_events": self.events.to_list(),
            "warnings": self.warnings,
            "trace_file": _manifest.TRACE_FILENAME,
            "decisions_file": (
                DECISIONS_FILENAME if len(self.decisions) else None
            ),
        }
        if resources is not None:
            manifest["resources"] = resources
        return manifest

    def write(self, out_dir: str) -> Tuple[str, str]:
        """Write ``manifest.json`` + ``trace.jsonl`` into *out_dir*.

        When decision-provenance records were collected, also writes
        ``decisions.jsonl`` next to them (same atomic staging pattern).
        """
        os.makedirs(out_dir, exist_ok=True)
        manifest_path = os.path.join(out_dir, _manifest.MANIFEST_FILENAME)
        trace_path = os.path.join(out_dir, _manifest.TRACE_FILENAME)
        _manifest.write_manifest(self.build_manifest(), manifest_path)
        staging = f"{trace_path}.tmp.{os.getpid()}"
        with open(staging, "w") as stream:
            self.tracer.write_jsonl(stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(staging, trace_path)
        if self.decisions.streaming:
            self.decisions.finalize_stream()
        elif len(self.decisions):
            decisions_path = os.path.join(out_dir, DECISIONS_FILENAME)
            staging = f"{decisions_path}.tmp.{os.getpid()}"
            with open(staging, "w") as stream:
                self.decisions.write_jsonl(stream)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(staging, decisions_path)
        return manifest_path, trace_path

    def __repr__(self) -> str:
        return (
            f"RunTelemetry(run_id={self.run_id!r}, command={self.command!r}, "
            f"days={len(self.days)}, enabled={self.enabled})"
        )

"""Nested, timed spans over the pipeline's call tree.

A :class:`Tracer` records :class:`Span` objects — named, attributed,
wall-clock-timed sections that nest (``process_day`` > ``fit`` >
``build_graph`` > ...).  The finished tree is exported two ways:

* :meth:`Tracer.span_tree` — nested dicts for the run manifest;
* :meth:`Tracer.write_jsonl` — one JSON object per span (flat, with
  ``id``/``parent_id``/``depth``), the per-run ``trace.jsonl`` artifact.

Spans are exception-safe: a raise inside the ``with`` block marks the span
``status="error"`` with the exception repr, closes it, and re-raises.

Like the metrics registry, tracing is ambient and off by default:
instrumented code opens spans on :func:`current_tracer`, which is a
permanently disabled tracer (``span()`` returns a shared null context
manager) unless a run activated one via :func:`use_tracer`.

:class:`Stopwatch` — the pre-observability phase timer — now lives here as
a compatibility shim: it keeps its accumulate-by-name API (the §IV-G
efficiency benchmark consumes it) while forwarding every phase to the
ambient tracer, so `Segugio.fit`'s phases appear in a run's span tree
without the pipeline knowing about tracers.
"""

from __future__ import annotations

import contextvars
import json
import time
from contextlib import contextmanager
from typing import Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.obs import logs as _logs
from repro.obs import resources as _resources


class Span:
    """One named, timed section of a run."""

    __slots__ = (
        "span_id",
        "name",
        "attributes",
        "start",
        "duration",
        "status",
        "error",
        "children",
    )

    def __init__(
        self, span_id: int, name: str, attributes: Dict[str, object], start: float
    ) -> None:
        self.span_id = span_id
        self.name = name
        self.attributes = attributes
        self.start = start  # seconds since the tracer's epoch
        self.duration = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self.children: List["Span"] = []

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.error is not None:
            record["error"] = self.error
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.6f}s, "
            f"status={self.status!r}, children={len(self.children)})"
        )


class _NullContext:
    """Reusable no-op context manager for disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects a forest of spans for one run."""

    def __init__(
        self, enabled: bool = True, epoch: Optional[float] = None
    ) -> None:
        self.enabled = bool(enabled)
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        # On Linux perf_counter() is CLOCK_MONOTONIC, shared across
        # processes — a worker tracer built with the parent's epoch
        # records starts directly on the parent's clock.
        self._epoch = time.perf_counter() if epoch is None else float(epoch)

    @property
    def epoch(self) -> float:
        """The perf_counter() instant all span starts are relative to."""
        return self._epoch

    def span(
        self, name: str, **attributes: object
    ) -> Union[_NullContext, "contextmanager"]:
        """Context manager recording one span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self._record(name, attributes)

    @contextmanager
    def _record(self, name: str, attributes: Dict[str, object]) -> Iterator[Span]:
        span = Span(
            self._next_id, name, attributes, time.perf_counter() - self._epoch
        )
        self._next_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        log_token = _logs.push_context(phase=name)
        # Resource accounting rides the span stack: when a run activated a
        # ResourceMonitor (``--profile``), every span opens a frame whose
        # CPU/RSS/IO deltas land as a ``resources`` span attribute and in
        # the per-phase totals.  Observation only — never feeds back.
        monitor = _resources.current_monitor()
        frame = monitor.open_frame(name) if monitor.enabled else None
        started = time.perf_counter()
        try:
            yield span
        except BaseException as error:
            span.status = "error"
            span.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            span.duration = time.perf_counter() - started
            if frame is not None:
                delta = monitor.close_frame(frame)
                if delta:
                    span.attributes["resources"] = delta
            _logs.pop_context(log_token)
            self._stack.pop()

    # ------------------------------------------------------------------ #
    # cross-process adoption
    # ------------------------------------------------------------------ #

    def adopt_span_trees(self, trees: List[Dict[str, object]]) -> int:
        """Graft finished span trees (``to_dict`` shape) under the open span.

        The supervisor merges worker sidecar records through this after a
        pool call: each tree becomes a child of the currently open span
        (or a new root when none is open), with fresh span ids assigned in
        depth-first order so ids stay dense and deterministic regardless
        of which process originally recorded the span.  Returns the number
        of spans adopted.
        """
        if not self.enabled:
            return 0
        n = 0
        for tree in trees:
            span = self._adopt(tree)
            n += self._count(span)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        return n

    def _adopt(self, tree: Dict[str, object]) -> Span:
        span = Span(
            self._next_id,
            str(tree.get("name", "")),
            dict(tree.get("attributes") or {}),
            float(tree.get("start", 0.0)),
        )
        self._next_id += 1
        span.duration = float(tree.get("duration", 0.0))
        span.status = str(tree.get("status", "ok"))
        error = tree.get("error")
        span.error = None if error is None else str(error)
        for child in tree.get("children") or []:
            span.children.append(self._adopt(child))
        return span

    @staticmethod
    def _count(span: Span) -> int:
        return 1 + sum(Tracer._count(child) for child in span.children)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def iter_spans(self) -> Iterator[Tuple[Span, Optional[Span], int]]:
        """Depth-first ``(span, parent, depth)`` over the finished forest."""

        def walk(
            span: Span, parent: Optional[Span], depth: int
        ) -> Iterator[Tuple[Span, Optional[Span], int]]:
            yield span, parent, depth
            for child in span.children:
                yield from walk(child, span, depth + 1)

        for root in self.roots:
            yield from walk(root, None, 0)

    def phase_totals(self) -> Dict[str, float]:
        """Cumulative seconds per span name, in first-seen order."""
        totals: Dict[str, float] = {}
        for span, _parent, _depth in self.iter_spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def span_tree(self) -> List[Dict[str, object]]:
        """The whole forest as nested JSON-ready dicts."""
        return [root.to_dict() for root in self.roots]

    def write_jsonl(self, stream: IO[str]) -> int:
        """One flat JSON record per span; returns the number written."""
        n = 0
        for span, parent, depth in self.iter_spans():
            record: Dict[str, object] = {
                "id": span.span_id,
                "parent_id": parent.span_id if parent is not None else None,
                "depth": depth,
                "name": span.name,
                "start": round(span.start, 6),
                "duration": round(span.duration, 6),
                "status": span.status,
            }
            if span.attributes:
                record["attributes"] = dict(span.attributes)
            if span.error is not None:
                record["error"] = span.error
            stream.write(json.dumps(record, default=str) + "\n")
            n += 1
        return n

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self._next_id = 1
        self._epoch = time.perf_counter()


# ---------------------------------------------------------------------- #
# ambient tracer
# ---------------------------------------------------------------------- #

_DISABLED = Tracer(enabled=False)

_active: contextvars.ContextVar[Optional[Tracer]] = contextvars.ContextVar(
    "segugio_tracer", default=None
)


def current_tracer() -> Tracer:
    """The tracer activated for the current run (disabled by default)."""
    tracer = _active.get()
    return tracer if tracer is not None else _DISABLED


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make *tracer* the ambient tracer within the ``with`` block."""
    token = _active.set(tracer)
    try:
        yield tracer
    finally:
        _active.reset(token)


# ---------------------------------------------------------------------- #
# Stopwatch compatibility shim
# ---------------------------------------------------------------------- #


class Stopwatch:
    """Accumulates named wall-clock phase durations.

    .. deprecated::
        ``Stopwatch`` predates :mod:`repro.obs`; it survives as a shim so
        the efficiency benchmark and ``Segugio.timings_`` keep their API.
        New instrumentation should open spans on :func:`current_tracer`
        (and get metrics/manifest integration for free) instead of holding
        a private stopwatch.

    Every :meth:`phase` also opens a span on the ambient tracer, so
    stopwatch-timed phases land in the run's span tree whenever telemetry
    is active — at zero cost (a shared null context) when it is not.
    """

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one named phase (re-entrant accumulates)."""
        with current_tracer().span(name):
            start = time.perf_counter()
            try:
                yield
            finally:
                duration = time.perf_counter() - start
                if name not in self._elapsed:
                    self._order.append(name)
                    self._elapsed[name] = 0.0
                self._elapsed[name] += duration

    def elapsed(self, name: str) -> float:
        """Total seconds recorded for *name* (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        return sum(self._elapsed.values())

    def items(self) -> List[Tuple[str, float]]:
        """Phases in first-recorded order with their cumulative seconds."""
        return [(name, self._elapsed[name]) for name in self._order]

    def report(self) -> str:
        """Human-readable multi-line breakdown."""
        lines = [f"{name:<28s} {secs:9.3f}s" for name, secs in self.items()]
        lines.append(f"{'total':<28s} {self.total():9.3f}s")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Stopwatch({dict(self.items())})"

"""Declarative SLO-style health rules for day-over-day tracker quality.

The tracker computes a per-day *drift summary* (feature/score PSI+KS,
pruning-volume deltas, blacklist label churn — numbers only, produced in
:mod:`repro.core.tracker` from :mod:`repro.ml.drift`) and hands it to this
module as a plain mapping.  :func:`evaluate_health` walks a set of
:class:`AlertRule` thresholds over that mapping and folds the violations
into a single ``{"status": ok|warn|alert, "reasons": [...]}`` verdict that
lands in the day record and, aggregated by :func:`run_health`, at the top
of the run manifest.

Rules are *data*, not code: each one names a dotted path into the day
summary plus a warn and an alert threshold.  Missing paths are skipped
(a first day has no drift reference — it must stay ``ok``), so the same
rule set applies to every day unconditionally.  Custom rule sets can be
built from plain dicts via :func:`rules_from_dicts`.

Zero-dependency and deterministic, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_ALERT = "alert"

_STATUS_RANK = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_ALERT: 2}


@dataclass(frozen=True)
class AlertRule:
    """One threshold check against a dotted path in the day summary.

    The value at *path* trips ``warn`` at >= ``warn`` and ``alert`` at
    >= ``alert``; either threshold may be ``None`` to disable that level.
    ``description`` says what a violation *means* operationally — it is
    echoed into the health reasons so an alert is self-explanatory.
    """

    name: str
    path: str
    warn: Optional[float]
    alert: Optional[float]
    description: str

    def __post_init__(self) -> None:
        if self.warn is None and self.alert is None:
            raise ValueError(f"rule {self.name!r} has no thresholds")
        if (
            self.warn is not None
            and self.alert is not None
            and self.alert < self.warn
        ):
            raise ValueError(
                f"rule {self.name!r}: alert threshold below warn threshold"
            )

    def evaluate(self, summary: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """The violation dict for *summary*, or None when quiet/missing."""
        value = lookup_path(summary, self.path)
        if value is None:
            return None
        try:
            value = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        status = STATUS_OK
        threshold: Optional[float] = None
        if self.alert is not None and value >= self.alert:
            status, threshold = STATUS_ALERT, self.alert
        elif self.warn is not None and value >= self.warn:
            status, threshold = STATUS_WARN, self.warn
        if status == STATUS_OK:
            return None
        return {
            "rule": self.name,
            "status": status,
            "path": self.path,
            "value": value,
            "threshold": threshold,
            "message": (
                f"{self.name}: {self.description} "
                f"({self.path}={value:.4g} >= {threshold:.4g})"
            ),
        }


#: Default SLO rule set.  The classic scorecard PSI thresholds (0.10
#: watch / 0.25 retrain, mirrored in repro.ml.drift) assume a *fixed*
#: model scoring a stable population; a Segugio tracker retrains daily,
#: so consecutive days legitimately differ by the retraining noise —
#: empirically up to PSI ~1.0 / KS ~0.4 on the small synthetic scenario.
#: The defaults sit above that noise floor: they flag step changes in the
#: environment (feed swaps, collector outages, traffic regime shifts),
#: not day-to-day model wobble.
DEFAULT_ALERT_RULES: Tuple[AlertRule, ...] = (
    AlertRule(
        name="score_psi",
        path="drift.score.psi",
        warn=1.20,
        alert=2.00,
        description="malware-score distribution shifted vs the previous day",
    ),
    AlertRule(
        name="score_ks",
        path="drift.score.ks",
        warn=0.45,
        alert=0.70,
        description="malware-score CDF gap vs the previous day",
    ),
    AlertRule(
        name="feature_psi",
        path="drift.features_max.psi",
        warn=0.50,
        alert=1.00,
        description="a feature's input distribution shifted vs the previous day",
    ),
    AlertRule(
        name="pruning_volume",
        path="drift.pruning_max.delta_pct",
        warn=75.0,
        alert=200.0,
        description="a pruning rule's removal volume jumped vs the previous day",
    ),
    AlertRule(
        name="label_churn",
        path="drift.labels.churn_pct",
        warn=25.0,
        alert=60.0,
        description="blacklist ground truth churned vs the previous day",
    ),
    AlertRule(
        name="scored_volume",
        path="drift.volume.delta_pct_abs",
        warn=60.0,
        alert=90.0,
        description="the number of scored domains swung vs the previous day",
    ),
    AlertRule(
        name="degraded_inputs",
        path="n_degradations",
        warn=1.0,
        alert=None,
        description="the day ran on degraded inputs (see provenance tags)",
    ),
    AlertRule(
        name="supervisor_degraded",
        path="n_supervisor_degradations",
        warn=1.0,
        alert=4.0,
        description=(
            "the execution layer degraded while computing the day "
            "(worker loss, task hang, retry, pool shrink, or serial fallback)"
        ),
    ),
)


def lookup_path(summary: Mapping[str, object], path: str) -> Optional[object]:
    """Resolve a dotted *path* through nested mappings (None if absent)."""
    node: object = summary
    for part in path.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


def worst_status(statuses: Iterable[str]) -> str:
    """The most severe status present (``ok`` for an empty iterable)."""
    worst = STATUS_OK
    for status in statuses:
        if _STATUS_RANK.get(status, 0) > _STATUS_RANK[worst]:
            worst = status
    return worst


def evaluate_health(
    summary: Mapping[str, object],
    rules: Sequence[AlertRule] = DEFAULT_ALERT_RULES,
) -> Dict[str, object]:
    """Fold *rules* over one day's summary into a health verdict.

    Returns ``{"status": ..., "reasons": [...]}`` where each reason is a
    rule violation dict (see :meth:`AlertRule.evaluate`).  A day with no
    drift reference (first day, resume) trips nothing and stays ``ok``.
    """
    reasons = [
        violation
        for rule in rules
        if (violation := rule.evaluate(summary)) is not None
    ]
    status = worst_status(str(r["status"]) for r in reasons)
    return {"status": status, "reasons": reasons}


def run_health(
    day_records: Sequence[Mapping[str, object]],
    n_orphan_events: int = 0,
) -> Dict[str, object]:
    """Aggregate per-day health verdicts into the run-level manifest entry.

    The run is as healthy as its worst day; reasons are flattened with the
    day number attached so the manifest is readable without the day table.
    ``n_orphan_events`` counts execution-layer degradation events that fell
    *between* day windows (a failed day attempt, a checkpoint-write retry)
    and therefore appear in no day's verdict — any orphan degrades the run
    to at least ``warn`` so a retried-then-succeeded day cannot look clean.
    """
    statuses: List[str] = []
    reasons: List[Dict[str, object]] = []
    for record in day_records:
        health = record.get("health")
        if not isinstance(health, Mapping):
            continue
        statuses.append(str(health.get("status", STATUS_OK)))
        for reason in health.get("reasons", ()):  # type: ignore[union-attr]
            if isinstance(reason, Mapping):
                reasons.append({"day": record.get("day"), **reason})
    if n_orphan_events > 0:
        statuses.append(STATUS_WARN)
        reasons.append(
            {
                "day": None,
                "rule": "supervisor_degraded",
                "status": STATUS_WARN,
                "path": "runtime_events",
                "value": float(n_orphan_events),
                "threshold": 1.0,
                "message": (
                    f"supervisor_degraded: {n_orphan_events} execution-layer "
                    "degradation events outside any day window "
                    "(day retries or checkpoint-write retries)"
                ),
            }
        )
    return {"status": worst_status(statuses), "reasons": reasons}


def rules_from_dicts(
    specs: Iterable[Mapping[str, object]]
) -> Tuple[AlertRule, ...]:
    """Build a rule set from plain dicts (e.g. parsed from JSON)."""
    rules = []
    for spec in specs:
        rules.append(
            AlertRule(
                name=str(spec["name"]),
                path=str(spec["path"]),
                warn=None if spec.get("warn") is None else float(spec["warn"]),  # type: ignore[arg-type]
                alert=None if spec.get("alert") is None else float(spec["alert"]),  # type: ignore[arg-type]
                description=str(spec.get("description", "")),
            )
        )
    return tuple(rules)


class AlertRuleError(ValueError):
    """An alert-rules file that cannot be parsed or validated."""


_RULE_KEYS = frozenset({"name", "path", "warn", "alert", "description"})


def load_alert_rules(path: str) -> Tuple[AlertRule, ...]:
    """Load a deployment rule set from JSON, with located validation errors.

    Accepts either a bare list of rule objects or ``{"rules": [...]}``;
    every error names the file and the offending rule index so a bad spec
    is fixable from the message alone (``rules.json: rules[2] (score_psi):
    alert threshold below warn threshold``).
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except OSError as error:
        raise AlertRuleError(f"{path}: cannot read alert rules: {error}") from error
    except json.JSONDecodeError as error:
        raise AlertRuleError(f"{path}: invalid JSON: {error}") from error
    if isinstance(payload, Mapping):
        extra = sorted(set(payload) - {"rules"})
        if extra or "rules" not in payload:
            raise AlertRuleError(
                f"{path}: expected a list of rule objects or {{\"rules\": [...]}}"
            )
        payload = payload["rules"]
    if not isinstance(payload, list):
        raise AlertRuleError(
            f"{path}: expected a list of rule objects, got {type(payload).__name__}"
        )
    if not payload:
        raise AlertRuleError(f"{path}: no alert rules defined")
    rules: List[AlertRule] = []
    for index, spec in enumerate(payload):
        if not isinstance(spec, Mapping):
            raise AlertRuleError(
                f"{path}: rules[{index}]: expected an object, "
                f"got {type(spec).__name__}"
            )
        where = f"{path}: rules[{index}]"
        if isinstance(spec.get("name"), str):
            where = f"{where} ({spec['name']})"
        unknown = sorted(set(spec) - _RULE_KEYS)
        if unknown:
            raise AlertRuleError(f"{where}: unknown keys {unknown}")
        missing = sorted({"name", "path"} - set(spec))
        if missing:
            raise AlertRuleError(f"{where}: missing required keys {missing}")
        try:
            rules.extend(rules_from_dicts([spec]))
        except (TypeError, ValueError) as error:
            raise AlertRuleError(f"{where}: {error}") from error
    return tuple(rules)

"""Zero-dependency metrics registry: counters, gauges, histograms.

The pipeline reports what it did through named, optionally labeled metric
series following the convention ``segugio_<area>_<name>`` (areas: ``graph``,
``pruning``, ``ingest``, ``health``, ``tracker``, ``forest``, ``checkpoint``,
...).  Three instrument kinds:

* :class:`Counter` — monotonically increasing event totals
  (``segugio_ingest_quarantined_total{category="trace:bad_ipv4"}``);
* :class:`Gauge` — last-written per-day values
  (``segugio_graph_edges``, ``segugio_pruning_removed{rule="r1"}``);
* :class:`Histogram` — bucketed distributions
  (``segugio_classify_score``).

A :class:`MetricsRegistry` owns the instruments and exports them as a
JSON-ready :meth:`~MetricsRegistry.snapshot` (with
:meth:`~MetricsRegistry.delta` for per-day accounting in the run manifest)
or as Prometheus text exposition format
(:meth:`~MetricsRegistry.to_prometheus`).

Telemetry is **off by default**: instrumented code calls
:func:`get_registry`, which returns a permanently disabled registry unless a
run (CLI ``--telemetry-dir``, :class:`repro.obs.run.RunTelemetry`, or a test)
activated one via :func:`use_registry`.  A disabled registry hands back a
shared no-op instrument, so the hot path pays one context-variable lookup
and an attribute check per instrumentation site.
"""

from __future__ import annotations

import contextvars
import json
import re
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

DEFAULT_MAX_SERIES = 512
"""Per-instrument cap on distinct label combinations.

Quarantine categories, pruning rules, and health checks are all small
closed sets; hitting this cap means a label value is carrying unbounded
data (a domain name, a path) and the instrument is misused."""

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

SCORE_BUCKETS: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 10))
"""Unit-interval buckets for malware-score distributions."""

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """Instrument misuse: bad name, label mismatch, kind clash, cardinality."""


class _NoopInstrument:
    """Shared do-nothing instrument returned by disabled registries."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        pass


NOOP_INSTRUMENT = _NoopInstrument()


class _Instrument:
    """Common state: name, help text, declared labels, series storage."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Tuple[str, ...], max_series: int
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricsError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        self.name = name
        self.help = help
        self.label_names = label_names
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        if key not in self._series and len(self._series) >= self.max_series:
            raise MetricsError(
                f"metric {self.name!r} exceeded {self.max_series} label "
                f"combinations — a label value is likely unbounded "
                f"(offending series: {dict(zip(self.label_names, key))})"
            )
        return key

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.label_names, key))

    def series_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._series.items())


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc by {value})"
            )
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(value)


class Gauge(_Instrument):
    """Last-written value."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        self._series[self._key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + float(value)


class Histogram(_Instrument):
    """Bucketed distribution with sum and count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        max_series: int,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, max_series)
        if not buckets:
            raise MetricsError(f"histogram {name!r} needs at least one bucket")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise MetricsError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets = ordered

    def _cell(self, labels: Mapping[str, object]) -> Dict[str, object]:
        key = self._key(labels)
        cell = self._series.get(key)
        if cell is None:
            cell = {
                "counts": [0] * (len(self.buckets) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self._series[key] = cell
        return cell  # type: ignore[return-value]

    def observe(self, value: float, **labels: object) -> None:
        cell = self._cell(labels)
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        cell["counts"][index] += 1  # type: ignore[index]
        cell["sum"] += value  # type: ignore[operator]
        cell["count"] += 1  # type: ignore[operator]

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        cell = self._cell(labels)
        counts = cell["counts"]
        total = 0.0
        n = 0
        for value in values:
            value = float(value)
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            counts[index] += 1  # type: ignore[index]
            total += value
            n += 1
        cell["sum"] += total  # type: ignore[operator]
        cell["count"] += n  # type: ignore[operator]


class MetricsRegistry:
    """Owns instruments; snapshots, deltas, and exports them."""

    def __init__(
        self, enabled: bool = True, max_series: int = DEFAULT_MAX_SERIES
    ) -> None:
        self._enabled = bool(enabled)
        self.max_series = max_series
        self._instruments: Dict[str, _Instrument] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    # ------------------------------------------------------------------ #
    # instrument construction
    # ------------------------------------------------------------------ #

    def _get(
        self,
        cls,
        name: str,
        help: str,
        labels: Tuple[str, ...],
        **kwargs: object,
    ):
        if not self._enabled:
            return NOOP_INSTRUMENT
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, cannot re-register as {cls.kind}"
                )
            if existing.label_names != labels:
                raise MetricsError(
                    f"metric {name!r} already registered with labels "
                    f"{list(existing.label_names)}, got {list(labels)}"
                )
            return existing
        instrument = cls(name, help, labels, self.max_series, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(
        self, name: str, help: str = "", labels: Tuple[str, ...] = ()
    ) -> Counter:
        return self._get(Counter, name, help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Tuple[str, ...] = ()
    ) -> Gauge:
        return self._get(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, tuple(labels), buckets=buckets)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready copy of every series, keyed by metric name."""
        out: Dict[str, Dict[str, object]] = {}
        for name, inst in sorted(self._instruments.items()):
            series = []
            for key, value in inst.series_items():
                entry: Dict[str, object] = {"labels": inst._label_dict(key)}
                if inst.kind == "histogram":
                    cell = value  # type: ignore[assignment]
                    entry["count"] = cell["count"]
                    entry["sum"] = cell["sum"]
                    entry["buckets"] = {
                        _bucket_label(b): c
                        for b, c in zip(
                            list(inst.buckets) + [float("inf")],  # type: ignore[attr-defined]
                            cell["counts"],
                        )
                    }
                else:
                    entry["value"] = value
                series.append(entry)
            out[name] = {
                "kind": inst.kind,
                "help": inst.help,
                "labels": list(inst.label_names),
                "series": series,
            }
        return out

    @staticmethod
    def delta(
        current: Dict[str, Dict[str, object]],
        previous: Dict[str, Dict[str, object]],
    ) -> Dict[str, Dict[str, object]]:
        """What changed between two snapshots.

        Counters and histograms subtract series-wise (absent-from-previous
        counts as zero); gauges report their current value.  Metrics and
        series with no change are dropped, so a per-day delta carries only
        that day's activity.
        """
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in current.items():
            prev_metric = previous.get(name, {})
            prev_series = {
                _series_key(entry): entry
                for entry in prev_metric.get("series", [])  # type: ignore[union-attr]
            }
            changed = []
            for entry in metric["series"]:  # type: ignore[union-attr]
                prev = prev_series.get(_series_key(entry))
                if metric["kind"] == "gauge":
                    if prev is None or prev["value"] != entry["value"]:
                        changed.append(dict(entry))
                elif metric["kind"] == "counter":
                    base = 0.0 if prev is None else float(prev["value"])  # type: ignore[arg-type]
                    diff = float(entry["value"]) - base  # type: ignore[arg-type]
                    if diff != 0:
                        changed.append(
                            {"labels": entry["labels"], "value": diff}
                        )
                else:  # histogram
                    base_count = 0 if prev is None else prev["count"]
                    if entry["count"] == base_count:
                        continue
                    prev_buckets = {} if prev is None else prev["buckets"]
                    changed.append(
                        {
                            "labels": entry["labels"],
                            "count": entry["count"] - base_count,  # type: ignore[operator]
                            "sum": entry["sum"]
                            - (0.0 if prev is None else prev["sum"]),  # type: ignore[operator]
                            "buckets": {
                                le: c - prev_buckets.get(le, 0)  # type: ignore[union-attr]
                                for le, c in entry["buckets"].items()  # type: ignore[union-attr]
                            },
                        }
                    )
            if changed:
                out[name] = {
                    "kind": metric["kind"],
                    "help": metric["help"],
                    "labels": metric["labels"],
                    "series": changed,
                }
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (cumulative histogram buckets)."""
        lines: List[str] = []
        for name, inst in sorted(self._instruments.items()):
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            for key, value in inst.series_items():
                labels = inst._label_dict(key)
                if inst.kind == "histogram":
                    cell = value  # type: ignore[assignment]
                    cumulative = 0
                    bounds = list(inst.buckets) + [float("inf")]  # type: ignore[attr-defined]
                    for bound, count in zip(bounds, cell["counts"]):
                        cumulative += count
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _bucket_label(bound)
                        lines.append(
                            f"{name}_bucket{_fmt_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_fmt_labels(labels)} {_fmt_value(cell['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_fmt_labels(labels)} {cell['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_fmt_labels(labels)} {_fmt_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._instruments.clear()


def _series_key(entry: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(entry["labels"].items()))  # type: ignore[union-attr]


def _bucket_label(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    text = f"{bound:g}"
    return text


def _fmt_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return f"{number:g}"


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# ---------------------------------------------------------------------- #
# ambient registry
# ---------------------------------------------------------------------- #

_DISABLED = MetricsRegistry(enabled=False)

_active: contextvars.ContextVar[Optional[MetricsRegistry]] = (
    contextvars.ContextVar("segugio_metrics_registry", default=None)
)


def get_registry() -> MetricsRegistry:
    """The registry activated for the current run (disabled by default)."""
    registry = _active.get()
    return registry if registry is not None else _DISABLED


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make *registry* the ambient registry within the ``with`` block."""
    token = _active.set(registry)
    try:
        yield registry
    finally:
        _active.reset(token)

"""Runtime events: structured degradation provenance from the execution layer.

The supervised executor (:mod:`repro.runtime.supervisor`) never changes
*what* a run computes — worker death, hung tasks, and transient I/O are
absorbed by resubmitting seed-keyed work, shrinking the pool, or falling
back to bit-identical serial execution.  What it must change is the run's
*story*: an operator looking at a manifest has to see that day 41 limped
home on one worker.  This module is that story's ledger — an append-only
log of small structured events (``worker_lost``, ``task_hang``,
``pool_shrunk``, ``serial_fallback``, …), each a plain dict with a ``kind``
plus context fields.

Like the tracer, metrics registry, and :class:`~repro.obs.provenance.DecisionLog`,
the log is **ambient**: library code calls :func:`current_event_log` and
records unconditionally; :class:`repro.obs.run.RunTelemetry` installs its
own log via :func:`use_event_log` so events land in the manifest.  Unlike
those layers the module default is *enabled* — degradations are rare and
important enough that even an untelemetered run keeps them, surfacing the
count through each :class:`~repro.core.tracker.DayReport` and the day's
health verdict.

Events are deterministic: they carry task indices, labels, and ladder
positions — never wall-clock timestamps or PIDs — so a faulted run's event
stream is itself reproducible under a seed-keyed fault plan.  When the
structured-log context has a ``day`` or ``phase`` bound (telemetry's
``day_scope``, the tracer's active span), :meth:`RuntimeEventLog.record`
stamps them onto the event unless the caller passed its own — so a fault
that fires mid-shard self-describes which day and phase it degraded
instead of relying on where the event happened to land in the manifest.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs import logs as _logs

#: hard cap on retained events; a runaway failure loop must not eat the heap
MAX_EVENTS = 10_000


class RuntimeEventLog:
    """Append-only log of execution-layer degradation events."""

    def __init__(self, enabled: bool = True, max_events: int = MAX_EVENTS) -> None:
        self.enabled = bool(enabled)
        self.max_events = int(max_events)
        self.records: List[Dict[str, object]] = []
        self.n_dropped = 0

    def record(self, kind: str, **fields: object) -> Optional[Dict[str, object]]:
        """Append one event (no-op when disabled; counts drops past the cap)."""
        if not self.enabled:
            return None
        if len(self.records) >= self.max_events:
            self.n_dropped += 1
            return None
        event: Dict[str, object] = {"kind": str(kind)}
        context = _logs.context_fields()
        for key in ("day", "phase"):
            if key in context and key not in fields:
                event[key] = context[key]
        event.update(fields)
        self.records.append(event)
        return event

    # ------------------------------------------------------------------ #
    # windows: callers slice "what happened during my phase/day"
    # ------------------------------------------------------------------ #

    def mark(self) -> int:
        """An opaque cursor; pass to :meth:`since` to get later events."""
        return len(self.records)

    def since(self, mark: int) -> List[Dict[str, object]]:
        return [dict(record) for record in self.records[mark:]]

    def to_list(self) -> List[Dict[str, object]]:
        return [dict(record) for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


#: module default: enabled so untelemetered runs still surface degradations
_DEFAULT_LOG = RuntimeEventLog(enabled=True)

_ACTIVE_LOG: contextvars.ContextVar[Optional[RuntimeEventLog]] = (
    contextvars.ContextVar("segugio_event_log", default=None)
)


def current_event_log() -> RuntimeEventLog:
    """The ambient event log (the enabled module default unless overridden)."""
    active = _ACTIVE_LOG.get()
    return active if active is not None else _DEFAULT_LOG


@contextmanager
def use_event_log(log: RuntimeEventLog) -> Iterator[RuntimeEventLog]:
    """Install *log* as the ambient event log for the enclosed block."""
    token = _ACTIVE_LOG.set(log)
    try:
        yield log
    finally:
        _ACTIVE_LOG.reset(token)

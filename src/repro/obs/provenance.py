"""Decision provenance: one compact, replayable record per classified domain.

PR 2 made the *runtime* observable; this module makes the *detector*
observable.  Every domain that enters a classified day's behavior graph
gets a schema-versioned decision record capturing the whole causal chain
behind its verdict:

* where its ground-truth label came from (``label_source``);
* which pruning rule R1–R4 removed it — or that it survived pruning
  (``pruning``);
* the full F1/F2/F3 feature vector it was scored on (``features``);
* how the forest voted — a per-tree score histogram and the vote margin
  (``votes``);
* the final malware score, the day's calibrated threshold, and whether it
  was detected (``score`` / ``threshold`` / ``detected``).

Records land in ``--telemetry-dir`` as ``decisions.jsonl`` (one JSON
object per line, keys sorted), next to ``manifest.json`` and
``trace.jsonl``.  ``segugio explain <domain> --telemetry-dir …`` replays a
verdict from these artifacts alone — no model, no traffic, no recompute.

Like the metrics registry and the tracer, the :class:`DecisionLog` is
**ambient and off by default**: instrumented code calls
:func:`current_decision_log` and pays only a context-variable lookup until
a run activates one via :func:`use_decision_log` (normally through
:class:`repro.obs.run.RunTelemetry`).  The module is zero-dependency and
deterministic — records carry day numbers, never wall-clock identity.
"""

from __future__ import annotations

import contextvars
import json
import os
from contextlib import contextmanager
from typing import Dict, IO, Iterator, List, Mapping, Optional, Sequence

#: bump when a record key changes meaning; readers refuse unknown versions
DECISION_SCHEMA_VERSION = 1

DECISIONS_FILENAME = "decisions.jsonl"

#: verdict values, in pipeline order
VERDICT_SCORED = "scored"      # unknown domain, survived pruning, got a score
VERDICT_PRUNED = "pruned"      # removed from the graph before classification
VERDICT_LABELED = "labeled"    # known ground truth; never enters scoring

#: number of per-tree score buckets in the vote histogram
VOTE_BINS = 10


class ProvenanceError(ValueError):
    """Unreadable or wrong-version decision artifacts."""


class DecisionLog:
    """Collects decision records for one run (ambient, off by default).

    Two export modes share one byte format:

    * **buffered** (default): every record stays in :attr:`records` until
      :meth:`write_jsonl` serializes them in one pass;
    * **streaming** (:meth:`stream_to`): records accumulate per day and
      :meth:`flush_pending` appends them to a staging file as each day
      finalizes, clearing the buffer — at paper scale this trades the
      ~1 GB in-memory ledger for a file handle.  :meth:`finalize_stream`
      fsyncs and atomically renames the staging file into place, so an
      interrupted run never leaves a torn ``decisions.jsonl``.

    Records are immutable once their day closes (``finalize_day`` stamps
    thresholds *before* the day scope exits and flushes), which is what
    makes the streamed bytes provably identical to the buffered bytes.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.records: List[Dict[str, object]] = []
        self.n_flushed = 0
        self._stream_path: Optional[str] = None
        self._stream: Optional[IO[str]] = None

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(
        self,
        day: int,
        domain: str,
        verdict: str,
        label: str,
        label_source: str,
        pruning: Mapping[str, object],
        features: Optional[Mapping[str, float]] = None,
        votes: Optional[Mapping[str, object]] = None,
        score: Optional[float] = None,
    ) -> None:
        """Append one decision record (no-op when disabled).

        ``threshold`` and ``detected`` are unknown at classification time
        (the tracker calibrates the threshold *after* scoring), so they are
        stamped later by :meth:`finalize_day`.
        """
        if not self.enabled:
            return
        if verdict not in (VERDICT_SCORED, VERDICT_PRUNED, VERDICT_LABELED):
            raise ProvenanceError(f"unknown verdict {verdict!r}")
        self.records.append(
            {
                "schema": DECISION_SCHEMA_VERSION,
                "day": int(day),
                "domain": str(domain),
                "verdict": verdict,
                "label": str(label),
                "label_source": str(label_source),
                "pruning": dict(pruning),
                "features": dict(features) if features is not None else None,
                "votes": dict(votes) if votes is not None else None,
                "score": float(score) if score is not None else None,
                "threshold": None,
                "detected": None,
            }
        )

    def finalize_day(self, day: int, threshold: float) -> int:
        """Stamp *threshold* / ``detected`` onto the day's scored records.

        Returns the number of records finalized.  Safe to call when
        disabled or when the day produced no records.
        """
        if not self.enabled:
            return 0
        n = 0
        for record in self.records:
            if record["day"] != int(day) or record["verdict"] != VERDICT_SCORED:
                continue
            record["threshold"] = float(threshold)
            score = record["score"]
            record["detected"] = bool(
                score is not None and float(score) >= float(threshold)
            )
            n += 1
        return n

    # ------------------------------------------------------------------ #
    # incremental streaming
    # ------------------------------------------------------------------ #

    @property
    def streaming(self) -> bool:
        """Whether a streaming target is open (or was finalized)."""
        return self._stream_path is not None

    def stream_to(self, path: str) -> None:
        """Stream records incrementally toward *path*.

        Opens a pid-suffixed staging file next to *path*; records land in
        it on every :meth:`flush_pending` and the rename onto *path*
        happens only in :meth:`finalize_stream`.  No-op when disabled.
        """
        if not self.enabled:
            return
        if self._stream is not None:
            raise ProvenanceError(
                f"decision log already streaming to {self._stream_path!r}"
            )
        self._stream_path = str(path)
        self._stream = open(f"{path}.tmp.{os.getpid()}", "w")

    def flush_pending(self) -> int:
        """Append every buffered record to the stream and clear the buffer.

        Called as each day scope closes — by then ``finalize_day`` has
        stamped the day's thresholds, so flushed bytes match what the
        buffered path would serialize at the end of the run.  Returns the
        number of records flushed (0 when not streaming).
        """
        if self._stream is None or not self.records:
            return 0
        n = self.write_jsonl(self._stream)
        self.n_flushed += n
        self.records.clear()
        return n

    def finalize_stream(self) -> str:
        """Flush, fsync, and atomically rename the stream into place.

        Returns the final path.  Idempotent after the first call (a run
        that writes its telemetry twice must not truncate the ledger);
        calling it on a log that never streamed is an error.
        """
        if self._stream_path is None:
            raise ProvenanceError("decision log is not streaming")
        if self._stream is None:  # already finalized
            return self._stream_path
        self.flush_pending()
        staging = self._stream.name
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self._stream.close()
        self._stream = None
        os.replace(staging, self._stream_path)
        path = self._stream_path
        return path

    # ------------------------------------------------------------------ #
    # access / export
    # ------------------------------------------------------------------ #

    def day_records(self, day: int) -> List[Dict[str, object]]:
        """Buffered (not-yet-flushed) records for *day*."""
        return [r for r in self.records if r["day"] == int(day)]

    def for_domain(self, domain: str) -> List[Dict[str, object]]:
        """Buffered (not-yet-flushed) records for *domain*."""
        return [r for r in self.records if r["domain"] == domain]

    def write_jsonl(self, stream: IO[str]) -> int:
        """One sorted-keys JSON object per buffered record; returns count."""
        n = 0
        for record in self.records:
            stream.write(json.dumps(record, sort_keys=True, default=str) + "\n")
            n += 1
        return n

    def __len__(self) -> int:
        return self.n_flushed + len(self.records)

    def __repr__(self) -> str:
        return (
            f"DecisionLog(records={len(self.records)}, "
            f"flushed={self.n_flushed}, enabled={self.enabled})"
        )


# ---------------------------------------------------------------------- #
# ambient instance
# ---------------------------------------------------------------------- #

_DISABLED = DecisionLog(enabled=False)

_active: contextvars.ContextVar[Optional[DecisionLog]] = contextvars.ContextVar(
    "segugio_decision_log", default=None
)


def current_decision_log() -> DecisionLog:
    """The decision log activated for the current run (disabled default)."""
    log = _active.get()
    return log if log is not None else _DISABLED


@contextmanager
def use_decision_log(log: DecisionLog) -> Iterator[DecisionLog]:
    """Make *log* the ambient decision log within the ``with`` block."""
    token = _active.set(log)
    try:
        yield log
    finally:
        _active.reset(token)


# ---------------------------------------------------------------------- #
# reading artifacts back
# ---------------------------------------------------------------------- #


def load_decisions(path: str) -> List[Dict[str, object]]:
    """Read a ``decisions.jsonl``; raises :class:`ProvenanceError`."""
    records: List[Dict[str, object]] = []
    try:
        with open(path) as stream:
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ProvenanceError(
                        f"{path}:{lineno}: record is not valid JSON ({error})"
                    ) from None
                if not isinstance(record, dict):
                    raise ProvenanceError(
                        f"{path}:{lineno}: record must be a JSON object"
                    )
                version = record.get("schema")
                if version != DECISION_SCHEMA_VERSION:
                    raise ProvenanceError(
                        f"{path}:{lineno}: decision schema {version!r} is not "
                        f"supported (this library speaks version "
                        f"{DECISION_SCHEMA_VERSION})"
                    )
                records.append(record)
    except OSError as error:
        raise ProvenanceError(f"{path}: cannot read decisions ({error})") from None
    return records


def decisions_for_domain(
    records: Sequence[Mapping[str, object]], domain: str
) -> List[Mapping[str, object]]:
    """All decision records for one domain, in recorded (day) order."""
    return [r for r in records if r.get("domain") == domain]


# ---------------------------------------------------------------------- #
# human-readable replay (``segugio explain --telemetry-dir``)
# ---------------------------------------------------------------------- #


def _vote_sparkline(histogram: Sequence[int]) -> str:
    blocks = " ▁▂▃▄▅▆▇█"
    peak = max(histogram) if histogram else 0
    if peak <= 0:
        return ""
    return "".join(
        blocks[1 + (int(v) * (len(blocks) - 2)) // peak] if v else blocks[0]
        for v in histogram
    )


def render_decision(record: Mapping[str, object]) -> str:
    """One decision record as a human-readable verdict replay."""
    lines = [f"{record.get('domain', '?')} — day {record.get('day', '?')}"]
    label = record.get("label", "?")
    source = record.get("label_source", "?")
    lines.append(f"  ground truth: {label} (source: {source})")
    pruning = record.get("pruning") or {}
    if pruning.get("kept"):
        lines.append("  pruning R1-R4: kept (entered the pruned graph)")
    else:
        rule = pruning.get("removed_by") or "?"
        detail = {
            "r1": "R1 removed its only querying machines (inactive)",
            "r2": "R2 removed its only querying machines (proxy meganode)",
            "r3": "R3: queried by a single machine",
            "r4": "R4: effective 2LD too popular",
            "orphaned": "all querying machines were pruned by R1/R2",
        }.get(str(rule), f"removed by {rule}")
        lines.append(f"  pruning R1-R4: removed — {detail}")
    verdict = record.get("verdict")
    if verdict == VERDICT_LABELED:
        lines.append("  verdict: not scored (ground truth already known)")
        return "\n".join(lines)
    if verdict == VERDICT_PRUNED:
        lines.append(
            "  verdict: not scored (pruned before classification) — a miss "
            "here is a pruning decision, not a classifier decision"
        )
        return "\n".join(lines)
    features = record.get("features") or {}
    if features:
        lines.append("  features measured:")
        for name, value in features.items():
            lines.append(f"    {name:<24s} {float(value):10.4f}")
    votes = record.get("votes") or {}
    histogram = votes.get("histogram")
    if histogram:
        n_trees = int(votes.get("n_trees", sum(int(v) for v in histogram)))
        margin = votes.get("margin")
        lines.append(
            f"  forest vote ({n_trees} trees, score buckets 0.0→1.0): "
            f"{_vote_sparkline(histogram)}  {list(int(v) for v in histogram)}"
        )
        if margin is not None:
            lines.append(
                f"  vote margin: {float(margin):+.3f} "
                "(fraction voting malware minus fraction voting benign)"
            )
    score = record.get("score")
    threshold = record.get("threshold")
    if score is not None:
        text = f"  malware score: {float(score):.6f}"
        if threshold is not None:
            text += f"  vs threshold {float(threshold):.6f}"
        lines.append(text)
    detected = record.get("detected")
    if detected is None:
        lines.append("  verdict: scored (threshold not calibrated in this run)")
    elif detected:
        lines.append("  verdict: DETECTED (score >= threshold)")
    else:
        lines.append("  verdict: not detected (score below threshold)")
    return "\n".join(lines)

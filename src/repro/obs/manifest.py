"""Run manifests: the one artifact that tells a whole run's story.

Every telemetry-enabled ``segugio track`` / ``segugio classify-dir`` run
writes two files next to its outputs:

* ``manifest.json`` — the run manifest (this module's schema);
* ``trace.jsonl`` — the flat span trace
  (:meth:`repro.obs.tracing.Tracer.write_jsonl`).

Manifest layout (``manifest_version`` 2)::

    {
      "manifest_version": 2,
      "run_id": "…", "command": "track", "created_unix": 1754450000.0,
      "config": {…} | null,          # SegugioConfig as a dict
      "config_sha256": "…" | null,   # hash of the canonical config JSON
      "health": {"status": "ok|warn|alert", "reasons": […]},  # run SLO verdict
      "days": [                      # one record per processed day
        {"day": 21, "threshold": 0.97, "n_scored": 412,
         "n_new_detections": 3, "n_repeat_detections": 1,
         "n_implicated_machines": 9, "provenance": ["blacklist_stale:warning"],
         "drift": {…} | null,        # day-over-day quality summary
         "health": {"status": "…", "reasons": […]},
         "runtime_events": [{…}],    # execution-layer degradations, this day
                                     # (absent when the day ran clean)
         "phases": {"build_graph": 0.41, …},       # span seconds, this day
         "metrics": {…}}                            # registry delta, this day
      ],
      "metrics": {…},                # final whole-run registry snapshot
      "spans": […],                  # nested span tree
      "ingest": [{…}],               # IngestReport.to_dict() per loaded source
      "degradations": ["…"],         # union of day provenance tags
      "runtime_events": [{…}],       # whole-run supervisor event log: every
                                     # worker_lost/task_hang/task_retry/
                                     # pool_shrunk/serial_fallback/day_retry/
                                     # io_retry event, in order (see
                                     # repro.runtime.supervisor)
      "warnings": ["…"],
      "trace_file": "trace.jsonl",
      "decisions_file": "decisions.jsonl" | null,  # decision provenance
      "resources": {…}               # additive: per-phase CPU/peak-RSS/IO,
                                     # throughput gauges, pool stats, and
                                     # "workers" — per-pool-label sidecar
                                     # merge accounting (n_merged/
                                     # n_quarantined/n_missing/...) from
                                     # cross-process worker tracing
                                     # (repro.obs.workerctx, DESIGN.md §15)
                                     # — present only on ``--profile`` runs
                                     # (repro.obs.resources; readers render
                                     # "n/a" when absent)
    }

**Version history.** v1 (PR 2) predates the SEG006 telemetry-naming
contract: its span trees and day ``phases`` use the old dotted names
(``fit``, ``forest.predict``, ``checkpoint.save``, …) and it has no
``health``/``drift``/``decisions_file`` fields.  :func:`load_manifest`
still accepts v1 and upgrades it in place — span/phase names are mapped
through :data:`SPAN_RENAMES_V1` and the new fields default to unknown
health — so telemetry dirs written by older builds keep rendering.
The ``runtime_events`` keys (run-level and per-day) were added later as
a purely *additive* v2 extension: readers must treat a missing key as an
empty list, so older v2 manifests stay valid without a version bump.
The ``resources`` key (run-level and per-day) follows the same additive
contract: only ``--profile`` runs write it, and readers must render
"n/a" — never fail — when it is absent.  ``resources.workers`` (and the
merged ``segugio_worker_task`` spans it accounts for) arrived with
cross-process worker tracing under the same rule: absent on serial or
pre-workerctx manifests, and never required by any reader.

``segugio telemetry manifest.json`` renders the per-phase cost breakdown in
the shape of the paper's §IV-G efficiency table (learning vs. classification
wall-clock per day), plus the day-by-day counter summary.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence

MANIFEST_VERSION = 2
MANIFEST_FILENAME = "manifest.json"
TRACE_FILENAME = "trace.jsonl"

#: v1 span names (pre-SEG006 dotted style) -> v2 ``segugio_*`` names.
#: Applied to the span tree and day phase keys when loading a v1 manifest.
SPAN_RENAMES_V1 = {
    "process_day": "segugio_run_day",
    "health_check": "segugio_tracker_health_check",
    "fit": "segugio_tracker_fit",
    "calibrate_threshold": "segugio_tracker_calibrate",
    "classify": "segugio_tracker_classify",
    "update_ledger": "segugio_tracker_ledger_update",
    "forest.fit": "segugio_forest_fit",
    "forest.predict": "segugio_forest_predict",
    "features.f1_machine": "segugio_features_f1_machine",
    "features.f2_activity": "segugio_features_f2_activity",
    "features.f3_ip": "segugio_features_f3_ip",
    "experiment.select_split": "segugio_experiment_select_split",
    "experiment.fit": "segugio_experiment_fit",
    "experiment.classify": "segugio_experiment_classify",
    "checkpoint.save": "segugio_checkpoint_save",
    "checkpoint.resume": "segugio_checkpoint_resume",
    "ingest.load_observation": "segugio_ingest_load_observation",
}

# Phase grouping of the paper's §IV-G table: the learning phase covers graph
# preparation + training; the classification phase covers measuring and
# scoring the unknown domains (same split as eval.experiments).
TRAIN_PHASES = (
    "build_graph",
    "label_nodes",
    "filter_probes",
    "prune_graph",
    "build_abuse_oracle",
    "measure_training_features",
    "train_classifier",
)
TEST_PHASES = ("measure_test_features", "score_domains")


class ManifestError(ValueError):
    """Unreadable, foreign, or structurally broken run manifest."""


def config_hash(config: Optional[Mapping[str, object]]) -> Optional[str]:
    """SHA-256 of the canonical (sorted-keys) JSON form of a config dict."""
    if config is None:
        return None
    body = json.dumps(config, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_manifest(manifest: Mapping[str, object], path: str) -> None:
    """Atomically (stage + rename) write *manifest* as indented JSON."""
    staging = f"{path}.tmp.{os.getpid()}"
    with open(staging, "w") as stream:
        json.dump(manifest, stream, indent=2, sort_keys=True, default=str)
        stream.write("\n")
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(staging, path)


def load_manifest(path: str) -> Dict[str, object]:
    """Read and validate a run manifest; raises :class:`ManifestError`."""
    if not os.path.exists(path):
        raise ManifestError(f"{path}: manifest file does not exist")
    try:
        with open(path) as stream:
            payload = json.load(stream)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ManifestError(
            f"{path}: manifest is not valid JSON ({error})"
        ) from None
    if not isinstance(payload, dict):
        raise ManifestError(f"{path}: manifest must be a JSON object")
    version = payload.get("manifest_version")
    if version == 1:
        payload = upgrade_manifest_v1(payload)
    elif version != MANIFEST_VERSION:
        raise ManifestError(
            f"{path}: manifest version {version!r} is not supported "
            f"(this library speaks versions 1-{MANIFEST_VERSION})"
        )
    for key in ("run_id", "command", "days", "metrics", "spans"):
        if key not in payload:
            raise ManifestError(f"{path}: manifest is missing {key!r}")
    return payload


def _rename_spans(spans: List[Dict[str, object]]) -> None:
    for span in spans:
        if isinstance(span, dict):
            name = span.get("name")
            if name in SPAN_RENAMES_V1:
                span["name"] = SPAN_RENAMES_V1[name]  # type: ignore[index]
            children = span.get("children")
            if isinstance(children, list):
                _rename_spans(children)


def upgrade_manifest_v1(payload: Dict[str, object]) -> Dict[str, object]:
    """In-place upgrade of a v1 manifest to the v2 schema.

    Span-tree and day ``phases`` names move through
    :data:`SPAN_RENAMES_V1`; the v2-only quality fields are defaulted —
    ``health`` becomes ``unknown`` (a v1 run recorded no drift, which is
    different from a v2 run that measured ``ok``) and ``decisions_file``
    becomes None.  The original version is preserved in
    ``upgraded_from_version``.
    """
    payload = dict(payload)
    days = payload.get("days")
    if isinstance(days, list):
        for day in days:
            if not isinstance(day, dict):
                continue
            phases = day.get("phases")
            if isinstance(phases, dict):
                day["phases"] = {
                    SPAN_RENAMES_V1.get(name, name): seconds
                    for name, seconds in phases.items()
                }
            day.setdefault("drift", None)
            day.setdefault("health", {"status": "unknown", "reasons": []})
    spans = payload.get("spans")
    if isinstance(spans, list):
        _rename_spans(spans)  # type: ignore[arg-type]
    payload.setdefault("health", {"status": "unknown", "reasons": []})
    payload.setdefault("decisions_file", None)
    payload["upgraded_from_version"] = 1
    payload["manifest_version"] = MANIFEST_VERSION
    return payload


# ---------------------------------------------------------------------- #
# §IV-G-style rendering
# ---------------------------------------------------------------------- #


def _phase_order(days: Sequence[Mapping[str, object]]) -> List[str]:
    """Known train/test phases first (paper order), then everything else."""
    seen: List[str] = []
    for day in days:
        for name in day.get("phases", {}):  # type: ignore[union-attr]
            if name not in seen:
                seen.append(name)
    ordered = [p for p in TRAIN_PHASES if p in seen]
    ordered += [p for p in TEST_PHASES if p in seen]
    ordered += [p for p in seen if p not in ordered]
    return ordered


def render_telemetry(manifest: Mapping[str, object]) -> str:
    """Human-readable per-phase cost breakdown (cf. paper §IV-G)."""
    days: List[Mapping[str, object]] = manifest.get("days", [])  # type: ignore[assignment]
    run_id = manifest.get("run_id", "?")
    command = manifest.get("command", "?")
    config_sha = manifest.get("config_sha256") or "-"
    lines = [
        f"run {run_id} — segugio {command}, {len(days)} day(s), "
        f"config sha256 {str(config_sha)[:12]}"
    ]
    created = manifest.get("created_unix")
    if created is not None:
        try:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%SZ", time.gmtime(float(created))  # type: ignore[arg-type]
            )
        except (TypeError, ValueError, OverflowError, OSError):
            stamp = "?"
        lines[0] += f", created {stamp}"
    upgraded = manifest.get("upgraded_from_version")
    if upgraded is not None:
        lines[0] += f" (upgraded from manifest v{upgraded})"

    health = manifest.get("health")
    if isinstance(health, Mapping) and health.get("status"):
        lines.append(f"health: {health['status']}")
        for reason in health.get("reasons", []):  # type: ignore[union-attr]
            if isinstance(reason, Mapping):
                day = reason.get("day", "?")
                message = reason.get("message", reason.get("rule", "?"))
                lines.append(f"  day {day}: [{reason.get('status', '?')}] {message}")

    day_labels = [f"day {d.get('day', '?')}" for d in days]
    width = max([9] + [len(label) for label in day_labels]) + 2

    def row(name: str, values: Sequence[str]) -> str:
        cells = "".join(f"{v:>{width}s}" for v in values)
        return f"  {name:<28s}{cells}"

    lines.append("")
    lines.append("per-phase wall-clock cost (seconds), cf. paper §IV-G:")
    lines.append(row("phase", day_labels + ["total"]))
    order = _phase_order(days)
    phase_by_day: Dict[str, List[float]] = {
        name: [float(d.get("phases", {}).get(name, 0.0)) for d in days]  # type: ignore[union-attr]
        for name in order
    }
    for name in order:
        values = phase_by_day[name]
        lines.append(
            row(name, [f"{v:.3f}" for v in values] + [f"{sum(values):.3f}"])
        )

    def group_total(names: Sequence[str]) -> List[float]:
        return [
            sum(phase_by_day[n][i] for n in names if n in phase_by_day)
            for i in range(len(days))
        ]

    train = group_total(TRAIN_PHASES)
    test = group_total(TEST_PHASES)
    lines.append(
        row("learning total", [f"{v:.3f}" for v in train] + [f"{sum(train):.3f}"])
    )
    lines.append(
        row(
            "classification total",
            [f"{v:.3f}" for v in test] + [f"{sum(test):.3f}"],
        )
    )
    if any(test) and sum(test) > 0:
        lines.append(
            row(
                "learning/classification",
                [
                    f"{(t / c):.1f}x" if c > 0 else "-"
                    for t, c in zip(train, test)
                ]
                + [f"{(sum(train) / sum(test)):.1f}x"],
            )
        )

    # Resource cost (additive v2 ``resources`` key, written by --profile
    # runs): the §IV-G table again, but in CPU seconds and peak RSS rather
    # than wall-clock alone.  Manifests without the key render "n/a".
    lines.append("")
    resources = manifest.get("resources")
    if not isinstance(resources, Mapping):
        lines.append(
            "resource cost: n/a (run was not profiled; "
            "rerun with --profile to record per-phase CPU/RSS/IO)"
        )
    else:
        process: Mapping[str, object] = resources.get("process", {})  # type: ignore[assignment]
        if not isinstance(process, Mapping):
            process = {}

        def cell(value: object, spec: str = ".3f") -> str:
            if value is None:
                return "n/a"
            try:
                return format(float(value), spec)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return "n/a"

        lines.append("resource cost (profiled run), cf. paper §IV-G:")
        util = process.get("cpu_util")
        summary = (
            f"  process: wall {cell(process.get('wall_s'))}s, "
            f"cpu {cell(process.get('cpu_s'))}s"
        )
        if util is not None:
            summary += f" (util {cell(util, '.2f')})"
        summary += f", peak rss {cell(process.get('peak_rss_mb'), '.1f')} MB"
        lines.append(summary)
        io_read = process.get("io_read_bytes")
        io_write = process.get("io_write_bytes")
        if io_read is not None or io_write is not None:
            lines.append(
                f"  io: read {cell(io_read, '.0f')} B, "
                f"write {cell(io_write, '.0f')} B"
            )
        phase_stats: Mapping[str, object] = resources.get("phases", {})  # type: ignore[assignment]
        if isinstance(phase_stats, Mapping) and phase_stats:
            ordered = [p for p in TRAIN_PHASES if p in phase_stats]
            ordered += [p for p in TEST_PHASES if p in phase_stats]
            ordered += [p for p in phase_stats if p not in ordered]
            rwidth = 14

            def resource_row(name: str, values: Sequence[str]) -> str:
                cells = "".join(f"{v:>{rwidth}s}" for v in values)
                return f"  {name:<28s}{cells}"

            lines.append(
                resource_row("phase", ["wall s", "cpu s", "peak rss MB"])
            )
            for name in ordered:
                stats = phase_stats.get(name)
                if not isinstance(stats, Mapping):
                    continue
                lines.append(
                    resource_row(
                        name,
                        [
                            cell(stats.get("wall_s")),
                            cell(stats.get("cpu_s")),
                            cell(stats.get("peak_rss_mb"), ".1f"),
                        ],
                    )
                )
        throughput: Mapping[str, object] = resources.get("throughput", {})  # type: ignore[assignment]
        if isinstance(throughput, Mapping) and throughput:
            lines.append(
                "  throughput: "
                + ", ".join(
                    f"{name[: -len('_per_s')] if name.endswith('_per_s') else name}"
                    f" {cell(value, '.1f')}/s"
                    for name, value in sorted(throughput.items())
                )
            )

    counter_rows = [
        ("unknown domains scored", "n_scored"),
        ("new detections", "n_new_detections"),
        ("repeat detections", "n_repeat_detections"),
        ("machines implicated", "n_implicated_machines"),
    ]
    if days and any(key in d for d in days for _, key in counter_rows):
        lines.append("")
        lines.append("per-day outcomes:")
        lines.append(row("counter", day_labels + ["total"]))
        for label, key in counter_rows:
            values = [int(d.get(key, 0) or 0) for d in days]
            lines.append(
                row(label, [str(v) for v in values] + [str(sum(values))])
            )
        thresholds = [d.get("threshold") for d in days]
        if any(t is not None for t in thresholds):
            lines.append(
                row(
                    "detection threshold",
                    [
                        f"{float(t):.3f}" if t is not None else "-"
                        for t in thresholds
                    ]
                    + ["-"],
                )
            )

    ingest: List[Mapping[str, object]] = manifest.get("ingest", [])  # type: ignore[assignment]
    if ingest:
        lines.append("")
        lines.append("ingest accounting:")
        for report in ingest:
            lines.append(
                f"  {report.get('source', '?')} ({report.get('mode', '?')}): "
                f"{report.get('n_ok', 0)} kept, "
                f"{report.get('n_quarantined', 0)} quarantined"
            )
            counters: Mapping[str, int] = report.get("counters", {})  # type: ignore[assignment]
            for category in sorted(counters):
                lines.append(f"    {category}: {counters[category]}")

    degradations: List[str] = manifest.get("degradations", [])  # type: ignore[assignment]
    if degradations:
        lines.append("")
        lines.append("degradations observed:")
        for tag in degradations:
            lines.append(f"  {tag}")

    runtime_events: List[Mapping[str, object]] = manifest.get(  # type: ignore[assignment]
        "runtime_events", []
    )
    if runtime_events:
        counts: Dict[str, int] = {}
        for event in runtime_events:
            if isinstance(event, Mapping):
                kind = str(event.get("kind", "?"))
                counts[kind] = counts.get(kind, 0) + 1
        lines.append("")
        lines.append(
            f"execution-layer degradations ({len(runtime_events)} event(s); "
            "results are unaffected — the run only got slower):"
        )
        for kind in sorted(counts):
            lines.append(f"  {kind}: {counts[kind]}")

    warnings: List[str] = manifest.get("warnings", [])  # type: ignore[assignment]
    if warnings:
        lines.append("")
        lines.append("warnings:")
        for text in warnings:
            lines.append(f"  {text}")

    # Companion artifacts the manifest points at, so a reader of the
    # rendered summary knows what else the telemetry dir holds.
    metrics: Mapping[str, object] = manifest.get("metrics") or {}  # type: ignore[assignment]
    artifacts = [f"trace {manifest.get('trace_file') or '-'}"]
    decisions_file = manifest.get("decisions_file")
    if decisions_file:
        artifacts.append(f"decisions {decisions_file}")
    if isinstance(metrics, Mapping):
        artifacts.append(f"{len(metrics)} metric series")
    lines.append("")
    lines.append("artifacts: " + ", ".join(artifacts))
    return "\n".join(lines)

"""Structured JSON logging with run-id / day / phase context.

``get_logger(component)`` hands out a :class:`StructuredLogger` whose
``debug/info/warning/error`` methods emit one JSON object per line::

    {"ts": 1754450000.123456, "level": "info", "component": "tracker",
     "event": "day_processed", "run_id": "a1b2...", "day": 21,
     "n_scored": 412, "n_new": 3}

Record schema: ``ts`` (unix seconds), ``level``, ``component``, ``event``
(a stable snake_case identifier — the greppable key), then any bound
context fields (``run_id``, ``day``, ``phase``), then the call-site fields.

Logging is **disabled by default** (no sink): library code can log
unconditionally and a logger call costs one attribute check when nothing is
listening.  A CLI run (``--log-json``), a :class:`repro.obs.run.RunTelemetry`
capture, or a test enables it with :func:`configure`.

Context propagation uses a :mod:`contextvars` variable so nested scopes
(run -> day -> phase) stack correctly across the pipeline's call tree:
:func:`bound` adds fields for a ``with`` block, and the tracing layer binds
``phase`` to the active span name while telemetry is on.
"""

from __future__ import annotations

import contextvars
import json
import time
from contextlib import contextmanager
from typing import Dict, IO, Iterator, Optional, Tuple

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class _Config:
    __slots__ = ("stream", "level")

    def __init__(self) -> None:
        self.stream: Optional[IO[str]] = None
        self.level: int = LEVELS["info"]


_config = _Config()

# Immutable tuple-of-pairs so tokens restore precisely on scope exit.
_context: contextvars.ContextVar[Tuple[Tuple[str, object], ...]] = (
    contextvars.ContextVar("segugio_log_context", default=())
)


def configure(
    stream: Optional[IO[str]], level: str = "info"
) -> None:
    """Enable (or, with ``stream=None``, disable) structured logging."""
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; options: {sorted(LEVELS)}")
    _config.stream = stream
    _config.level = LEVELS[level]


def reset() -> None:
    """Return to the disabled default (used by tests)."""
    _config.stream = None
    _config.level = LEVELS["info"]


def enabled() -> bool:
    return _config.stream is not None


def context_fields() -> Dict[str, object]:
    """The currently bound context fields (run_id, day, phase, ...)."""
    return dict(_context.get())


@contextmanager
def bound(**fields: object) -> Iterator[None]:
    """Bind extra context fields for the duration of the ``with`` block."""
    token = push_context(**fields)
    try:
        yield
    finally:
        pop_context(token)


def push_context(**fields: object) -> "contextvars.Token":
    """Non-contextmanager bind; pair with :func:`pop_context` (tracing uses
    this to tag records with the active span's phase name)."""
    merged = dict(_context.get())
    merged.update(fields)
    return _context.set(tuple(merged.items()))


def pop_context(token: "contextvars.Token") -> None:
    _context.reset(token)


class StructuredLogger:
    """Named emitter of JSON log records (one component per logger)."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def _emit(self, level: str, event: str, fields: Dict[str, object]) -> None:
        stream = _config.stream
        if stream is None or LEVELS[level] < _config.level:
            return
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(_context.get())
        record.update(fields)
        stream.write(json.dumps(record, default=str) + "\n")

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(component: str) -> StructuredLogger:
    """The (cached) structured logger for one pipeline component."""
    logger = _loggers.get(component)
    if logger is None:
        logger = _loggers[component] = StructuredLogger(component)
    return logger

"""Resource accounting: CPU, RSS, I/O, and throughput for one run.

The profiling layer behind ``segugio track --profile`` / ``segugio
profile``.  A :class:`ResourceMonitor` rides the existing span stack
(:mod:`repro.obs.tracing` opens a *frame* per span when a monitor is
active) and attributes to each pipeline phase:

* wall-clock seconds (monotonic clock);
* CPU seconds, user+system, via ``os.times()``;
* peak RSS, from a low-overhead ``/proc/self/status`` watermark sampler
  (``VmRSS`` sampled on a background thread, ``VmHWM`` as the floor) with
  a ``resource.getrusage`` fallback off-Linux;
* I/O bytes from ``/proc/self/io`` (gracefully ``None`` off-Linux);
* optional ``tracemalloc`` allocation deltas (off by default — it is the
  one sampler with real overhead).

Throughput gauges (trace rows/s, graph edges/s, domains scored/s) are
derived from unit counters the pipeline reports via :func:`count_units`
divided by the wall-clock of the phases that process them, and the
supervised process pool reports per-worker busy time, queue-wait, and
task-latency histograms through :meth:`ResourceMonitor.observe_task`
(child RSS folded in via ``RUSAGE_CHILDREN``).

Like every other :mod:`repro.obs` layer the monitor is **ambient and off
by default**: instrumented code consults :func:`current_monitor`, which
is a permanently disabled monitor unless a run activated one via
:func:`use_monitor`.  A disabled monitor costs one context-variable
lookup and one attribute check per site.  The monitor only ever *observes*
— it never feeds back into pipeline decisions, so profiling on vs. off
leaves every decision artifact bit-identical.

Declarative :class:`ResourceBudget` thresholds (``max_peak_rss_mb``,
``min_rows_per_s``, …) are evaluated over the finished summary and folded
into the run health verdict next to the :class:`repro.obs.monitor`
alert rules.

This module is the **only** place in the library allowed to read raw
resource primitives (``resource.getrusage``, ``os.times``,
``/proc/self/*``, ``tracemalloc``) — lint rule SEG012 enforces the
containment, mirroring SEG004/SEG011.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

from repro.obs.manifest import TEST_PHASES, TRAIN_PHASES
from repro.obs.monitor import STATUS_ALERT, STATUS_WARN

#: schema version of the ``resources`` manifest payload
RESOURCES_SCHEMA_VERSION = 1

#: throughput unit names reported by the pipeline via :func:`count_units`
UNIT_TRACE_ROWS = "trace_rows"
UNIT_GRAPH_EDGES = "graph_edges"
UNIT_DOMAINS_SCORED = "domains_scored"
UNIT_EDGE_BATCHES = "edge_batches"

#: which phases' wall-clock each unit is divided by for its ``*_per_s``
#: gauge; a unit whose phases recorded no time falls back to total wall
UNIT_PHASES: Dict[str, Tuple[str, ...]] = {
    UNIT_TRACE_ROWS: ("build_graph",),
    UNIT_GRAPH_EDGES: tuple(TRAIN_PHASES),
    UNIT_DOMAINS_SCORED: tuple(TEST_PHASES),
    UNIT_EDGE_BATCHES: ("build_graph",),
}

#: task-latency histogram bucket upper bounds (seconds)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: default watermark sampler period (seconds); ~20 Hz keeps the sampler
#: itself well under the documented <3% overhead bound
DEFAULT_SAMPLE_INTERVAL = 0.05


def process_clock() -> Tuple[float, float]:
    """``(wall_seconds, cpu_seconds)`` for the calling process.

    Wall is the monotonic performance counter; CPU is user+system via
    ``os.times()``.  Exported so pool workers (``repro.runtime.supervisor``)
    can self-time without reading resource primitives directly (SEG012).
    """
    t = os.times()
    return time.perf_counter(), t.user + t.system


def _maxrss_to_mb(ru_maxrss: float) -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return ru_maxrss / (1024.0 * 1024.0)
    return ru_maxrss / 1024.0


class ResourceReader:
    """Platform adapter for raw resource reads (injectable in tests).

    Every probe degrades gracefully: a missing ``/proc`` file or
    ``resource`` module yields ``None`` rather than raising, so the
    monitor works (with fewer columns) on any POSIX-ish platform.
    """

    status_path = "/proc/self/status"
    io_path = "/proc/self/io"

    def __init__(self) -> None:
        # /proc/self/io is re-read on every span open/close, so it is
        # held open and pread at offset 0: ~5us vs ~35us per open()+parse,
        # which is what keeps per-span accounting inside the <3% budget
        self._io_fd: Optional[int] = None
        self._io_unavailable = False

    def close(self) -> None:
        """Release the cached ``/proc/self/io`` descriptor (idempotent)."""
        fd = getattr(self, "_io_fd", None)  # fakes may skip __init__
        if fd is not None:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            self._io_fd = None

    def __del__(self) -> None:  # pragma: no cover - gc timing
        self.close()

    def clock(self) -> float:
        return time.perf_counter()

    def cpu_seconds(self) -> float:
        """User+system CPU seconds of this process (children excluded)."""
        t = os.times()
        return t.user + t.system

    def child_cpu_seconds(self) -> float:
        """User+system CPU seconds of reaped child processes."""
        t = os.times()
        return t.children_user + t.children_system

    def _status_kb(self, field: str) -> Optional[float]:
        try:
            with open(self.status_path) as stream:
                for line in stream:
                    if line.startswith(field + ":"):
                        return float(line.split()[1])
        except (OSError, ValueError, IndexError):
            return None
        return None

    def rss_mb(self) -> Optional[float]:
        """Current resident set size in MiB (``VmRSS``), None off-Linux."""
        kb = self._status_kb("VmRSS")
        return kb / 1024.0 if kb is not None else None

    def peak_rss_mb(self) -> Optional[float]:
        """Process-lifetime peak RSS in MiB: ``VmHWM``, else ``ru_maxrss``."""
        kb = self._status_kb("VmHWM")
        if kb is not None:
            return kb / 1024.0
        if _resource is not None:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            return _maxrss_to_mb(usage.ru_maxrss)
        return None

    def child_peak_rss_mb(self) -> Optional[float]:
        """Peak RSS of the largest reaped child (``RUSAGE_CHILDREN``)."""
        if _resource is None:  # pragma: no cover - non-POSIX
            return None
        usage = _resource.getrusage(_resource.RUSAGE_CHILDREN)
        return _maxrss_to_mb(usage.ru_maxrss)

    def io_bytes(self) -> Optional[Tuple[int, int]]:
        """``(read_bytes, write_bytes)`` from ``/proc/self/io``, or None."""
        if self._io_unavailable:
            return None
        try:
            if self._io_fd is None:
                self._io_fd = os.open(self.io_path, os.O_RDONLY)
            raw = os.pread(self._io_fd, 1024, 0)
        except OSError:
            self._io_unavailable = True
            return None
        read = write = None
        try:
            for line in raw.split(b"\n"):
                if line.startswith(b"read_bytes:"):
                    read = int(line.split()[1])
                elif line.startswith(b"write_bytes:"):
                    write = int(line.split()[1])
        except (ValueError, IndexError):  # pragma: no cover - malformed
            return None
        if read is None or write is None:
            return None
        return read, write


class _Frame:
    """One open span's resource baseline (closed into a delta dict)."""

    __slots__ = (
        "name", "wall0", "cpu0", "io0", "rss_peak", "alloc0",
    )

    def __init__(
        self,
        name: str,
        wall0: float,
        cpu0: float,
        io0: Optional[Tuple[int, int]],
        rss0: Optional[float],
        alloc0: Optional[int],
    ) -> None:
        self.name = name
        self.wall0 = wall0
        self.cpu0 = cpu0
        self.io0 = io0
        self.rss_peak = rss0
        self.alloc0 = alloc0


class ResourceMonitor:
    """Accumulates per-phase resource deltas, throughput units, pool stats.

    Thread-safety: :meth:`sample` runs on the background watermark thread
    and only touches the open-frame peaks and the global sampled peak,
    under the monitor lock; everything else runs on the coordinating
    thread.
    """

    def __init__(
        self,
        enabled: bool = True,
        reader: Optional[ResourceReader] = None,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
        trace_allocations: bool = False,
    ) -> None:
        self.enabled = bool(enabled)
        self.reader = reader if reader is not None else ResourceReader()
        self.sample_interval = float(sample_interval)
        self.trace_allocations = bool(trace_allocations)
        self._lock = threading.Lock()
        self._open_frames: List[_Frame] = []
        self.phases: Dict[str, Dict[str, object]] = {}
        self.units: Dict[str, int] = {}
        self.pool: Dict[str, Dict[str, object]] = {}
        self.workers: Dict[str, Dict[str, object]] = {}
        self._workers: Dict[object, str] = {}
        self.n_samples = 0
        self._sampled_peak_mb: Optional[float] = None
        self._last_rss_mb: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_tracemalloc = False
        if self.enabled:
            self._wall0 = self.reader.clock()
            self._cpu0 = self.reader.cpu_seconds()
            self._child_cpu0 = self.reader.child_cpu_seconds()
            self._io0 = self.reader.io_bytes()

    # ------------------------------------------------------------------ #
    # span frames (driven by repro.obs.tracing)
    # ------------------------------------------------------------------ #

    def open_frame(self, name: str) -> Optional[_Frame]:
        """Open a resource frame for span *name* (None when disabled).

        RSS is deliberately *not* read here: per-frame peaks come from the
        background watermark sampler (resolution = ``sample_interval``),
        seeded with its most recent reading.  Two ``/proc/self/status``
        parses per span would dominate the profiling overhead on short
        spans and break the <3% wall-clock budget the e2e bench gates on.
        """
        if not self.enabled:
            return None
        frame = _Frame(
            name,
            self.reader.clock(),
            self.reader.cpu_seconds(),
            self.reader.io_bytes(),
            self._last_rss_mb,
            tracemalloc.get_traced_memory()[0]
            if self.trace_allocations and tracemalloc.is_tracing()
            else None,
        )
        with self._lock:
            self._open_frames.append(frame)
        return frame

    def close_frame(self, frame: Optional[_Frame]) -> Optional[Dict[str, object]]:
        """Close *frame*, fold its deltas into the phase stats, and return
        the per-span delta dict (attached as a span attribute)."""
        if frame is None or not self.enabled:
            return None
        wall = self.reader.clock() - frame.wall0
        cpu = self.reader.cpu_seconds() - frame.cpu0
        io1 = self.reader.io_bytes()
        with self._lock:
            try:
                self._open_frames.remove(frame)
            except ValueError:  # pragma: no cover - double close
                pass
            peak = frame.rss_peak
            rss = self._last_rss_mb
        if peak is None and rss is None:
            # no watermark sample landed yet (sampler not running, or a
            # frame closed before the first tick): one direct read keeps
            # the column populated rather than blank.  The reading is
            # cached as the last-known RSS so samplerless monitors (the
            # per-process worker context) pay the /proc/self/status parse
            # once, not once per span — per-frame parses alone would
            # break the <3% e2e overhead gate.
            rss = self.reader.rss_mb()
            if rss is not None:
                with self._lock:
                    if self._last_rss_mb is None:
                        self._last_rss_mb = rss
        if rss is not None:
            peak = rss if peak is None else max(peak, rss)
        delta: Dict[str, object] = {
            "wall_s": round(max(wall, 0.0), 6),
            "cpu_s": round(max(cpu, 0.0), 6),
        }
        if peak is not None:
            delta["peak_rss_mb"] = round(peak, 3)
        if io1 is not None and frame.io0 is not None:
            delta["io_read_bytes"] = max(io1[0] - frame.io0[0], 0)
            delta["io_write_bytes"] = max(io1[1] - frame.io0[1], 0)
        if frame.alloc0 is not None and tracemalloc.is_tracing():
            delta["alloc_kb"] = round(
                (tracemalloc.get_traced_memory()[0] - frame.alloc0) / 1024.0, 3
            )
        stats = self.phases.setdefault(
            frame.name,
            {"wall_s": 0.0, "cpu_s": 0.0, "n": 0},
        )
        stats["wall_s"] = round(float(stats["wall_s"]) + float(delta["wall_s"]), 6)  # type: ignore[arg-type]
        stats["cpu_s"] = round(float(stats["cpu_s"]) + float(delta["cpu_s"]), 6)  # type: ignore[arg-type]
        stats["n"] = int(stats["n"]) + 1  # type: ignore[arg-type]
        if peak is not None:
            prior = stats.get("peak_rss_mb")
            stats["peak_rss_mb"] = round(
                peak if prior is None else max(float(prior), peak), 3  # type: ignore[arg-type]
            )
        for key in ("io_read_bytes", "io_write_bytes"):
            if key in delta:
                stats[key] = int(stats.get(key, 0)) + int(delta[key])  # type: ignore[arg-type]
        if "alloc_kb" in delta:
            stats["alloc_kb"] = round(
                float(stats.get("alloc_kb", 0.0)) + float(delta["alloc_kb"]), 3  # type: ignore[arg-type]
            )
        return delta

    # ------------------------------------------------------------------ #
    # watermark sampler
    # ------------------------------------------------------------------ #

    def sample(self) -> Optional[float]:
        """One watermark sample: read VmRSS, raise every open frame's peak.

        Called by the background thread; tests call it directly with a
        fake reader to assert the watermark math exactly.
        """
        rss = self.reader.rss_mb()
        if rss is None:
            return None
        with self._lock:
            self.n_samples += 1
            self._last_rss_mb = rss
            if self._sampled_peak_mb is None or rss > self._sampled_peak_mb:
                self._sampled_peak_mb = rss
            for frame in self._open_frames:
                if frame.rss_peak is None or rss > frame.rss_peak:
                    frame.rss_peak = rss
        return rss

    def _sampler_loop(self) -> None:  # pragma: no cover - timing-dependent
        while not self._stop.wait(self.sample_interval):
            self.sample()

    @contextmanager
    def running(self):
        """Run the watermark sampler (and optional tracemalloc) while open."""
        if not self.enabled:
            yield self
            return
        if self.trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        thread: Optional[threading.Thread] = None
        # seed the sampled-RSS cache so frames closed before the first
        # background tick still see a real value
        if self.sample_interval > 0 and self.sample() is not None:
            self._stop.clear()
            thread = threading.Thread(
                target=self._sampler_loop,
                name="segugio-rss-sampler",
                daemon=True,
            )
            self._thread = thread
            thread.start()
        try:
            yield self
        finally:
            if thread is not None:
                self._stop.set()
                thread.join(timeout=5.0)
                self._thread = None
            if self._started_tracemalloc and tracemalloc.is_tracing():
                tracemalloc.stop()
                self._started_tracemalloc = False

    # ------------------------------------------------------------------ #
    # throughput units
    # ------------------------------------------------------------------ #

    def count_units(self, unit: str, n: int) -> None:
        """Report *n* processed units (trace rows, edges, scored domains)."""
        if not self.enabled or n <= 0:
            return
        self.units[unit] = self.units.get(unit, 0) + int(n)

    # ------------------------------------------------------------------ #
    # pool / worker accounting
    # ------------------------------------------------------------------ #

    def _worker_id(self, worker: object) -> str:
        if worker not in self._workers:
            self._workers[worker] = f"w{len(self._workers)}"
        return self._workers[worker]

    def worker_alias(self, worker: object) -> str:
        """The stable anonymised id (``w0``, ``w1``, …) for *worker*.

        Public face of the first-seen worker table so the sidecar merge
        (:mod:`repro.obs.workerctx`) stamps merged spans with the same
        alias the pool stats use — pids never reach the manifest.
        """
        return self._worker_id(worker)

    def record_worker_merge(
        self,
        label: str,
        *,
        n_merged: int,
        n_quarantined: int,
        n_missing: int,
        n_sidecar_files: int,
        n_worker_events: int = 0,
    ) -> None:
        """Account one sidecar merge (per ``supervised_map`` label).

        *n_merged* worker span trees were grafted into the parent trace;
        *n_quarantined* sidecar records were superseded (a retried task's
        earlier round) and dropped — counted like orphan runtime events;
        *n_missing* completed tasks produced no sidecar record (killed
        worker, spill failure).  Lands additively as the manifest's
        ``resources.workers`` section.
        """
        if not self.enabled:
            return
        stats = self.workers.setdefault(
            label,
            {
                "n_merged": 0,
                "n_quarantined": 0,
                "n_missing": 0,
                "n_sidecar_files": 0,
                "n_worker_events": 0,
            },
        )
        stats["n_merged"] = int(stats["n_merged"]) + int(n_merged)  # type: ignore[arg-type]
        stats["n_quarantined"] = (  # type: ignore[arg-type]
            int(stats["n_quarantined"]) + int(n_quarantined)  # type: ignore[arg-type]
        )
        stats["n_missing"] = int(stats["n_missing"]) + int(n_missing)  # type: ignore[arg-type]
        stats["n_sidecar_files"] = (  # type: ignore[arg-type]
            int(stats["n_sidecar_files"]) + int(n_sidecar_files)  # type: ignore[arg-type]
        )
        stats["n_worker_events"] = (  # type: ignore[arg-type]
            int(stats["n_worker_events"]) + int(n_worker_events)  # type: ignore[arg-type]
        )

    def observe_task(
        self,
        label: str,
        queue_wait_s: float,
        exec_wall_s: float,
        exec_cpu_s: Optional[float],
        worker: object,
    ) -> None:
        """Record one supervised-pool task completion.

        *label* is the ``supervised_map`` task label (``forest_fit``, …);
        *worker* is the executing pid (or ``"serial"``), anonymised to a
        stable first-seen index (``w0``, ``w1``, …) in the summary.
        """
        if not self.enabled:
            return
        queue_wait_s = max(float(queue_wait_s), 0.0)
        exec_wall_s = max(float(exec_wall_s), 0.0)
        latency = queue_wait_s + exec_wall_s
        stats = self.pool.setdefault(
            label,
            {
                "n_tasks": 0,
                "busy_s": 0.0,
                "cpu_s": 0.0,
                "queue_wait_s": 0.0,
                "queue_wait_max_s": 0.0,
                "latency": {
                    "buckets": {f"{le:g}": 0 for le in LATENCY_BUCKETS}
                    | {"inf": 0},
                    "sum": 0.0,
                    "count": 0,
                },
                "workers": {},
            },
        )
        stats["n_tasks"] = int(stats["n_tasks"]) + 1  # type: ignore[arg-type]
        stats["busy_s"] = round(float(stats["busy_s"]) + exec_wall_s, 6)  # type: ignore[arg-type]
        if exec_cpu_s is not None:
            stats["cpu_s"] = round(  # type: ignore[arg-type]
                float(stats["cpu_s"]) + max(float(exec_cpu_s), 0.0), 6  # type: ignore[arg-type]
            )
        stats["queue_wait_s"] = round(  # type: ignore[arg-type]
            float(stats["queue_wait_s"]) + queue_wait_s, 6  # type: ignore[arg-type]
        )
        stats["queue_wait_max_s"] = round(  # type: ignore[arg-type]
            max(float(stats["queue_wait_max_s"]), queue_wait_s), 6  # type: ignore[arg-type]
        )
        hist: Dict[str, object] = stats["latency"]  # type: ignore[assignment]
        buckets: Dict[str, int] = hist["buckets"]  # type: ignore[assignment]
        placed = False
        for le in LATENCY_BUCKETS:
            if latency <= le:
                buckets[f"{le:g}"] += 1
                placed = True
                break
        if not placed:
            buckets["inf"] += 1
        hist["sum"] = round(float(hist["sum"]) + latency, 6)  # type: ignore[arg-type]
        hist["count"] = int(hist["count"]) + 1  # type: ignore[arg-type]
        workers: Dict[str, Dict[str, object]] = stats["workers"]  # type: ignore[assignment]
        wid = self._worker_id(worker)
        wstats = workers.setdefault(wid, {"n_tasks": 0, "busy_s": 0.0})
        wstats["n_tasks"] = int(wstats["n_tasks"]) + 1  # type: ignore[arg-type]
        wstats["busy_s"] = round(float(wstats["busy_s"]) + exec_wall_s, 6)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # per-day deltas (driven by RunTelemetry.day_scope)
    # ------------------------------------------------------------------ #

    def day_mark(self) -> Optional[Dict[str, object]]:
        """Opaque baseline for a per-day resource delta (None if disabled)."""
        if not self.enabled:
            return None
        return {
            "cpu": self.reader.cpu_seconds(),
            "units": dict(self.units),
        }

    def day_delta(
        self, mark: Optional[Dict[str, object]]
    ) -> Optional[Dict[str, object]]:
        """The day's resource delta vs. :meth:`day_mark` (None if disabled)."""
        if mark is None or not self.enabled:
            return None
        units_before: Mapping[str, int] = mark["units"]  # type: ignore[assignment]
        units = {
            name: count - int(units_before.get(name, 0))
            for name, count in self.units.items()
            if count - int(units_before.get(name, 0)) > 0
        }
        delta: Dict[str, object] = {
            "cpu_s": round(
                max(self.reader.cpu_seconds() - float(mark["cpu"]), 0.0), 6  # type: ignore[arg-type]
            ),
        }
        peak = self.peak_rss_mb()
        if peak is not None:
            delta["peak_rss_mb"] = round(peak, 3)
        if units:
            delta["units"] = units
        return delta

    # ------------------------------------------------------------------ #
    # summary
    # ------------------------------------------------------------------ #

    def peak_rss_mb(self) -> Optional[float]:
        """Best-known process peak RSS: max(VmHWM/rusage, sampled VmRSS)."""
        peak = self.reader.peak_rss_mb()
        with self._lock:
            sampled = self._sampled_peak_mb
        if peak is None:
            return sampled
        if sampled is not None:
            peak = max(peak, sampled)
        return peak

    def summary(self) -> Dict[str, object]:
        """The ``resources`` manifest payload (schema-versioned, additive)."""
        wall = max(self.reader.clock() - self._wall0, 0.0)
        cpu = max(self.reader.cpu_seconds() - self._cpu0, 0.0)
        child_cpu = max(
            self.reader.child_cpu_seconds() - self._child_cpu0, 0.0
        )
        process: Dict[str, object] = {
            "wall_s": round(wall, 6),
            "cpu_s": round(cpu, 6),
            "child_cpu_s": round(child_cpu, 6),
            "cpu_util": round(cpu / wall, 4) if wall > 0 else None,
        }
        peak = self.peak_rss_mb()
        if peak is not None:
            process["peak_rss_mb"] = round(peak, 3)
        child_peak = self.reader.child_peak_rss_mb()
        if child_peak is not None and child_peak > 0:
            process["child_peak_rss_mb"] = round(child_peak, 3)
        io1 = self.reader.io_bytes()
        if io1 is not None and self._io0 is not None:
            process["io_read_bytes"] = max(io1[0] - self._io0[0], 0)
            process["io_write_bytes"] = max(io1[1] - self._io0[1], 0)
        if self.trace_allocations and tracemalloc.is_tracing():
            process["alloc_peak_kb"] = round(
                tracemalloc.get_traced_memory()[1] / 1024.0, 3
            )
        payload: Dict[str, object] = {
            "schema_version": RESOURCES_SCHEMA_VERSION,
            "platform": {
                "has_proc_status": self.reader.rss_mb() is not None,
                "has_proc_io": self.reader.io_bytes() is not None,
                "n_rss_samples": self.n_samples,
                "sample_interval_s": self.sample_interval,
            },
            "process": process,
            "phases": {name: dict(stats) for name, stats in self.phases.items()},
            "units": dict(self.units),
            "throughput": derive_throughput(
                self.units,
                {
                    name: float(stats.get("wall_s", 0.0))  # type: ignore[arg-type]
                    for name, stats in self.phases.items()
                },
                wall,
            ),
        }
        if self.pool:
            payload["pool"] = {
                label: dict(stats) for label, stats in self.pool.items()
            }
        if self.workers:
            payload["workers"] = {
                label: dict(stats) for label, stats in self.workers.items()
            }
        return payload


def derive_throughput(
    units: Mapping[str, int],
    phase_wall: Mapping[str, float],
    total_wall_s: float,
) -> Dict[str, Optional[float]]:
    """Sustained ``<unit>_per_s`` gauges from unit counts and phase seconds.

    Pure so ``segugio profile`` / ``segugio telemetry`` can recompute the
    same numbers from a manifest alone.  Each unit is divided by the
    wall-clock of the phases that process it (:data:`UNIT_PHASES`); when
    those phases recorded no time, the total wall is the denominator, and
    a zero denominator yields ``None`` rather than a division error.
    """
    out: Dict[str, Optional[float]] = {}
    for unit, count in units.items():
        denominator = sum(
            float(phase_wall.get(name, 0.0)) for name in UNIT_PHASES.get(unit, ())
        )
        if denominator <= 0:
            denominator = float(total_wall_s)
        out[f"{unit}_per_s"] = (
            round(count / denominator, 3) if denominator > 0 else None
        )
    return out


# ---------------------------------------------------------------------- #
# ambient monitor
# ---------------------------------------------------------------------- #

_DISABLED = ResourceMonitor(enabled=False)

_active: contextvars.ContextVar[Optional[ResourceMonitor]] = (
    contextvars.ContextVar("segugio_resource_monitor", default=None)
)


def current_monitor() -> ResourceMonitor:
    """The resource monitor for the current run (disabled by default)."""
    monitor = _active.get()
    return monitor if monitor is not None else _DISABLED


@contextmanager
def use_monitor(monitor: ResourceMonitor):
    """Make *monitor* the ambient resource monitor within the block."""
    token = _active.set(monitor)
    try:
        yield monitor
    finally:
        _active.reset(token)


def count_units(unit: str, n: int) -> None:
    """Module-level convenience: report units to the ambient monitor."""
    current_monitor().count_units(unit, n)


# ---------------------------------------------------------------------- #
# declarative resource budgets
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResourceBudget:
    """One bound on a dotted path into the ``resources`` summary.

    ``max`` trips when the value exceeds it (cost ceilings:
    ``process.peak_rss_mb``, ``process.cpu_s``); ``min`` trips when the
    value falls below it (throughput floors:
    ``throughput.trace_rows_per_s``).  Exactly one of the two must be
    set.  *level* is the health status a violation contributes
    (``warn`` or ``alert``).  Missing paths are skipped — a budget file
    written for Linux must not trip on a platform without ``/proc``.
    """

    name: str
    path: str
    max: Optional[float] = None
    min: Optional[float] = None
    level: str = STATUS_WARN
    description: str = ""

    def __post_init__(self) -> None:
        if (self.max is None) == (self.min is None):
            raise ValueError(
                f"budget {self.name!r} must set exactly one of max/min"
            )
        if self.level not in (STATUS_WARN, STATUS_ALERT):
            raise ValueError(
                f"budget {self.name!r}: level must be "
                f"{STATUS_WARN!r} or {STATUS_ALERT!r}, got {self.level!r}"
            )

    def evaluate(
        self, resources: Mapping[str, object]
    ) -> Optional[Dict[str, object]]:
        """The violation dict for *resources*, or None when within budget."""
        node: object = resources
        for part in self.path.split("."):
            if not isinstance(node, Mapping) or part not in node:
                return None
            node = node[part]
        try:
            value = float(node)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None
        if self.max is not None:
            if value <= self.max:
                return None
            relation, threshold = ">", self.max
        else:
            assert self.min is not None
            if value >= self.min:
                return None
            relation, threshold = "<", self.min
        text = self.description or "resource budget exceeded"
        return {
            "rule": self.name,
            "status": self.level,
            "path": f"resources.{self.path}",
            "value": value,
            "threshold": threshold,
            "message": (
                f"{self.name}: {text} "
                f"({self.path}={value:.4g} {relation} {threshold:.4g})"
            ),
        }


def evaluate_budgets(
    resources: Mapping[str, object],
    budgets: Iterable[ResourceBudget],
) -> List[Dict[str, object]]:
    """All budget violations for one ``resources`` summary."""
    return [
        violation
        for budget in budgets
        if (violation := budget.evaluate(resources)) is not None
    ]


class ResourceBudgetError(ValueError):
    """A budgets file that cannot be parsed or validated."""


_BUDGET_KEYS = frozenset({"name", "path", "max", "min", "level", "description"})


def load_resource_budgets(path: str) -> Tuple[ResourceBudget, ...]:
    """Load declarative budgets from JSON, with located validation errors.

    Accepts a bare list of budget objects or ``{"budgets": [...]}`` —
    the same envelope convention as :func:`repro.obs.monitor.load_alert_rules`.
    """
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except OSError as error:
        raise ResourceBudgetError(
            f"{path}: cannot read resource budgets: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise ResourceBudgetError(f"{path}: invalid JSON: {error}") from error
    if isinstance(payload, Mapping):
        extra = sorted(set(payload) - {"budgets"})
        if extra or "budgets" not in payload:
            raise ResourceBudgetError(
                f"{path}: expected a list of budget objects or "
                f"{{\"budgets\": [...]}}"
            )
        payload = payload["budgets"]
    if not isinstance(payload, list):
        raise ResourceBudgetError(
            f"{path}: expected a list of budget objects, "
            f"got {type(payload).__name__}"
        )
    if not payload:
        raise ResourceBudgetError(f"{path}: no resource budgets defined")
    budgets: List[ResourceBudget] = []
    for index, spec in enumerate(payload):
        if not isinstance(spec, Mapping):
            raise ResourceBudgetError(
                f"{path}: budgets[{index}]: expected an object, "
                f"got {type(spec).__name__}"
            )
        where = f"{path}: budgets[{index}]"
        if isinstance(spec.get("name"), str):
            where = f"{where} ({spec['name']})"
        unknown = sorted(set(spec) - _BUDGET_KEYS)
        if unknown:
            raise ResourceBudgetError(f"{where}: unknown keys {unknown}")
        missing = sorted({"name", "path"} - set(spec))
        if missing:
            raise ResourceBudgetError(f"{where}: missing required keys {missing}")
        try:
            budgets.append(
                ResourceBudget(
                    name=str(spec["name"]),
                    path=str(spec["path"]),
                    max=None if spec.get("max") is None else float(spec["max"]),  # type: ignore[arg-type]
                    min=None if spec.get("min") is None else float(spec["min"]),  # type: ignore[arg-type]
                    level=str(spec.get("level", STATUS_WARN)),
                    description=str(spec.get("description", "")),
                )
            )
        except (TypeError, ValueError) as error:
            raise ResourceBudgetError(f"{where}: {error}") from error
    return tuple(budgets)

"""Worker-side telemetry context for supervised pool tasks.

The supervised executor (:mod:`repro.runtime.supervisor`) ships seed-keyed
tasks to child processes, where the parent's ambient telemetry —
contextvars living in the parent's memory — does not exist: spans opened
there land on a fresh disabled tracer and vanish.  Until now every pool
call was therefore one opaque frame in ``trace.jsonl``: the heaviest
phases of a paper-scale run (shard scan/label/prune, parallel forest fit)
were exactly the ones the profile could not see into.

This module closes the gap with an explicit context hand-off:

* the parent opens a :func:`open_box` per pool call, capturing the run
  id, current day, innermost phase, and the tracer's monotonic epoch,
  plus a private sidecar spool directory;
* each task carries a picklable :class:`TaskContext`; the worker shim
  runs the callable under :func:`execute`, which installs a full worker
  telemetry stack (tracer on the *parent's* epoch — ``perf_counter`` is
  CLOCK_MONOTONIC, shared across processes on Linux — resource monitor,
  metrics registry, event log) and wraps the call in a real
  ``segugio_worker_task`` span;
* the finished record is spilled to ``trace.worker-<pid>.jsonl`` in the
  spool directory — the whole file is rewritten to a staging path and
  atomically renamed over the old one (spill-then-finalize, the
  edgestore's write discipline), so a killed worker can never leave a
  torn line, only the records of tasks that fully finished;
* after the pool call the parent merges the sidecars back: records are
  keyed by ``(task index, ladder round)``, only the attempt that actually
  completed each task is adopted (a retried task's earlier round is
  *quarantined* and counted, like orphan runtime events), adoption walks
  tasks in ascending index order so the merged span tree is byte-stable
  across worker counts, worker clock skew is normalized by clamping
  starts into the parent's observed window, and worker runtime events are
  re-recorded into the parent log stamped with day/phase/worker.

Everything here is observation-only and self-disabling: ``open_box``
returns ``None`` unless both the ambient tracer and resource monitor are
enabled (the ``--profile`` gate), spill failures are swallowed so
telemetry can never fail a task, and the e2e bench gates that outputs
stay bit-identical with worker tracing on vs. off.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import logs as _logs
from repro.obs.events import RuntimeEventLog, current_event_log, use_event_log
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.resources import ResourceMonitor, current_monitor, use_monitor
from repro.obs.tracing import Tracer, current_tracer, use_tracer

#: schema version of one sidecar record (bump on breaking shape changes)
SIDECAR_SCHEMA_VERSION = 1

#: sidecar filename shape inside a box's spool directory
SIDECAR_PREFIX = "trace.worker-"
SIDECAR_SUFFIX = ".jsonl"

#: ladder-round marker for tasks executed in-process by the serial floor
SERIAL_ROUND = -1


@dataclass(frozen=True)
class TaskContext:
    """The telemetry hand-off shipped with one pool task (picklable).

    *round_index* is the supervisor's degradation-ladder rung that
    submitted this attempt; the merge uses ``(task_index, round_index)``
    to keep exactly the attempt that completed and quarantine the rest.
    """

    label: str
    task_index: int
    round_index: int
    epoch: float
    sidecar_dir: str
    run_id: Optional[str] = None
    day: Optional[int] = None
    phase: Optional[str] = None


# ---------------------------------------------------------------------- #
# worker side
# ---------------------------------------------------------------------- #

#: per-process spool: sidecar directory -> finalized JSON lines.  Worker
#: processes live for at most one ladder round, so this never outgrows
#: the tasks one executor handed to one pid.
_SPILLED: Dict[str, List[str]] = {}

#: per-process worker-side ResourceMonitor, keyed by pid (fork-safe).
#: Constructing a monitor opens the /proc/self/io fd and takes baseline
#: clock/cpu/io readings, and its first frame close parses
#: /proc/self/status — per-task construction was a measurable slice of
#: the e2e overhead gate on the serial floor, and every task in one
#: process would read the same numbers anyway.
_WORKER_MONITOR: Optional[Tuple[int, ResourceMonitor]] = None


def _worker_monitor() -> ResourceMonitor:
    """This process's worker-side monitor (fresh after a fork)."""
    global _WORKER_MONITOR
    pid = os.getpid()
    if _WORKER_MONITOR is None or _WORKER_MONITOR[0] != pid:
        _WORKER_MONITOR = (
            pid,
            ResourceMonitor(enabled=True, sample_interval=0.0),
        )
    return _WORKER_MONITOR[1]


def execute(
    ctx: TaskContext, fn: Callable[..., Any], args: Tuple[Any, ...]
) -> Tuple[Any, Optional[Dict[str, object]]]:
    """Run *fn(*args)* under a fresh worker telemetry stack.

    Returns ``(result, record)`` where *record* is the finished sidecar
    record for a successful call.  A raising call re-raises with no
    record — the supervisor will retry it, and only the completing
    attempt may land in the merged trace.
    """
    tracer = Tracer(enabled=True, epoch=ctx.epoch)
    monitor = _worker_monitor()
    registry = MetricsRegistry(enabled=True)
    events = RuntimeEventLog(enabled=True)
    with ExitStack() as stack:
        stack.enter_context(use_tracer(tracer))
        stack.enter_context(use_monitor(monitor))
        stack.enter_context(use_registry(registry))
        stack.enter_context(use_event_log(events))
        bound = {
            key: value
            for key, value in (("run_id", ctx.run_id), ("day", ctx.day))
            if value is not None
        }
        if bound:
            stack.enter_context(_logs.bound(**bound))
        with tracer.span(
            "segugio_worker_task", label=ctx.label, task=ctx.task_index
        ):
            result = fn(*args)
    record: Dict[str, object] = {
        "schema_version": SIDECAR_SCHEMA_VERSION,
        "label": ctx.label,
        "task": ctx.task_index,
        "round": ctx.round_index,
        "pid": os.getpid(),
        "spans": tracer.span_tree(),
    }
    if ctx.day is not None:
        record["day"] = ctx.day
    if events.records:
        record["events"] = events.to_list()
    metrics = registry.snapshot()
    if metrics:
        record["metrics"] = metrics
    return result, record


def _make_spool_dir() -> str:
    """A fresh sidecar spool directory on the cheapest filesystem around.

    Prefers ``/dev/shm`` (tmpfs): sidecars are ephemeral same-machine IPC,
    and on journaling filesystems the per-task ``os.replace`` plus the
    post-merge unlink storm serialize through the journal — measured at
    multiple milliseconds per pool call on ext3 ``/tmp`` versus tens of
    microseconds on tmpfs.  Falls back to the default temp dir when
    ``/dev/shm`` is absent or unwritable (non-Linux, restricted mounts).
    """
    if os.path.isdir("/dev/shm"):
        try:
            return tempfile.mkdtemp(prefix="segugio-sidecar-", dir="/dev/shm")
        except OSError:
            pass
    return tempfile.mkdtemp(prefix="segugio-sidecar-")


def spill(sidecar_dir: str, record: Optional[Dict[str, object]]) -> None:
    """Finalize *record* into this process's sidecar file.

    Spill-then-finalize: the process's full record list is rewritten to a
    staging file and atomically renamed over the previous version — a
    worker killed mid-spill leaves the last complete file, never a torn
    line.  No fsync: sidecars are same-machine IPC consumed by the parent
    right after the pool call, so ``os.replace`` visibility is all the
    durability they need (an OS crash discards the whole run anyway), and
    a per-task fsync is exactly the kind of cost the <3% overhead gate
    exists to keep out.  Any OS failure is swallowed: tracing must not be
    able to fail a task that already computed its result.
    """
    if record is None:
        return
    lines = _SPILLED.setdefault(sidecar_dir, [])
    lines.append(json.dumps(record, sort_keys=True, default=str))
    path = os.path.join(
        sidecar_dir, f"{SIDECAR_PREFIX}{os.getpid()}{SIDECAR_SUFFIX}"
    )
    staging = f"{path}.tmp"
    try:
        with open(staging, "w", encoding="utf-8") as stream:
            stream.write("\n".join(lines) + "\n")
        os.replace(staging, path)
    except OSError:
        pass


def read_sidecars(sidecar_dir: str) -> Tuple[List[Dict[str, object]], int]:
    """All finalized records in *sidecar_dir* plus the sidecar file count.

    Files are visited in sorted name order; unreadable files and
    malformed lines are skipped (their tasks surface as ``n_missing``
    in the merge accounting rather than as a crash).
    """
    records: List[Dict[str, object]] = []
    try:
        names = sorted(
            name
            for name in os.listdir(sidecar_dir)
            if name.startswith(SIDECAR_PREFIX) and name.endswith(SIDECAR_SUFFIX)
        )
    except OSError:
        return records, 0
    for name in names:
        try:
            with open(os.path.join(sidecar_dir, name), encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        parsed = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(parsed, dict):
                        records.append(parsed)
        except OSError:
            continue
    return records, len(names)


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #


class WorkerMergeBox:
    """Parent-side coordinator for one pool call's worker telemetry.

    Owns the sidecar spool directory, mints per-task contexts, remembers
    which ladder round completed each task, and merges the surviving
    records back into the parent's span tree and accounting.
    """

    def __init__(
        self,
        label: str,
        tracer: Tracer,
        monitor: ResourceMonitor,
        events: RuntimeEventLog,
    ) -> None:
        context = _logs.context_fields()
        self.label = label
        self.tracer = tracer
        self.monitor = monitor
        self.events = events
        self.run_id = context.get("run_id")
        self.day = context.get("day")
        self.phase = context.get("phase")
        self.sidecar_dir = _make_spool_dir()
        self._completed: Dict[int, int] = {}
        self._serial_records: Dict[int, Dict[str, object]] = {}

    def task_context(self, task_index: int, round_index: int) -> TaskContext:
        """The context to ship with one task attempt."""
        return TaskContext(
            label=self.label,
            task_index=int(task_index),
            round_index=int(round_index),
            epoch=self.tracer.epoch,
            sidecar_dir=self.sidecar_dir,
            run_id=None if self.run_id is None else str(self.run_id),
            day=None if self.day is None else int(self.day),  # type: ignore[arg-type]
            phase=None if self.phase is None else str(self.phase),
        )

    def note_completed(self, task_index: int, round_index: int) -> None:
        """Record that *task_index* finished on ladder round *round_index*."""
        self._completed[int(task_index)] = int(round_index)

    def collect_serial(
        self, task_index: int, record: Optional[Dict[str, object]]
    ) -> None:
        """Accept an in-process (serial-floor) record directly — no spill."""
        if record is None:
            return
        self._completed[int(task_index)] = SERIAL_ROUND
        self._serial_records[int(task_index)] = dict(record)

    # -------------------------------------------------------------- #
    # merge
    # -------------------------------------------------------------- #

    def merge(self) -> Dict[str, int]:
        """Adopt the surviving worker records into the parent span tree.

        Deterministic: tasks are walked in ascending index order and only
        the attempt whose round completed the task is adopted, so the
        merged tree is identical across worker counts and reruns.
        Superseded attempts (an earlier round of a retried task) are
        quarantined and counted; completed tasks with no record (killed
        worker, failed spill) count as missing.  Returns the accounting
        dict that also lands in ``resources.workers``.
        """
        records, n_files = read_sidecars(self.sidecar_dir)
        chosen: Dict[int, Dict[str, object]] = {}
        n_quarantined = 0
        for record in sorted(
            records,
            key=lambda r: (
                _as_int(r.get("task")),
                _as_int(r.get("round")),
                _as_int(r.get("pid")),
            ),
        ):
            task = _as_int(record.get("task"))
            if (
                self._completed.get(task) == _as_int(record.get("round"))
                and task not in chosen
            ):
                chosen[task] = record
            else:
                n_quarantined += 1
        for task, record in self._serial_records.items():
            chosen[task] = record
        now_rel = time.perf_counter() - self.tracer.epoch
        n_merged = 0
        n_worker_events = 0
        for task in sorted(chosen):
            record = chosen[task]
            worker = record.get("pid")
            alias = (
                "serial"
                if worker is None
                else self.monitor.worker_alias(int(worker))  # type: ignore[arg-type]
            )
            trees = [
                tree
                for tree in record.get("spans") or []
                if isinstance(tree, dict)
            ]
            for tree in trees:
                tree.setdefault("attributes", {})["worker"] = alias
                _normalize_skew(tree, now_rel)
            n_merged += self.tracer.adopt_span_trees(trees)
            for event in record.get("events") or []:
                if not isinstance(event, dict):
                    continue
                fields = {
                    key: value for key, value in event.items() if key != "kind"
                }
                fields.setdefault("worker", alias)
                if self.day is not None:
                    fields.setdefault("day", self.day)
                if self.phase is not None:
                    fields.setdefault("phase", self.phase)
                self.events.record(str(event.get("kind", "worker_event")), **fields)
                n_worker_events += 1
        n_missing = sum(
            1 for task in self._completed if task not in chosen
        )
        accounting = {
            "n_merged": n_merged,
            "n_quarantined": n_quarantined,
            "n_missing": n_missing,
            "n_sidecar_files": n_files,
            "n_worker_events": n_worker_events,
        }
        self.monitor.record_worker_merge(self.label, **accounting)
        return accounting

    def cleanup(self) -> None:
        """Drop the sidecar spool directory (idempotent).

        A flat unlink loop, not ``shutil.rmtree``: the spool is a private
        single-level directory and rmtree's fd-based safety walk costs
        several milliseconds per pool call — real money under the e2e
        overhead gate.
        """
        try:
            for name in os.listdir(self.sidecar_dir):
                try:
                    os.unlink(os.path.join(self.sidecar_dir, name))
                except OSError:
                    pass
            os.rmdir(self.sidecar_dir)
        except OSError:
            pass


def open_box(label: str) -> Optional[WorkerMergeBox]:
    """A merge box for one pool call, or ``None`` when tracing is off.

    Worker-side tracing rides the ``--profile`` gate: it activates only
    when both the ambient tracer and the ambient resource monitor are
    enabled, so the e2e bench's profile-off baseline doubles as the
    worker-tracing-off baseline for the overhead and bit-identity gates.
    """
    tracer = current_tracer()
    monitor = current_monitor()
    if not (tracer.enabled and monitor.enabled):
        return None
    return WorkerMergeBox(label, tracer, monitor, current_event_log())


def _as_int(value: object) -> int:
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return -(10**9)


def _normalize_skew(tree: Dict[str, object], now_rel: float) -> None:
    """Clamp a worker span's start into the parent's observed window.

    On one host ``perf_counter`` is shared, so this never fires in
    practice; it is the guard rail for a clock source that is not — a
    clamped root is marked ``skew_normalized`` so the timeline view can
    annotate it rather than silently drawing a span before its parent.
    """
    start = tree.get("start")
    try:
        start_f = float(start)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        start_f = 0.0
    clamped = min(max(start_f, 0.0), max(now_rel, 0.0))
    if clamped != start_f:
        tree["start"] = round(clamped, 6)
        tree.setdefault("attributes", {})["skew_normalized"] = True

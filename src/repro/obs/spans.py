"""Central registry of every ``segugio_*`` span name in the codebase.

The run manifest keys per-phase timings, resource attribution, and the
paper's §IV-G efficiency table on span names, so a name typo'd at one
call site silently forks the telemetry namespace: old dashboards stop
matching, baselines pin stale names, and manifest diffs across runs go
quiet instead of loud.  Every ``span("segugio_...")`` literal must be
declared here — the whole-program lint rule SEG104 cross-checks call
sites against this registry (an unregistered literal is an error, an
unused registry entry is a warning), replacing the earlier practice of
pinning renamed span names in the lint baseline.

Keep the set sorted and grouped by subsystem; add the new name here in
the same change that introduces the call site.
"""

from __future__ import annotations

#: every span name the tracer may emit, grouped by owning subsystem
SPAN_NAMES = frozenset(
    {
        # run loop (repro.obs.run)
        "segugio_run_day",
        # runtime: ingest, checkpointing, the supervised pool
        "segugio_ingest_load_observation",
        "segugio_checkpoint_save",
        "segugio_checkpoint_resume",
        "segugio_supervisor_serial",
        "segugio_worker_task",
        # out-of-core sharded graph build (repro.core.sharded)
        "segugio_sharded_build",
        # core tracker phases (the paper's daily loop)
        "segugio_tracker_health_check",
        "segugio_tracker_fit",
        "segugio_tracker_calibrate",
        "segugio_tracker_classify",
        "segugio_tracker_quality_check",
        "segugio_tracker_ledger_update",
        # feature measurement (paper §IV-B feature families)
        "segugio_features_f1_machine",
        "segugio_features_f2_activity",
        "segugio_features_f3_ip",
        # ML layer
        "segugio_forest_fit",
        "segugio_forest_predict",
        # decision provenance
        "segugio_decisions_emit",
        # evaluation harness
        "segugio_experiment_select_split",
        "segugio_experiment_fit",
        "segugio_experiment_classify",
    }
)

"""Pipeline-wide observability: metrics, span tracing, structured logging.

Three coordinated zero-dependency layers (stdlib only):

* :mod:`repro.obs.metrics` — a registry of labeled counters, gauges, and
  histograms with snapshot/delta export to JSON and Prometheus text format;
* :mod:`repro.obs.tracing` — nested, timed spans over the pipeline's call
  tree (absorbing the old ``utils.timing.Stopwatch`` as a shim), exported
  as a span tree and a per-run ``trace.jsonl``;
* :mod:`repro.obs.logs` — ``get_logger(component)`` emitting JSON records
  with run-id / day / phase context variables.

:mod:`repro.obs.run` bundles them into a per-run :class:`RunTelemetry`
whose output is the run manifest (:mod:`repro.obs.manifest`) rendered by
``segugio telemetry``.

All three layers are **ambient and off by default**: library code
instruments unconditionally against :func:`get_registry` /
:func:`current_tracer` / :func:`get_logger`, and pays (only) a
context-variable lookup per site until a run activates telemetry.
"""

from repro.obs.logs import StructuredLogger, bound, configure, get_logger
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    TRACE_FILENAME,
    ManifestError,
    config_hash,
    load_manifest,
    render_telemetry,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.run import RunTelemetry
from repro.obs.tracing import (
    Span,
    Stopwatch,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "ManifestError",
    "MetricsError",
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "Stopwatch",
    "StructuredLogger",
    "TRACE_FILENAME",
    "Tracer",
    "bound",
    "config_hash",
    "configure",
    "current_tracer",
    "get_logger",
    "get_registry",
    "load_manifest",
    "render_telemetry",
    "use_registry",
    "use_tracer",
    "write_manifest",
]

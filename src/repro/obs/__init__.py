"""Pipeline-wide observability: metrics, span tracing, structured logging.

Three coordinated zero-dependency layers (stdlib only):

* :mod:`repro.obs.metrics` — a registry of labeled counters, gauges, and
  histograms with snapshot/delta export to JSON and Prometheus text format;
* :mod:`repro.obs.tracing` — nested, timed spans over the pipeline's call
  tree (absorbing the old ``utils.timing.Stopwatch`` as a shim), exported
  as a span tree and a per-run ``trace.jsonl``;
* :mod:`repro.obs.logs` — ``get_logger(component)`` emitting JSON records
  with run-id / day / phase context variables.

:mod:`repro.obs.provenance` adds the *detector*-observability layer on the
same ambient pattern: a per-run :class:`DecisionLog` of schema-versioned
decision records (one per classified domain) written as ``decisions.jsonl``
and replayed by ``segugio explain``.  :mod:`repro.obs.monitor` evaluates
declarative SLO alert rules over the tracker's day-over-day drift
summaries into ``ok``/``warn``/``alert`` health verdicts.

:mod:`repro.obs.run` bundles them into a per-run :class:`RunTelemetry`
whose output is the run manifest (:mod:`repro.obs.manifest`) rendered by
``segugio telemetry``.

:mod:`repro.obs.workerctx` carries the ambient pattern across process
boundaries: the supervised executor injects a picklable
:class:`TaskContext` into every pool task, workers open real spans and
record events/metrics into per-process sidecar files, and the parent
merges the sidecars back into the main span tree after each pool call —
so a profiled multi-process run yields one unified timeline
(``segugio trace``).

All three layers are **ambient and off by default**: library code
instruments unconditionally against :func:`get_registry` /
:func:`current_tracer` / :func:`get_logger`, and pays (only) a
context-variable lookup per site until a run activates telemetry.
"""

from repro.obs.events import (
    RuntimeEventLog,
    current_event_log,
    use_event_log,
)
from repro.obs.logs import StructuredLogger, bound, configure, get_logger
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    SPAN_RENAMES_V1,
    TRACE_FILENAME,
    ManifestError,
    config_hash,
    load_manifest,
    render_telemetry,
    upgrade_manifest_v1,
    write_manifest,
)
from repro.obs.monitor import (
    DEFAULT_ALERT_RULES,
    AlertRule,
    AlertRuleError,
    evaluate_health,
    load_alert_rules,
    run_health,
    rules_from_dicts,
    worst_status,
)
from repro.obs.provenance import (
    DECISION_SCHEMA_VERSION,
    DECISIONS_FILENAME,
    DecisionLog,
    ProvenanceError,
    current_decision_log,
    decisions_for_domain,
    load_decisions,
    render_decision,
    use_decision_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.spans import SPAN_NAMES
from repro.obs.resources import (
    RESOURCES_SCHEMA_VERSION,
    ResourceBudget,
    ResourceBudgetError,
    ResourceMonitor,
    ResourceReader,
    count_units,
    current_monitor,
    derive_throughput,
    evaluate_budgets,
    load_resource_budgets,
    use_monitor,
)
from repro.obs.run import RunTelemetry
from repro.obs.tracing import (
    Span,
    Stopwatch,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.obs.workerctx import (
    SIDECAR_SCHEMA_VERSION,
    TaskContext,
    WorkerMergeBox,
    open_box,
    read_sidecars,
)

__all__ = [
    "AlertRule",
    "AlertRuleError",
    "Counter",
    "DECISIONS_FILENAME",
    "DECISION_SCHEMA_VERSION",
    "DEFAULT_ALERT_RULES",
    "DecisionLog",
    "Gauge",
    "Histogram",
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "ManifestError",
    "MetricsError",
    "MetricsRegistry",
    "ProvenanceError",
    "RESOURCES_SCHEMA_VERSION",
    "ResourceBudget",
    "ResourceBudgetError",
    "ResourceMonitor",
    "ResourceReader",
    "RunTelemetry",
    "RuntimeEventLog",
    "SIDECAR_SCHEMA_VERSION",
    "SPAN_NAMES",
    "SPAN_RENAMES_V1",
    "Span",
    "Stopwatch",
    "StructuredLogger",
    "TRACE_FILENAME",
    "TaskContext",
    "Tracer",
    "WorkerMergeBox",
    "bound",
    "config_hash",
    "configure",
    "count_units",
    "current_decision_log",
    "current_event_log",
    "current_monitor",
    "current_tracer",
    "decisions_for_domain",
    "derive_throughput",
    "evaluate_budgets",
    "evaluate_health",
    "get_logger",
    "get_registry",
    "load_alert_rules",
    "load_decisions",
    "load_manifest",
    "load_resource_budgets",
    "open_box",
    "read_sidecars",
    "render_decision",
    "render_telemetry",
    "rules_from_dicts",
    "run_health",
    "upgrade_manifest_v1",
    "use_decision_log",
    "use_event_log",
    "use_monitor",
    "use_registry",
    "use_tracer",
    "worst_status",
    "write_manifest",
]

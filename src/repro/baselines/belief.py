"""Loopy belief propagation over the machine-domain graph.

The approach of Manadhata et al. [6] and Polonium [17]: treat the bipartite
graph as a pairwise Markov random field with binary states
(benign/malware), homophilic edge potentials, and label-derived node
priors, then run loopy BP [7] and read each domain's malware marginal as
its score.

Messages are kept per directed edge as P(receiver = malware) and updated
synchronously with NumPy scatter-adds in log space, with damping — one
iteration is O(edges), no Python per-node loops, which is what makes the
§I pilot comparison runnable at graph scale (the paper notes GraphLab LBP
took tens of hours on their traces; the point of the comparison here is
accuracy *shape*: LBP has no access to the domain annotations, so its
low-FPR detection lags Segugio's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import BENIGN, MALWARE, GraphLabels


@dataclass(frozen=True)
class BeliefConfig:
    epsilon: float = 0.05
    """Homophily strength: edge potential is 0.5 +/- epsilon."""

    prior_strength: float = 0.99
    """Prior P(malware) for malware-labeled nodes (1 - this for benign)."""

    unknown_prior: float = 0.5
    max_iterations: int = 15
    damping: float = 0.3
    tolerance: float = 1e-4

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 0.5:
            raise ValueError("epsilon must be in (0, 0.5)")
        if not 0.5 < self.prior_strength < 1:
            raise ValueError("prior_strength must be in (0.5, 1)")


class LoopyBeliefPropagation:
    """Domain malware marginals via vectorized sum-product BP."""

    def __init__(self, config: Optional[BeliefConfig] = None) -> None:
        self.config = config if config is not None else BeliefConfig()
        self.n_iterations_: int = 0

    def score_domains(
        self, graph: BehaviorGraph, labels: GraphLabels
    ) -> np.ndarray:
        """P(malware) marginal for every domain id (global id space).

        Unlabeled isolated domains keep the unknown prior.
        """
        cfg = self.config
        em = graph.edge_machines
        ed = graph.edge_domains
        n_edges = em.size
        if n_edges == 0:
            return np.full(graph.n_domain_ids, cfg.unknown_prior)

        machine_prior = self._priors(labels.machine_labels)
        domain_prior = self._priors(labels.domain_labels)

        # Messages as P(receiver side = malware), one per directed edge.
        msg_m2d = np.full(n_edges, 0.5)
        msg_d2m = np.full(n_edges, 0.5)

        eps_hi = 0.5 + cfg.epsilon
        eps_lo = 0.5 - cfg.epsilon

        log_machine_prior_mal = np.log(machine_prior)
        log_machine_prior_ben = np.log1p(-machine_prior)
        log_domain_prior_mal = np.log(domain_prior)
        log_domain_prior_ben = np.log1p(-domain_prior)

        self.n_iterations_ = 0
        for _ in range(cfg.max_iterations):
            # --- domain -> machine messages ---
            # Each domain aggregates incoming machine messages (cavity: the
            # target edge's own message is divided out in log space).
            log_in_mal = np.log(np.clip(msg_m2d, 1e-12, 1.0))
            log_in_ben = np.log(np.clip(1.0 - msg_m2d, 1e-12, 1.0))
            dom_sum_mal = np.bincount(
                ed, weights=log_in_mal, minlength=graph.n_domain_ids
            )
            dom_sum_ben = np.bincount(
                ed, weights=log_in_ben, minlength=graph.n_domain_ids
            )
            cav_mal = log_domain_prior_mal[ed] + dom_sum_mal[ed] - log_in_mal
            cav_ben = log_domain_prior_ben[ed] + dom_sum_ben[ed] - log_in_ben
            new_d2m = self._propagate(cav_mal, cav_ben, eps_hi, eps_lo)
            msg_d2m = cfg.damping * msg_d2m + (1 - cfg.damping) * new_d2m

            # --- machine -> domain messages ---
            log_in_mal = np.log(np.clip(msg_d2m, 1e-12, 1.0))
            log_in_ben = np.log(np.clip(1.0 - msg_d2m, 1e-12, 1.0))
            mac_sum_mal = np.bincount(
                em, weights=log_in_mal, minlength=graph.n_machine_ids
            )
            mac_sum_ben = np.bincount(
                em, weights=log_in_ben, minlength=graph.n_machine_ids
            )
            cav_mal = log_machine_prior_mal[em] + mac_sum_mal[em] - log_in_mal
            cav_ben = log_machine_prior_ben[em] + mac_sum_ben[em] - log_in_ben
            new_m2d = self._propagate(cav_mal, cav_ben, eps_hi, eps_lo)
            delta = float(np.abs(new_m2d - msg_m2d).max())
            msg_m2d = cfg.damping * msg_m2d + (1 - cfg.damping) * new_m2d

            self.n_iterations_ += 1
            if delta < cfg.tolerance:
                break

        # Final domain beliefs.
        log_in_mal = np.log(np.clip(msg_m2d, 1e-12, 1.0))
        log_in_ben = np.log(np.clip(1.0 - msg_m2d, 1e-12, 1.0))
        belief_mal = log_domain_prior_mal + np.bincount(
            ed, weights=log_in_mal, minlength=graph.n_domain_ids
        )
        belief_ben = log_domain_prior_ben + np.bincount(
            ed, weights=log_in_ben, minlength=graph.n_domain_ids
        )
        shift = np.maximum(belief_mal, belief_ben)
        p_mal = np.exp(belief_mal - shift)
        p_ben = np.exp(belief_ben - shift)
        return p_mal / (p_mal + p_ben)

    def _priors(self, node_labels: np.ndarray) -> np.ndarray:
        cfg = self.config
        priors = np.full(node_labels.shape[0], cfg.unknown_prior)
        priors[node_labels == MALWARE] = cfg.prior_strength
        priors[node_labels == BENIGN] = 1.0 - cfg.prior_strength
        return priors

    @staticmethod
    def _propagate(
        cav_mal: np.ndarray, cav_ben: np.ndarray, eps_hi: float, eps_lo: float
    ) -> np.ndarray:
        """Sum-product over the 2x2 homophily potential, normalized."""
        shift = np.maximum(cav_mal, cav_ben)
        p_mal = np.exp(cav_mal - shift)
        p_ben = np.exp(cav_ben - shift)
        out_mal = eps_hi * p_mal + eps_lo * p_ben
        out_ben = eps_lo * p_mal + eps_hi * p_ben
        return out_mal / (out_mal + out_ben)

"""A Notos-style dynamic domain-reputation system (Antonakakis et al. [3]).

Notos assigns reputation from the *history* of a domain and of the IP space
it resolves into, without looking at which local machines query it.  This
reimplementation follows the same structure with three feature families
computed from the passive-DNS database:

* **network-based** — the diversity of the domain's historical resolutions:
  distinct IPs, /24s and /16s over the evidence window.
* **zone-based** — properties of the domain-name string itself: length,
  label count, digit fraction, character entropy, e2LD length.
* **evidence-based** — overlap of the domain's IP space with known-bad
  infrastructure: fraction of its IPs (and /24s) historically pointed to by
  blacklisted domains, co-hosted domain count, fraction of co-hosted
  domains that are blacklisted, and sandbox contact evidence.

A **reject option** mirrors the behavior the paper observed: a domain with
no passive-DNS history in the evidence window is not classified at all
(:meth:`NotosReputation.score` returns NaN for it), which is why Notos
cannot reach 100% TPs even at the highest FP rates (Fig. 12a).

The key structural difference from Segugio — no machine-behavior features,
no domain-activity recency — is exactly what the §V comparison isolates.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dns.e2ld import E2ldIndex
from repro.dns.records import prefix16, prefix24
from repro.intel.blacklist import CncBlacklist
from repro.intel.sandbox import SandboxTraceDB
from repro.intel.whitelist import DomainWhitelist
from repro.ml.forest import RandomForestClassifier
from repro.pdns.database import PassiveDNSDatabase
from repro.utils.ids import Interner

NOTOS_FEATURE_NAMES: List[str] = [
    "hist_n_ips",
    "hist_n_prefix24",
    "hist_n_prefix16",
    "hist_n_days",
    "evidence_frac_bad_ips",
    "evidence_frac_bad_prefix24",
    "evidence_cohosted_domains",
    "evidence_frac_cohosted_blacklisted",
    "evidence_sandbox_ip_contact",
    "zone_name_length",
    "zone_n_labels",
    "zone_digit_fraction",
    "zone_char_entropy",
]


@dataclass
class _EvidenceIndex:
    """Precomputed pDNS lookups for one (end_day, window)."""

    ips_by_domain: Dict[int, np.ndarray]
    days_by_domain: Dict[int, int]
    domains_by_ip: Dict[int, np.ndarray]
    bad_ips: np.ndarray
    bad_prefix24: np.ndarray
    blacklisted_ids: np.ndarray


class NotosReputation:
    """Train-once, score-anywhere domain reputation."""

    def __init__(
        self,
        pdns: PassiveDNSDatabase,
        domains: Interner,
        e2ld_index: E2ldIndex,
        sandbox: Optional[SandboxTraceDB] = None,
        window_days: int = 150,
        min_history_days: int = 4,
        n_estimators: int = 60,
        seed: int = 0,
    ) -> None:
        self.pdns = pdns
        self.domains = domains
        self.e2ld_index = e2ld_index
        self.sandbox = sandbox
        self.window_days = int(window_days)
        self.min_history_days = int(min_history_days)
        self.n_estimators = int(n_estimators)
        self.seed = int(seed)
        self.classifier_: Optional[RandomForestClassifier] = None

    # ------------------------------------------------------------------ #
    # evidence index
    # ------------------------------------------------------------------ #

    def _build_index(
        self, end_day: int, blacklist: CncBlacklist, blacklist_day: Optional[int] = None
    ) -> _EvidenceIndex:
        """pDNS evidence window ends at *end_day*; the blacklist snapshot is
        taken at *blacklist_day* (defaults to *end_day*) so that evidence
        features never see ground truth published after training."""
        start_day = max(end_day - self.window_days + 1, 0)
        days, dom, ips = self.pdns.window_records(start_day, end_day)

        snapshot_day = end_day if blacklist_day is None else blacklist_day
        blacklisted_ids = np.asarray(
            sorted(
                did
                for name in blacklist.domains(as_of_day=snapshot_day)
                if (did := self.domains.lookup(name)) is not None
            ),
            dtype=np.int64,
        )

        order = np.argsort(dom, kind="stable")
        dom_sorted = dom[order]
        ips_sorted = ips[order]
        days_sorted = days[order]
        ips_by_domain: Dict[int, np.ndarray] = {}
        days_by_domain: Dict[int, int] = {}
        boundaries = np.flatnonzero(np.diff(dom_sorted)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [dom_sorted.size]])
        for lo, hi in zip(starts, ends):
            if lo == hi:
                continue
            did = int(dom_sorted[lo])
            ips_by_domain[did] = np.unique(ips_sorted[lo:hi])
            days_by_domain[did] = int(np.unique(days_sorted[lo:hi]).size)

        order_ip = np.argsort(ips, kind="stable")
        ip_sorted = ips[order_ip]
        dom_by_ip_sorted = dom[order_ip]
        domains_by_ip: Dict[int, np.ndarray] = {}
        boundaries = np.flatnonzero(np.diff(ip_sorted.astype(np.int64))) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [ip_sorted.size]])
        for lo, hi in zip(starts, ends):
            if lo == hi:
                continue
            domains_by_ip[int(ip_sorted[lo])] = np.unique(dom_by_ip_sorted[lo:hi])

        in_blacklist = np.isin(dom, blacklisted_ids)
        bad_ips = np.unique(ips[in_blacklist])
        bad_prefix24 = np.unique(prefix24(bad_ips))
        return _EvidenceIndex(
            ips_by_domain=ips_by_domain,
            days_by_domain=days_by_domain,
            domains_by_ip=domains_by_ip,
            bad_ips=bad_ips,
            bad_prefix24=bad_prefix24,
            blacklisted_ids=blacklisted_ids,
        )

    # ------------------------------------------------------------------ #
    # features
    # ------------------------------------------------------------------ #

    def _zone_features(self, name: str) -> Tuple[float, float, float, float]:
        labels = name.split(".")
        digits = sum(ch.isdigit() for ch in name)
        counts = Counter(name)
        total = len(name)
        entropy = -sum(
            (c / total) * math.log2(c / total) for c in counts.values()
        )
        return float(len(name)), float(len(labels)), digits / total, entropy

    def _features_for(
        self, domain_id: int, index: _EvidenceIndex
    ) -> Optional[np.ndarray]:
        """One feature row, or None when the reject option triggers."""
        ips = index.ips_by_domain.get(int(domain_id))
        if ips is None or ips.size == 0:
            return None  # reject: no pDNS history in the window
        if index.days_by_domain.get(int(domain_id), 0) < self.min_history_days:
            return None  # reject: not enough historic evidence to judge
        prefixes24 = np.unique(prefix24(ips))
        prefixes16 = np.unique(prefix16(ips))

        bad_ip_hits = np.isin(ips, index.bad_ips).sum()
        bad_p24_hits = np.isin(prefixes24, index.bad_prefix24).sum()

        cohosted: set = set()
        for ip in ips:
            others = index.domains_by_ip.get(int(ip))
            if others is not None:
                cohosted.update(int(d) for d in others)
        cohosted.discard(int(domain_id))
        n_cohosted = len(cohosted)
        if n_cohosted:
            cohosted_arr = np.fromiter(cohosted, dtype=np.int64)
            frac_cohosted_bad = float(
                np.isin(cohosted_arr, index.blacklisted_ids).mean()
            )
        else:
            frac_cohosted_bad = 0.0

        sandbox_contact = 0.0
        if self.sandbox is not None:
            sandbox_contact = float(
                any(self.sandbox.prefix24_contacted_by_malware(int(ip)) for ip in ips)
            )

        name = self.domains.name(int(domain_id))
        length, n_labels, digit_frac, entropy = self._zone_features(name)

        return np.asarray(
            [
                float(ips.size),
                float(prefixes24.size),
                float(prefixes16.size),
                float(index.days_by_domain.get(int(domain_id), 0)),
                bad_ip_hits / ips.size,
                bad_p24_hits / prefixes24.size,
                float(n_cohosted),
                frac_cohosted_bad,
                sandbox_contact,
                length,
                n_labels,
                digit_frac,
                entropy,
            ],
            dtype=np.float64,
        )

    def feature_matrix(
        self,
        domain_ids: Sequence[int],
        end_day: int,
        blacklist: CncBlacklist,
        blacklist_day: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rows plus a boolean 'classified' mask (False = rejected)."""
        index = self._build_index(end_day, blacklist, blacklist_day)
        rows = np.zeros((len(domain_ids), len(NOTOS_FEATURE_NAMES)))
        ok = np.zeros(len(domain_ids), dtype=bool)
        for i, domain_id in enumerate(domain_ids):
            row = self._features_for(int(domain_id), index)
            if row is not None:
                rows[i] = row
                ok[i] = True
        return rows, ok

    # ------------------------------------------------------------------ #
    # train / score
    # ------------------------------------------------------------------ #

    def fit(
        self,
        train_day: int,
        blacklist: CncBlacklist,
        whitelist: DomainWhitelist,
        max_benign: Optional[int] = None,
    ) -> "NotosReputation":
        """Train on the blacklist/whitelist as known at *train_day*.

        The training whitelist is typically the top-100K list (paper §V);
        benign training rows come from whitelisted e2LDs with pDNS history.
        """
        bad_names = sorted(blacklist.domains(as_of_day=train_day))
        bad_ids = [
            did for name in bad_names
            if (did := self.domains.lookup(name)) is not None
        ]
        benign_ids = [
            did
            for did in range(len(self.domains))
            if whitelist.is_whitelisted(self.domains.name(did))
        ]
        if max_benign is not None and len(benign_ids) > max_benign:
            rng = np.random.default_rng(self.seed)
            benign_ids = sorted(
                rng.choice(np.asarray(benign_ids), size=max_benign, replace=False)
            )

        ids = list(bad_ids) + list(benign_ids)
        y = np.concatenate(
            [np.ones(len(bad_ids), dtype=np.int64), np.zeros(len(benign_ids), dtype=np.int64)]
        )
        X, ok = self.feature_matrix(ids, train_day, blacklist)
        X, y = X[ok], y[ok]
        if np.unique(y).size < 2:
            raise ValueError("Notos training needs history for both classes")
        self.classifier_ = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=12,
            class_weight="balanced",
            random_state=self.seed,
        )
        self.classifier_.fit(X, y)
        self._train_blacklist = blacklist
        self._train_day = train_day
        return self

    def score(
        self,
        domain_ids: Sequence[int],
        end_day: int,
        blacklist: Optional[CncBlacklist] = None,
    ) -> np.ndarray:
        """Reputation scores in [0, 1]; NaN where the reject option fires.

        The pDNS network history extends to *end_day* (the scoring day), but
        the blacklist evidence is frozen at the training-day snapshot, so no
        ground truth published after training leaks into the features.
        """
        if self.classifier_ is None:
            raise RuntimeError("NotosReputation must be fitted first")
        evidence = blacklist if blacklist is not None else self._train_blacklist
        X, ok = self.feature_matrix(
            domain_ids, end_day, evidence, blacklist_day=self._train_day
        )
        scores = np.full(len(domain_ids), np.nan)
        if ok.any():
            scores[ok] = self.classifier_.predict_proba(X[ok])
        return scores

"""An Exposure-style malicious-domain detector (Bilge et al. [4]).

Exposure detects malicious domains from passive-DNS *time-series* and
answer patterns: short-lived domains, bursty daily query behavior, low
IP/registrant stability, and name shape.  Like Notos it never looks at
which local machines query a domain — the structural gap Segugio's §I
calls out for both systems ("they do not leverage the query behavior of
the machines 'below' a local DNS server").

Feature groups (adapted to the substrates available here; the original's
TTL-based group has no counterpart because the trace substrate models
per-day resolution sets, not record TTLs):

* **time-based** — days active in the recency window, consecutive active
  days, age since first pDNS appearance, activity span, fill ratio
  (active days / span).
* **answer-based** — distinct IPs in the pDNS window, distinct /24s,
  IP churn (IPs per active day), co-hosted domain count.
* **name-based** — length, label count, digit fraction, character entropy.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dns.activity import ActivityIndex
from repro.dns.records import prefix24
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.ml.forest import RandomForestClassifier
from repro.pdns.database import PassiveDNSDatabase
from repro.utils.ids import Interner

EXPOSURE_FEATURE_NAMES: List[str] = [
    "time_days_active",
    "time_consecutive_days",
    "time_age_days",
    "time_span_days",
    "time_fill_ratio",
    "answer_n_ips",
    "answer_n_prefix24",
    "answer_ip_churn",
    "answer_cohosted",
    "name_length",
    "name_n_labels",
    "name_digit_fraction",
    "name_entropy",
]


class ExposureDetector:
    """Train-once detector over pDNS time-series + name features."""

    def __init__(
        self,
        pdns: PassiveDNSDatabase,
        activity: ActivityIndex,
        domains: Interner,
        window_days: int = 150,
        recency_window: int = 14,
        n_estimators: int = 60,
        seed: int = 0,
    ) -> None:
        self.pdns = pdns
        self.activity = activity
        self.domains = domains
        self.window_days = int(window_days)
        self.recency_window = int(recency_window)
        self.n_estimators = int(n_estimators)
        self.seed = int(seed)
        self.classifier_: Optional[RandomForestClassifier] = None

    # ------------------------------------------------------------------ #
    # features
    # ------------------------------------------------------------------ #

    def _window_index(self, end_day: int) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """domain id -> (active pDNS days, unique IPs) within the window."""
        start = max(end_day - self.window_days + 1, 0)
        days, dom, ips = self.pdns.window_records(start, end_day)
        order = np.argsort(dom, kind="stable")
        dom_sorted, days_sorted, ips_sorted = dom[order], days[order], ips[order]
        index: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        boundaries = np.flatnonzero(np.diff(dom_sorted)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [dom_sorted.size]])
        for lo, hi in zip(starts, ends):
            if lo == hi:
                continue
            did = int(dom_sorted[lo])
            index[did] = (
                np.unique(days_sorted[lo:hi]),
                np.unique(ips_sorted[lo:hi]),
            )
        # Shared-hosting density: count domains per IP once, globally.
        self._domains_per_ip: Dict[int, int] = {}
        pairs = np.unique(
            np.stack([ips.astype(np.int64), dom.astype(np.int64)], axis=1), axis=0
        )
        if pairs.size:
            unique_ips, counts = np.unique(pairs[:, 0], return_counts=True)
            self._domains_per_ip = dict(
                zip(unique_ips.tolist(), counts.tolist())
            )
        return index

    def _name_features(self, name: str) -> Tuple[float, float, float, float]:
        labels = name.split(".")
        digits = sum(ch.isdigit() for ch in name)
        counts = Counter(name)
        total = len(name)
        entropy = -sum((c / total) * math.log2(c / total) for c in counts.values())
        return float(len(name)), float(len(labels)), digits / total, entropy

    def feature_matrix(
        self, domain_ids: Sequence[int], end_day: int
    ) -> np.ndarray:
        index = self._window_index(end_day)
        X = np.zeros((len(domain_ids), len(EXPOSURE_FEATURE_NAMES)))
        for row, domain_id in enumerate(domain_ids):
            did = int(domain_id)
            days_seen, ips = index.get(
                did, (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32))
            )
            days_active = self.activity.days_active(
                did, end_day, self.recency_window
            )
            consecutive = self.activity.consecutive_days(
                did, end_day, self.recency_window
            )
            if days_seen.size:
                age = float(end_day - int(days_seen.min()))
                span = float(days_seen.max() - days_seen.min() + 1)
                fill = days_seen.size / span
                churn = ips.size / days_seen.size
            else:
                age = span = fill = churn = 0.0
            cohosted = float(
                sum(self._domains_per_ip.get(int(ip), 1) - 1 for ip in ips)
            )
            length, n_labels, digit_frac, entropy = self._name_features(
                self.domains.name(did)
            )
            X[row] = [
                float(days_active),
                float(consecutive),
                age,
                span,
                fill,
                float(ips.size),
                float(np.unique(prefix24(ips)).size) if ips.size else 0.0,
                churn,
                cohosted,
                length,
                n_labels,
                digit_frac,
                entropy,
            ]
        return X

    # ------------------------------------------------------------------ #
    # train / score
    # ------------------------------------------------------------------ #

    def fit(
        self,
        train_day: int,
        blacklist: CncBlacklist,
        whitelist: DomainWhitelist,
        max_benign: Optional[int] = None,
    ) -> "ExposureDetector":
        bad_ids = [
            did
            for name in sorted(blacklist.domains(as_of_day=train_day))
            if (did := self.domains.lookup(name)) is not None
        ]
        benign_ids = [
            did
            for did in range(len(self.domains))
            if whitelist.is_whitelisted(self.domains.name(did))
        ]
        if max_benign is not None and len(benign_ids) > max_benign:
            rng = np.random.default_rng(self.seed)
            benign_ids = sorted(
                rng.choice(np.asarray(benign_ids), size=max_benign, replace=False)
            )
        if not bad_ids or not benign_ids:
            raise ValueError("Exposure training needs both classes")
        ids = list(bad_ids) + list(benign_ids)
        y = np.concatenate(
            [
                np.ones(len(bad_ids), dtype=np.int64),
                np.zeros(len(benign_ids), dtype=np.int64),
            ]
        )
        X = self.feature_matrix(ids, train_day)
        self.classifier_ = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=12,
            class_weight="balanced",
            random_state=self.seed,
        )
        self.classifier_.fit(X, y)
        return self

    def score(self, domain_ids: Sequence[int], end_day: int) -> np.ndarray:
        if self.classifier_ is None:
            raise RuntimeError("ExposureDetector must be fitted first")
        X = self.feature_matrix(domain_ids, end_day)
        return self.classifier_.predict_proba(X)

"""Comparison systems reimplemented for the paper's head-to-heads.

* :mod:`repro.baselines.notos` — a Notos-style dynamic domain-reputation
  system [3]: network/zone/evidence features from passive DNS, a trained
  classifier, and the reject option the paper's §V observes ("the version
  of Notos given to us employed a 'reject option'...").
* :mod:`repro.baselines.belief` — loopy belief propagation over the
  machine-domain graph (the approach of Manadhata et al. [6] / Polonium
  [17]), vectorized message passing in NumPy.
* :mod:`repro.baselines.cooccurrence` — the Sato et al. [21] co-occurrence
  score (how often a candidate is queried together with known C&C domains).
* :mod:`repro.baselines.exposure` — an Exposure-style detector (Bilge et
  al. [4]): pDNS time-series and answer-pattern features, also
  machine-blind.
"""

from repro.baselines.belief import LoopyBeliefPropagation
from repro.baselines.cooccurrence import CoOccurrenceScorer
from repro.baselines.exposure import ExposureDetector
from repro.baselines.notos import NotosReputation

__all__ = [
    "CoOccurrenceScorer",
    "ExposureDetector",
    "LoopyBeliefPropagation",
    "NotosReputation",
]

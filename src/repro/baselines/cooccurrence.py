"""Co-occurrence scoring of unknown domains (Sato et al. [21]).

Scores a candidate domain by how strongly it co-occurs with *known*
malicious domains in the machines' query sets: the fraction of the
candidate's querying machines that also query at least one blacklisted
domain, optionally weighted by how many blacklisted domains each such
machine queries.

This is essentially Segugio's F1 signal alone — no domain-activity and no
IP-abuse features and no learned combination — which is why (as §VII notes
of [21]) it suffers high FPs at low TP rates and cannot rank domains whose
querier overlap with known infections is thin.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import GraphLabels


class CoOccurrenceScorer:
    """Machine-overlap co-occurrence score in [0, 1]."""

    def __init__(self, weighted: bool = True) -> None:
        self.weighted = weighted

    def score_domains(
        self, graph: BehaviorGraph, labels: GraphLabels
    ) -> np.ndarray:
        """Score for every domain id in the global id space.

        With ``weighted=True`` each co-occurring machine contributes
        ``1 - 2^(-k)`` where ``k`` is the number of blacklisted domains it
        queries (more corroboration, more weight); with ``False`` it
        contributes 1 if ``k >= 1``.
        """
        malware_degree = labels.machine_malware_degree
        if self.weighted:
            contribution = 1.0 - np.power(
                2.0, -malware_degree.astype(np.float64)
            )
        else:
            contribution = (malware_degree >= 1).astype(np.float64)

        ed = graph.edge_domains
        em = graph.edge_machines
        total = np.bincount(ed, minlength=graph.n_domain_ids).astype(np.float64)
        hits = np.bincount(
            ed, weights=contribution[em], minlength=graph.n_domain_ids
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(total > 0, hits / total, 0.0)
        # A known-malware domain trivially co-occurs with itself; callers
        # score *unknown* domains, but keep the array total for debugging.
        return scores

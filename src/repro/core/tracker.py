"""Multi-day deployment: track malware-control domains as they appear.

The paper's deployment mode (§IV-F) retrains Segugio on each day's traffic,
sets the detection threshold from a target false-positive rate on the
training-day benign scores, and flags the day's unknown domains.
:class:`DomainTracker` runs that loop statefully across days:

* per day it reports the *new* detections (first sighting) and the
  machines implicated,
* it maintains a ledger of every tracked domain (first/last detection day,
  sighting count, best score),
* :meth:`DomainTracker.confirmations` checks the ledger against a
  blacklist feed — how many tracked domains the feed later confirmed, and
  with what lead time (the Fig. 11 measurement, as an operational API).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import FEATURE_GROUPS, FEATURE_NAMES
from repro.core.pipeline import (
    DetectionReport,
    ObservationContext,
    Segugio,
    SegugioConfig,
)
from repro.intel.blacklist import CncBlacklist
from repro.ml.drift import feature_drift, ks_statistic, population_stability_index
from repro.ml.metrics import threshold_for_fpr
from repro.obs.events import current_event_log
from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.monitor import AlertRule, STATUS_OK, evaluate_health
from repro.obs.provenance import current_decision_log
from repro.obs.tracing import current_tracer

_log = get_logger("tracker")

#: pruning-rule volume keys compared day over day in the drift summary
_PRUNE_VOLUME_KEYS = {
    "r1": "removed_r1_machines",
    "r2": "removed_r2_machines",
    "r3": "removed_r3_domains",
    "r4": "removed_r4_domains",
}


@dataclass
class TrackedDomain:
    """Ledger entry for one detected domain."""

    name: str
    first_detected_day: int
    last_detected_day: int
    sightings: int = 1
    best_score: float = 0.0

    def update(self, day: int, score: float) -> None:
        self.last_detected_day = max(self.last_detected_day, day)
        self.sightings += 1
        self.best_score = max(self.best_score, score)


@dataclass
class DayReport:
    """What one tracked day produced."""

    day: int
    threshold: float
    n_scored: int
    new_detections: List[TrackedDomain] = field(default_factory=list)
    repeat_detections: List[str] = field(default_factory=list)
    implicated_machines: List[str] = field(default_factory=list)
    provenance: List[str] = field(default_factory=list)
    """Health warnings and feature-group degradations in effect while this
    day was scored (``pdns_empty_window:warning``, ...); empty for a
    healthy day."""

    drift: Optional[Dict[str, object]] = None
    """Day-over-day quality summary vs the previous processed day (feature
    and score PSI/KS, pruning-volume deltas, blacklist churn) — None on the
    first day of a run, which has no reference."""

    health: Dict[str, object] = field(
        default_factory=lambda: {"status": STATUS_OK, "reasons": []}
    )
    """SLO verdict for the day (:func:`repro.obs.monitor.evaluate_health`
    over ``drift`` + degradations): ``ok``, ``warn``, or ``alert`` with the
    tripped rules as reasons."""

    runtime_events: List[Dict[str, object]] = field(default_factory=list)
    """Execution-layer degradation events recorded while this day ran
    (worker lost, task hang, pool shrunk, serial fallback, retries) — the
    supervisor's provenance that results are correct but were computed the
    hard way.  Empty on a fault-free day."""

    def summary(self) -> str:
        degraded = (
            f" [degraded: {', '.join(self.provenance)}]"
            if self.provenance
            else ""
        )
        status = str(self.health.get("status", STATUS_OK))
        unhealthy = f" [health: {status}]" if status != STATUS_OK else ""
        supervised = (
            f" [supervisor: {len(self.runtime_events)} degradation events]"
            if self.runtime_events
            else ""
        )
        return (
            f"day {self.day}: scored {self.n_scored} unknown domains, "
            f"{len(self.new_detections)} new + "
            f"{len(self.repeat_detections)} repeat detections, "
            f"{len(self.implicated_machines)} machines implicated"
            f"{degraded}{unhealthy}{supervised}"
        )


@dataclass
class Confirmation:
    """A tracked domain later confirmed by a blacklist feed."""

    name: str
    detected_day: int
    blacklisted_day: int

    @property
    def lead_days(self) -> int:
        return self.blacklisted_day - self.detected_day


class DomainTracker:
    """Stateful day-by-day malware-control domain tracking."""

    def __init__(
        self,
        config: Optional[SegugioConfig] = None,
        fp_target: float = 0.001,
        telemetry=None,
        alert_rules: Optional[Sequence[AlertRule]] = None,
    ) -> None:
        if not 0 < fp_target < 1:
            raise ValueError("fp_target must be in (0, 1)")
        self.config = config if config is not None else SegugioConfig()
        self.fp_target = fp_target
        self.alert_rules: Optional[Tuple[AlertRule, ...]] = (
            tuple(alert_rules) if alert_rules is not None else None
        )
        """Deployment-tuned SLO rules for the per-day health verdict; None
        uses :data:`repro.obs.monitor.DEFAULT_ALERT_RULES` (see
        ``--alert-rules``)."""
        self.tracked: Dict[str, TrackedDomain] = {}
        self.days_processed: List[int] = []
        self.day_thresholds: Dict[int, float] = {}
        self._drift_ref: Optional[Dict[str, object]] = None
        """Previous processed day's observables (feature matrix, scores,
        blacklist snapshot, pruning volumes) — the reference the next day's
        drift summary is computed against.  Deliberately *not* part of
        :meth:`state_dict` (it holds full feature matrices and would bloat
        the checksummed payload); the checkpoint layer persists it in a
        ``.drift.npz`` sidecar instead, so a resumed run keeps its drift
        monitor armed (see :func:`repro.runtime.checkpoint.save_drift_sidecar`)."""
        self.telemetry = telemetry
        """Optional :class:`repro.obs.run.RunTelemetry`: when set, every
        :meth:`process_day` records spans, metric deltas, and a day record
        into it, ready to be written as a run manifest."""

    # ------------------------------------------------------------------ #

    def process_day(self, context: ObservationContext) -> DayReport:
        """Train on *context*, detect, and fold results into the ledger.

        Pre-flight health warnings (stale blacklist, collector gaps,
        degenerate graph) and feature-group degradations are recorded in
        the returned report's ``provenance`` — the day still runs, but its
        detections carry the record of what was known-degraded at the time.
        """
        if self.telemetry is None:
            return self._process_day(context)
        with self.telemetry.activate():
            with self.telemetry.day_scope(context.day) as record:
                day_report = self._process_day(context)
                record.update(
                    threshold=day_report.threshold,
                    n_scored=day_report.n_scored,
                    n_new_detections=len(day_report.new_detections),
                    n_repeat_detections=len(day_report.repeat_detections),
                    n_implicated_machines=len(day_report.implicated_machines),
                    provenance=list(day_report.provenance),
                    drift=day_report.drift,
                    health=dict(day_report.health),
                )
        return day_report

    def _process_day(self, context: ObservationContext) -> DayReport:
        if self.days_processed and context.day <= self.days_processed[-1]:
            raise ValueError(
                f"days must be processed in order; got {context.day} after "
                f"{self.days_processed[-1]}"
            )
        from repro.runtime.health import check_context

        events_log = current_event_log()
        events_mark = events_log.mark()
        tracer = current_tracer()
        with tracer.span("segugio_tracker_health_check", day=context.day):
            health = check_context(
                context,
                activity_window=self.config.activity_window,
                pdns_window=self.config.pdns_window_days,
            )
        model = Segugio(self.config)
        # n_trace_rows sizes the day's input on the span so the resource
        # profile (``segugio profile``) can relate phase cost to volume.
        with tracer.span(
            "segugio_tracker_fit",
            day=context.day,
            n_trace_rows=int(context.trace.n_edges),
        ):
            model.fit(context)

        with tracer.span("segugio_tracker_calibrate"):
            training = model.training_set_
            benign_scores = model.classifier_.predict_proba(
                training.X[training.y == 0]
            )
            threshold = threshold_for_fpr(benign_scores, self.fp_target)

        with tracer.span("segugio_tracker_classify", day=context.day):
            report = model.classify(context)
        current_decision_log().finalize_day(context.day, threshold)
        detections = report.detections(threshold)

        provenance = sorted(set(health.provenance()) | set(report.provenance))
        runtime_events = events_log.since(events_mark)
        with tracer.span("segugio_tracker_quality_check", day=context.day):
            drift = self._check_quality(context, model, report)
            summary = {
                "drift": drift if drift is not None else {},
                "n_degradations": len(provenance),
                "n_supervisor_degradations": len(runtime_events),
            }
            day_health = (
                evaluate_health(summary)
                if self.alert_rules is None
                else evaluate_health(summary, rules=self.alert_rules)
            )
        day_report = DayReport(
            day=context.day,
            threshold=threshold,
            n_scored=len(report),
            implicated_machines=report.infected_machines(threshold),
            provenance=provenance,
            drift=drift,
            health=day_health,
            runtime_events=runtime_events,
        )
        with tracer.span("segugio_tracker_ledger_update", n_detections=len(detections)):
            for name, score in detections:
                entry = self.tracked.get(name)
                if entry is None:
                    entry = TrackedDomain(
                        name=name,
                        first_detected_day=context.day,
                        last_detected_day=context.day,
                        best_score=score,
                    )
                    self.tracked[name] = entry
                    day_report.new_detections.append(entry)
                else:
                    entry.update(context.day, score)
                    day_report.repeat_detections.append(name)
        self.days_processed.append(context.day)
        self.day_thresholds[context.day] = threshold

        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "segugio_tracker_days_total", "days processed by the tracker"
            ).inc()
            found = registry.counter(
                "segugio_tracker_detections_total",
                "domains detected, by first-sighting status",
                labels=("kind",),
            )
            if day_report.new_detections:
                found.inc(len(day_report.new_detections), kind="new")
            if day_report.repeat_detections:
                found.inc(len(day_report.repeat_detections), kind="repeat")
            registry.gauge(
                "segugio_tracker_threshold",
                "per-day detection threshold calibrated to the FP target",
            ).set(threshold)
            registry.gauge(
                "segugio_tracker_ledger_size", "domains in the tracked ledger"
            ).set(len(self.tracked))
            if drift is not None and "score" in drift:
                registry.gauge(
                    "segugio_drift_score_psi",
                    "PSI of the malware-score distribution vs the previous day",
                ).set(float(drift["score"]["psi"]))  # type: ignore[index]
            registry.gauge(
                "segugio_health_rank",
                "day health as a rank (0 ok, 1 warn, 2 alert)",
            ).set({"ok": 0, "warn": 1, "alert": 2}.get(str(day_health["status"]), 0))
        _log.info(
            "day_processed",
            day=context.day,
            threshold=round(threshold, 6),
            n_scored=day_report.n_scored,
            n_new=len(day_report.new_detections),
            n_repeat=len(day_report.repeat_detections),
            n_machines=len(day_report.implicated_machines),
            provenance=provenance,
            health=str(day_health["status"]),
        )
        return day_report

    # ------------------------------------------------------------------ #
    # day-over-day quality monitoring
    # ------------------------------------------------------------------ #

    def _check_quality(
        self,
        context: ObservationContext,
        model: Segugio,
        report: DetectionReport,
    ) -> Optional[Dict[str, object]]:
        """Drift summary for this day vs the previous processed day.

        Compares what the detector *saw* (feature distributions, pruning
        volumes, blacklist ground truth) and what it *produced* (the score
        distribution) against yesterday's snapshot, using the statistics in
        :mod:`repro.ml.drift`.  Returns None on the first day of a run, or
        on the first day after a resume whose checkpoint had no readable
        drift sidecar.  Always rotates the reference snapshot forward as a
        side effect.
        """
        prune_stats = (
            dict(model.last_prune_.stats) if model.last_prune_ is not None else {}
        )
        snapshot: Dict[str, object] = {
            "day": context.day,
            "features": report.features,
            "scores": np.asarray(report.scores, dtype=np.float64),
            "blacklist": frozenset(context.blacklist.domains(as_of_day=context.day)),
            "prune_stats": prune_stats,
            "n_scored": len(report),
        }
        reference, self._drift_ref = self._drift_ref, snapshot
        if reference is None:
            return None

        drift: Dict[str, object] = {"reference_day": int(reference["day"])}

        ref_X = reference["features"]
        cur_X = report.features
        if (
            isinstance(ref_X, np.ndarray)
            and isinstance(cur_X, np.ndarray)
            and ref_X.shape[0] > 0
            and cur_X.shape[0] > 0
        ):
            per_feature = feature_drift(ref_X, cur_X, FEATURE_NAMES)
            drift["features"] = per_feature
            worst = max(per_feature, key=lambda name: per_feature[name]["psi"])
            drift["features_max"] = {"feature": worst, **per_feature[worst]}
            drift["feature_groups"] = {
                group: {
                    "psi": max(
                        per_feature[FEATURE_NAMES[c]]["psi"] for c in columns
                    )
                }
                for group, columns in FEATURE_GROUPS.items()
            }

        ref_scores = reference["scores"]
        if ref_scores.size > 0 and report.scores.size > 0:  # type: ignore[union-attr]
            drift["score"] = {
                "psi": population_stability_index(ref_scores, report.scores),
                "ks": ks_statistic(ref_scores, report.scores),
            }

        ref_prune = reference["prune_stats"]
        pruning: Dict[str, object] = {}
        for rule, key in _PRUNE_VOLUME_KEYS.items():
            previous = float(ref_prune.get(key, 0.0))  # type: ignore[union-attr]
            current = float(prune_stats.get(key, 0.0))
            pruning[rule] = {
                "previous": previous,
                "current": current,
                "delta_pct": 100.0 * abs(current - previous) / max(previous, 1.0),
            }
        drift["pruning"] = pruning
        worst_rule = max(
            pruning, key=lambda rule: pruning[rule]["delta_pct"]  # type: ignore[index]
        )
        drift["pruning_max"] = {"rule": worst_rule, **pruning[worst_rule]}  # type: ignore[dict-item]

        ref_black = reference["blacklist"]
        cur_black = snapshot["blacklist"]
        n_added = len(cur_black - ref_black)  # type: ignore[operator]
        n_removed = len(ref_black - cur_black)  # type: ignore[operator]
        drift["labels"] = {
            "n_added": n_added,
            "n_removed": n_removed,
            "churn_pct": 100.0 * (n_added + n_removed) / max(len(ref_black), 1),  # type: ignore[arg-type]
        }

        previous_scored = int(reference["n_scored"])  # type: ignore[arg-type]
        current_scored = len(report)
        drift["volume"] = {
            "previous_scored": previous_scored,
            "current_scored": current_scored,
            "delta_pct_abs": 100.0
            * abs(current_scored - previous_scored)
            / max(previous_scored, 1),
        }
        return drift

    # ------------------------------------------------------------------ #

    def confirmations(
        self, blacklist: CncBlacklist, horizon: Optional[int] = None
    ) -> List[Confirmation]:
        """Tracked domains the feed confirmed *after* we detected them.

        ``horizon`` caps the considered lead time in days (Fig. 11 uses 35).
        """
        confirmed: List[Confirmation] = []
        for entry in self.tracked.values():
            added = blacklist.added_day(entry.name)
            if added is None or added <= entry.first_detected_day:
                continue
            lead = added - entry.first_detected_day
            if horizon is not None and lead > horizon:
                continue
            confirmed.append(
                Confirmation(
                    name=entry.name,
                    detected_day=entry.first_detected_day,
                    blacklisted_day=added,
                )
            )
        return sorted(confirmed, key=lambda c: (c.detected_day, c.name))

    # ------------------------------------------------------------------ #
    # checkpoint / resume (see repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the tracker's mutable state.

        Captures everything :meth:`process_day` mutates — the ledger, the
        processed-day cursor, and per-day thresholds — so that
        ``from_state(state_dict())`` continues a run to a bit-identical
        ledger.  The (immutable) config and fp_target are serialized by the
        checkpoint layer alongside this state.  The drift reference
        (``_drift_ref``) is deliberately excluded: it holds full feature
        matrices, and the ledger stays bit-identical without it.  It is
        persisted separately in a best-effort ``.drift.npz`` sidecar
        (:mod:`repro.runtime.checkpoint`) so resumed runs keep their drift
        monitor armed; a missing or corrupt sidecar only costs the first
        post-resume drift summary, never the ledger.
        """
        return {
            "fp_target": self.fp_target,
            "days_processed": list(self.days_processed),
            "day_thresholds": {
                str(day): threshold
                for day, threshold in sorted(self.day_thresholds.items())
            },
            "tracked": [
                {
                    "name": entry.name,
                    "first_detected_day": entry.first_detected_day,
                    "last_detected_day": entry.last_detected_day,
                    "sightings": entry.sightings,
                    "best_score": entry.best_score,
                }
                for entry in sorted(
                    self.tracked.values(), key=lambda e: e.name
                )
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        config: Optional[SegugioConfig] = None,
    ) -> "DomainTracker":
        """Rebuild a tracker from :meth:`state_dict` output."""
        tracker = cls(config=config, fp_target=float(state["fp_target"]))
        tracker.days_processed = [int(d) for d in state["days_processed"]]
        tracker.day_thresholds = {
            int(day): float(threshold)
            for day, threshold in state["day_thresholds"].items()
        }
        for row in state["tracked"]:
            entry = TrackedDomain(
                name=str(row["name"]),
                first_detected_day=int(row["first_detected_day"]),
                last_detected_day=int(row["last_detected_day"]),
                sightings=int(row["sightings"]),
                best_score=float(row["best_score"]),
            )
            tracker.tracked[entry.name] = entry
        return tracker

    def drift_reference(self) -> Optional[Dict[str, object]]:
        """The previous day's drift-monitor reference (sidecar payload)."""
        return self._drift_ref

    def restore_drift_reference(
        self, reference: Optional[Dict[str, object]]
    ) -> None:
        """Re-arm the day-over-day drift monitor (checkpoint-resume path)."""
        self._drift_ref = reference

    def save_checkpoint(self, path: str) -> None:
        """Write a checksummed checkpoint (atomic write-then-rename)."""
        from repro.runtime.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def resume(cls, path: str) -> "DomainTracker":
        """Load a checkpoint written by :meth:`save_checkpoint`.

        Raises :class:`repro.utils.errors.CheckpointError` for corrupted,
        truncated, or version-incompatible checkpoints.
        """
        from repro.runtime.checkpoint import resume_tracker

        return resume_tracker(path)

    def persistent_domains(self, min_sightings: int = 2) -> List[TrackedDomain]:
        """Domains detected on several days (stable C&C, prime takedown
        candidates)."""
        return sorted(
            (e for e in self.tracked.values() if e.sightings >= min_sightings),
            key=lambda e: -e.sightings,
        )

    def __len__(self) -> int:
        return len(self.tracked)

    def __repr__(self) -> str:
        return (
            f"DomainTracker(days={len(self.days_processed)}, "
            f"tracked={len(self.tracked)})"
        )

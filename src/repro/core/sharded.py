"""Out-of-core day preparation over a sharded edge store.

The in-memory path (:meth:`repro.core.pipeline.Segugio.prepare_day`)
builds both CSR directions of the full behavior graph before pruning —
impossible at the paper's ~320M edges/day.  This module runs the same
three phases (graph build, labeling, pruning R1–R4) as three passes of
per-shard workers over a :class:`~repro.datasets.edgestore.EdgeStore`,
merging partial aggregates on the coordinator:

* **scan** (``shard_scan``) — per-shard machine/domain degree counts and
  distinct (machine, e2LD) pair counts for R4;
* **labels** (``shard_labels``) — per-shard malware/benign machine
  degrees against the coordinator-labeled domain array;
* **prune** (``shard_prune``) — per-shard kept-edge extraction under the
  coordinator-computed keep masks.

Every pass runs through :func:`repro.runtime.supervisor.supervised_map`,
so worker loss, hangs, and memory pressure walk the same degradation
ladder as the forest hot path, and fault plans can target the three
``shard_*`` sites.

Determinism: machines are partitioned by ``machine_id % n_shards``, so
per-shard degree and distinct-pair aggregates are *exact* (not
approximate) restrictions of the global ones; merged arrays are ordered
by global id; and the final kept-edge merge lexsorts by (machine,
domain), reproducing the in-memory edge order byte for byte.  The
equivalence is enforced by tests at shard counts {1, 2, 7}.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import (
    BENIGN,
    MALWARE,
    UNKNOWN,
    GraphLabels,
    derive_machine_labels,
    label_domain_ids,
)
from repro.core.pruning import (
    RULE_ABSENT,
    RULE_KEPT,
    RULE_ORPHANED,
    RULE_R1,
    RULE_R2,
    RULE_R3,
    RULE_R4,
    PruneResult,
    _pct,
)
from repro.datasets.edgestore import EdgeStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import (
    UNIT_EDGE_BATCHES,
    UNIT_GRAPH_EDGES,
    UNIT_TRACE_ROWS,
    count_units,
)
from repro.obs.tracing import Stopwatch, current_tracer
from repro.runtime.supervisor import supervised_map

if TYPE_CHECKING:  # pipeline imports this module lazily; avoid the cycle
    from repro.core.pipeline import ObservationContext, SegugioConfig

#: coordinator-written sidecars the shard workers mmap (kept out of the
#: task tuples so a 4M-domain map is not pickled once per shard)
E2LD_MAP_NAME = "e2ld_map.npy"
DOMAIN_LABELS_NAME = "domain_labels.npy"


# ---------------------------------------------------------------------- #
# pool workers — module-level and picklable (SEG102); read-only
# ---------------------------------------------------------------------- #


def _shard_scan(
    directory: str, shard: int, n_e2lds: int, apply_r4: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Degree and e2LD-popularity aggregates for one shard.

    Edges in a shard are deduplicated, so per-machine counts *are* the
    distinct-domain degrees; machines live wholly in one shard, so the
    counts are final.  Domain degrees are partial and summed by the
    coordinator.
    """
    store = EdgeStore.open(directory)
    em, ed = store.shard_edges(shard)
    em = np.asarray(em)
    ed = np.asarray(ed)
    machine_ids, machine_counts = np.unique(em, return_counts=True)
    domain_ids, domain_counts = np.unique(ed, return_counts=True)
    if apply_r4 and em.size:
        e2ld_map = np.asarray(
            np.load(os.path.join(directory, E2LD_MAP_NAME), mmap_mode="r")
        )
        pair_keys = em * np.int64(n_e2lds) + e2ld_map[ed]
        unique_pairs = np.unique(pair_keys)
        e2ld_counts = np.bincount(
            (unique_pairs % n_e2lds).astype(np.int64), minlength=n_e2lds
        )
    else:
        e2ld_counts = np.zeros(n_e2lds, dtype=np.int64)
    return (
        machine_ids,
        machine_counts.astype(np.int64),
        domain_ids,
        domain_counts.astype(np.int64),
        e2ld_counts,
    )


def _shard_labels(
    directory: str, shard: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-shard malware/benign degree of each of the shard's machines.

    Reads the coordinator's ``domain_labels.npy`` sidecar; uses the same
    float64-weighted bincount as :func:`derive_machine_labels` (counts
    are exact integers either way).
    """
    store = EdgeStore.open(directory)
    em, ed = store.shard_edges(shard)
    em = np.asarray(em)
    ed = np.asarray(ed)
    if not em.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    domain_labels = np.asarray(
        np.load(os.path.join(directory, DOMAIN_LABELS_NAME), mmap_mode="r")
    )
    machine_ids = np.unique(em)
    compact = np.searchsorted(machine_ids, em)
    edge_labels = domain_labels[ed]
    malware = np.bincount(
        compact,
        weights=(edge_labels == MALWARE).astype(np.float64),
        minlength=machine_ids.size,
    ).astype(np.int64)
    benign = np.bincount(
        compact,
        weights=(edge_labels == BENIGN).astype(np.float64),
        minlength=machine_ids.size,
    ).astype(np.int64)
    return machine_ids, malware, benign


def _shard_kept_edges(
    directory: str,
    shard: int,
    keep_machines_packed: np.ndarray,
    keep_domains_packed: np.ndarray,
    n_machine_ids: int,
    n_domain_ids: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Edges of one shard surviving the coordinator's keep masks.

    Masks ride in bit-packed (8 ids/byte) so a 4M-machine mask pickles
    at ~500 KB per task instead of 4 MB.
    """
    store = EdgeStore.open(directory)
    em, ed = store.shard_edges(shard)
    em = np.asarray(em)
    ed = np.asarray(ed)
    keep_m = np.unpackbits(keep_machines_packed, count=n_machine_ids).astype(
        bool
    )
    keep_d = np.unpackbits(keep_domains_packed, count=n_domain_ids).astype(
        bool
    )
    kept = keep_m[em] & keep_d[ed]
    return em[kept], ed[kept]


# ---------------------------------------------------------------------- #
# coordinator
# ---------------------------------------------------------------------- #


def _emit_degree_metrics(
    registry: MetricsRegistry,
    machine_degrees: np.ndarray,
    domain_degrees: np.ndarray,
    n_edges: int,
    stage: str,
) -> None:
    """The gauges ``_emit_graph_metrics`` derives from a built graph,
    computed from merged degree arrays instead."""
    if not registry.enabled:
        return
    nodes = registry.gauge(
        "segugio_graph_nodes", "graph node counts", labels=("kind", "stage")
    )
    nodes.set(int(np.count_nonzero(machine_degrees)), kind="machine", stage=stage)
    nodes.set(int(np.count_nonzero(domain_degrees)), kind="domain", stage=stage)
    registry.gauge(
        "segugio_graph_edges", "graph edge count", labels=("stage",)
    ).set(n_edges, stage=stage)
    degree = registry.gauge(
        "segugio_graph_degree",
        "degree distribution stats",
        labels=("kind", "stat", "stage"),
    )
    for kind, degrees in (
        ("machine", machine_degrees),
        ("domain", domain_degrees),
    ):
        present = degrees[degrees > 0]
        mean = float(present.mean()) if present.size else 0.0
        peak = int(present.max()) if present.size else 0
        degree.set(mean, kind=kind, stat="mean", stage=stage)
        degree.set(peak, kind=kind, stat="max", stage=stage)


def build_day_sharded(
    context: "ObservationContext",
    config: "SegugioConfig",
    registry: MetricsRegistry,
    hide_domains: Optional[Iterable[int]] = None,
    watch: Optional[Stopwatch] = None,
) -> Tuple[PruneResult, GraphLabels, np.ndarray]:
    """Graph build + labeling + pruning for a sharded day.

    Returns ``(prune_result, labels, domain_labels)`` where the pruned
    graph inside the result is a normal in-memory
    :class:`BehaviorGraph` — pruning removes the overwhelming bulk of a
    paper-scale day (§III reports >90%), so the survivor graph fits in
    memory and the downstream feature/classifier layers run unchanged.

    Every array and statistic is bit-identical to the in-memory path at
    any shard count; phase names match ``prepare_day`` so wall-clock and
    throughput attribution stay comparable across the two paths.
    """
    watch = watch if watch is not None else Stopwatch()
    trace = context.trace
    store: EdgeStore = trace.store
    prune_config = config.prune
    n_machine_ids = len(trace.machines)
    n_domain_ids = len(trace.domains)
    n_e2lds = len(context.e2ld_index)
    n_shards = store.n_shards
    jobs = max(1, int(config.n_jobs)) if config.n_jobs != -1 else (os.cpu_count() or 1)

    with current_tracer().span(
        "segugio_sharded_build",
        n_shards=n_shards,
        n_batches=store.n_batches,
        n_edges=store.n_edges,
    ):
        with watch.phase("build_graph"):
            if prune_config.apply_r4:
                np.save(
                    os.path.join(trace.directory, E2LD_MAP_NAME),
                    context.e2ld_index.map_array(),
                )
            scans = supervised_map(
                _shard_scan,
                [
                    (trace.directory, shard, n_e2lds, prune_config.apply_r4)
                    for shard in range(n_shards)
                ],
                max_workers=jobs,
                label="shard_scan",
            )
            machine_degrees = np.zeros(n_machine_ids, dtype=np.int64)
            domain_degrees = np.zeros(n_domain_ids, dtype=np.int64)
            e2ld_machine_counts = np.zeros(n_e2lds, dtype=np.int64)
            for mids, mdeg, dids, ddeg, e2c in scans:
                # machines are partitioned by shard: direct assignment
                machine_degrees[mids] = mdeg
                np.add.at(domain_degrees, dids, ddeg)
                e2ld_machine_counts += e2c
        count_units(UNIT_TRACE_ROWS, int(store.n_edges))
        count_units(UNIT_GRAPH_EDGES, int(store.n_edges))
        count_units(UNIT_EDGE_BATCHES, int(store.n_batches))
        _emit_degree_metrics(
            registry, machine_degrees, domain_degrees, store.n_edges, "raw"
        )

        with watch.phase("label_nodes"):
            present_domain_ids = np.flatnonzero(domain_degrees > 0)
            domain_labels = label_domain_ids(
                present_domain_ids,
                trace.domains,
                n_domain_ids,
                context.blacklist,
                context.whitelist,
                context.day,
            )
            if hide_domains is not None:
                hidden = np.asarray(list(hide_domains), dtype=np.int64)
                if hidden.size:
                    domain_labels[hidden] = UNKNOWN
            np.save(
                os.path.join(trace.directory, DOMAIN_LABELS_NAME),
                domain_labels,
            )
            label_parts = supervised_map(
                _shard_labels,
                [(trace.directory, shard) for shard in range(n_shards)],
                max_workers=jobs,
                label="shard_labels",
            )
            malware_degree = np.zeros(n_machine_ids, dtype=np.int64)
            benign_degree = np.zeros(n_machine_ids, dtype=np.int64)
            for mids, malware, benign in label_parts:
                malware_degree[mids] = malware
                benign_degree[mids] = benign
            machine_labels = np.zeros(n_machine_ids, dtype=np.int8)
            machine_labels[
                (machine_degrees > 0) & (benign_degree == machine_degrees)
            ] = BENIGN
            machine_labels[malware_degree > 0] = MALWARE

        with watch.phase("prune_graph"):
            result = _prune_sharded(
                trace,
                store,
                machine_degrees,
                domain_degrees,
                e2ld_machine_counts,
                machine_labels,
                domain_labels,
                context.e2ld_index,
                prune_config,
                jobs,
            )
            labels = derive_machine_labels(result.graph, domain_labels)
    return result, labels, domain_labels


def _prune_sharded(
    trace,
    store: EdgeStore,
    machine_degrees: np.ndarray,
    domain_degrees: np.ndarray,
    e2ld_machine_counts: np.ndarray,
    machine_labels: np.ndarray,
    domain_labels: np.ndarray,
    e2ld_index,
    config,
    jobs: int,
) -> PruneResult:
    """R1–R4 on merged aggregates — a line-for-line port of
    :func:`repro.core.pruning.prune_graph` with degree arrays standing in
    for the materialized graph."""
    present_machines = machine_degrees > 0
    present_domains = domain_degrees > 0
    n_machines = int(np.count_nonzero(present_machines))

    keep_machines = present_machines.copy()
    keep_domains = present_domains.copy()
    machine_is_malware = machine_labels == MALWARE
    domain_is_malware = domain_labels == MALWARE

    machine_rule = np.where(present_machines, RULE_KEPT, RULE_ABSENT).astype(
        np.int8
    )
    domain_rule = np.where(present_domains, RULE_KEPT, RULE_ABSENT).astype(
        np.int8
    )

    removed = {"r1": 0, "r2": 0, "r3": 0, "r4": 0}

    if config.apply_r1:
        inactive = (
            present_machines
            & (machine_degrees <= config.r1_min_domains)
            & ~machine_is_malware
        )
        removed["r1"] = int(np.count_nonzero(inactive & keep_machines))
        machine_rule[inactive & keep_machines] = RULE_R1
        keep_machines &= ~inactive

    if config.apply_r2:
        active_degrees = machine_degrees[present_machines]
        if active_degrees.size:
            theta_d = np.percentile(
                active_degrees, config.r2_percentile, method="higher"
            )
            meganode = present_machines & (machine_degrees >= theta_d)
            if theta_d > np.median(active_degrees):
                removed["r2"] = int(np.count_nonzero(meganode & keep_machines))
                machine_rule[meganode & keep_machines] = RULE_R2
                keep_machines &= ~meganode

    if config.apply_r3:
        singletons = (
            present_domains & (domain_degrees == 1) & ~domain_is_malware
        )
        removed["r3"] = int(np.count_nonzero(singletons & keep_domains))
        domain_rule[singletons & keep_domains] = RULE_R3
        keep_domains &= ~singletons

    if config.apply_r4:
        theta_m = config.r4_machine_fraction * n_machines
        e2ld_map = e2ld_index.map_array()
        hot_e2lds = e2ld_machine_counts >= max(theta_m, 1)
        too_popular = present_domains & hot_e2lds[e2ld_map]
        removed["r4"] = int(np.count_nonzero(too_popular & keep_domains))
        domain_rule[too_popular & keep_domains] = RULE_R4
        keep_domains &= ~too_popular

    kept_parts = supervised_map(
        _shard_kept_edges,
        [
            (
                trace.directory,
                shard,
                np.packbits(keep_machines),
                np.packbits(keep_domains),
                keep_machines.size,
                keep_domains.size,
            )
            for shard in range(store.n_shards)
        ],
        max_workers=jobs,
        label="shard_prune",
    )
    em_all = np.concatenate(
        [part[0] for part in kept_parts]
        or [np.empty(0, dtype=np.int64)]
    )
    ed_all = np.concatenate(
        [part[1] for part in kept_parts]
        or [np.empty(0, dtype=np.int64)]
    )
    # Pairs are globally unique, so (machine, domain) lexsort reproduces
    # the in-memory `_dedupe_edges` edge order exactly.
    order = np.lexsort((ed_all, em_all))
    em_all = em_all[order]
    ed_all = ed_all[order]
    resolutions = trace.resolutions_for(np.unique(ed_all))
    pruned = BehaviorGraph(
        trace.day, trace.machines, trace.domains, em_all, ed_all, resolutions
    )

    domain_rule[
        (domain_rule == RULE_KEPT) & (pruned.domain_degrees() == 0)
    ] = RULE_ORPHANED
    machine_rule[
        (machine_rule == RULE_KEPT) & (pruned.machine_degrees() == 0)
    ] = RULE_ORPHANED

    n_domains = int(np.count_nonzero(present_domains))
    stats: Dict[str, float] = {
        "machines_before": float(n_machines),
        "machines_after": float(pruned.n_machines),
        "domains_before": float(n_domains),
        "domains_after": float(pruned.n_domains),
        "edges_before": float(store.n_edges),
        "edges_after": float(pruned.n_edges),
        "removed_r1_machines": float(removed["r1"]),
        "removed_r2_machines": float(removed["r2"]),
        "removed_r3_domains": float(removed["r3"]),
        "removed_r4_domains": float(removed["r4"]),
    }
    stats["machines_removed_pct"] = _pct(n_machines, pruned.n_machines)
    stats["domains_removed_pct"] = _pct(n_domains, pruned.n_domains)
    stats["edges_removed_pct"] = _pct(store.n_edges, pruned.n_edges)
    return PruneResult(
        graph=pruned,
        stats=stats,
        domain_rule=domain_rule,
        machine_rule=machine_rule,
    )

"""Node labeling and machine-label propagation (paper §II-A1, Fig. 1).

Domains are labeled:

* ``MALWARE`` when the entire FQD string matches the C&C blacklist (as of
  the observation day),
* ``BENIGN`` when the FQD's effective 2LD is in the whitelist,
* ``UNKNOWN`` otherwise.

Machine labels are then *derived*: a machine is ``MALWARE`` if it queries at
least one malware domain, ``BENIGN`` if it queries exclusively benign
domains, and ``UNKNOWN`` otherwise.

For training-set construction (Fig. 5) and for unbiased evaluation, the
label of one or more domains must be *hidden*; hiding changes the derived
machine labels.  :class:`GraphLabels` precomputes per-machine counts of
malware/benign neighbors so that

* hiding a whole test set is one vectorized recomputation
  (:meth:`GraphLabels.with_hidden`), and
* the per-training-domain single-domain hiding needed for feature
  measurement is O(1) per affected machine (see
  :func:`repro.core.features.FeatureExtractor`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.dns.publicsuffix import PublicSuffixList
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.utils.ids import Interner

UNKNOWN: int = 0
BENIGN: int = 1
MALWARE: int = 2

LABEL_NAMES = {UNKNOWN: "unknown", BENIGN: "benign", MALWARE: "malware"}


@dataclass
class GraphLabels:
    """Node labels plus the per-machine neighbor-label counts.

    Attributes:
        domain_labels: int8 array indexed by global domain id.
        machine_labels: int8 array indexed by global machine id.
        machine_malware_degree: per machine, number of MALWARE domains queried.
        machine_benign_degree: per machine, number of BENIGN domains queried.
        machine_total_degree: per machine, number of domains queried.
    """

    domain_labels: np.ndarray
    machine_labels: np.ndarray
    machine_malware_degree: np.ndarray
    machine_benign_degree: np.ndarray
    machine_total_degree: np.ndarray

    def domain_ids_with_label(self, label: int) -> np.ndarray:
        return np.flatnonzero(self.domain_labels == label)

    def machine_ids_with_label(self, label: int) -> np.ndarray:
        return np.flatnonzero(self.machine_labels == label)

    def counts(self, graph: BehaviorGraph) -> Dict[str, int]:
        """Label tallies restricted to nodes present in *graph*."""
        present_domains = graph.domain_ids()
        present_machines = graph.machine_ids()
        dlab = self.domain_labels[present_domains]
        mlab = self.machine_labels[present_machines]
        return {
            "domains_total": int(present_domains.size),
            "domains_benign": int(np.count_nonzero(dlab == BENIGN)),
            "domains_malware": int(np.count_nonzero(dlab == MALWARE)),
            "domains_unknown": int(np.count_nonzero(dlab == UNKNOWN)),
            "machines_total": int(present_machines.size),
            "machines_malware": int(np.count_nonzero(mlab == MALWARE)),
            "machines_benign": int(np.count_nonzero(mlab == BENIGN)),
        }

    def with_hidden(
        self, graph: BehaviorGraph, hidden_domain_ids: Iterable[int]
    ) -> "GraphLabels":
        """Labels after setting the given domains to UNKNOWN.

        This is the evaluation procedure of §IV-A: hide all test-set domain
        labels *first*, then rederive machine labels, so no test ground truth
        leaks into feature measurement.
        """
        hidden = np.fromiter(
            (int(d) for d in hidden_domain_ids), dtype=np.int64
        )
        new_domain_labels = self.domain_labels.copy()
        if hidden.size:
            new_domain_labels[hidden] = UNKNOWN
        return derive_machine_labels(graph, new_domain_labels)


def label_domains(
    graph: BehaviorGraph,
    blacklist: CncBlacklist,
    whitelist: DomainWhitelist,
    as_of_day: Optional[int] = None,
) -> np.ndarray:
    """Label every domain id in the graph's id space.

    Blacklist matching is on the whole FQD string; whitelist matching is on
    the effective 2LD (both per §III).  ``as_of_day`` restricts the blacklist
    to entries already published by that day (defaults to the graph's day),
    which is what makes cross-day experiments honest: a domain blacklisted
    *after* the training day is still unknown at training time.
    """
    if as_of_day is None:
        as_of_day = graph.day
    return label_domain_ids(
        graph.domain_ids(),
        graph.domains,
        graph.n_domain_ids,
        blacklist,
        whitelist,
        as_of_day,
    )


def label_domain_ids(
    domain_ids: Iterable[int],
    domains: Interner,
    n_domain_ids: int,
    blacklist: CncBlacklist,
    whitelist: DomainWhitelist,
    as_of_day: int,
) -> np.ndarray:
    """Label the given domain ids over an id space of *n_domain_ids*.

    The graph-free core of :func:`label_domains`, shared with the sharded
    out-of-core build where present-domain ids come from merged per-shard
    degree counts rather than a materialized graph.  Ids not listed stay
    ``UNKNOWN`` — exactly how absent ids behave in :func:`label_domains`.
    """
    labels = np.zeros(n_domain_ids, dtype=np.int8)
    for domain_id in domain_ids:
        name = domains.name(int(domain_id))
        if blacklist.contains(name, as_of_day=as_of_day):
            labels[domain_id] = MALWARE
        elif whitelist.is_whitelisted(name):
            labels[domain_id] = BENIGN
    return labels


def derive_machine_labels(
    graph: BehaviorGraph, domain_labels: np.ndarray
) -> GraphLabels:
    """Propagate domain labels to machines (vectorized over the edge list)."""
    edge_domain_labels = domain_labels[graph.edge_domains]
    n_machines = graph.n_machine_ids

    malware_degree = np.bincount(
        graph.edge_machines,
        weights=(edge_domain_labels == MALWARE).astype(np.float64),
        minlength=n_machines,
    ).astype(np.int64)
    benign_degree = np.bincount(
        graph.edge_machines,
        weights=(edge_domain_labels == BENIGN).astype(np.float64),
        minlength=n_machines,
    ).astype(np.int64)
    total_degree = graph.machine_degrees()

    machine_labels = np.zeros(n_machines, dtype=np.int8)
    machine_labels[(total_degree > 0) & (benign_degree == total_degree)] = BENIGN
    machine_labels[malware_degree > 0] = MALWARE

    return GraphLabels(
        domain_labels=np.asarray(domain_labels, dtype=np.int8),
        machine_labels=machine_labels,
        machine_malware_degree=malware_degree,
        machine_benign_degree=benign_degree,
        machine_total_degree=total_degree,
    )


def label_graph(
    graph: BehaviorGraph,
    blacklist: CncBlacklist,
    whitelist: DomainWhitelist,
    as_of_day: Optional[int] = None,
) -> GraphLabels:
    """Full labeling pass: domains from ground truth, machines derived."""
    domain_labels = label_domains(graph, blacklist, whitelist, as_of_day)
    return derive_machine_labels(graph, domain_labels)


# Re-exported for callers that only need e2LD computation alongside labels.
__all__ = [
    "BENIGN",
    "GraphLabels",
    "LABEL_NAMES",
    "MALWARE",
    "PublicSuffixList",
    "UNKNOWN",
    "derive_machine_labels",
    "label_domain_ids",
    "label_domains",
    "label_graph",
]

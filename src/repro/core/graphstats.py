"""Structural analysis of the machine-domain behavior graph.

Operational situational awareness around the classifier: degree
distributions (Fig. 3 is one of these), connected-component structure,
and machine-overlap similarity between domains — the raw quantity behind
the paper's intuition (2), "machines infected with the same malware family
tend to query partially overlapping sets of malware-control domains".

The heavier analyses convert to a :mod:`networkx` bipartite graph, so the
full networkx toolbox is available on the result of
:func:`to_networkx`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import LABEL_NAMES, GraphLabels


def degree_histogram(
    graph: BehaviorGraph, side: str = "domain", max_bucket: int = 50
) -> Dict[int, int]:
    """Degree -> node count for one side of the bipartite graph.

    Degrees above *max_bucket* are pooled into the ``max_bucket`` key.
    """
    if side == "domain":
        degrees = graph.domain_degrees()
    elif side == "machine":
        degrees = graph.machine_degrees()
    else:
        raise ValueError("side must be 'domain' or 'machine'")
    active = degrees[degrees > 0]
    clipped = np.minimum(active, max_bucket)
    return dict(sorted(Counter(int(d) for d in clipped).items()))


def to_networkx(
    graph: BehaviorGraph, labels: Optional[GraphLabels] = None
) -> nx.Graph:
    """The behavior graph as a networkx bipartite graph.

    Machine nodes are ``("m", id)``, domain nodes ``("d", id)``; when
    *labels* is given each node carries a ``label`` attribute
    (benign/malware/unknown).
    """
    g = nx.Graph()
    for machine_id in graph.machine_ids():
        attrs = {"bipartite": 0, "name": graph.machines.name(int(machine_id))}
        if labels is not None:
            attrs["label"] = LABEL_NAMES[int(labels.machine_labels[machine_id])]
        g.add_node(("m", int(machine_id)), **attrs)
    for domain_id in graph.domain_ids():
        attrs = {"bipartite": 1, "name": graph.domains.name(int(domain_id))}
        if labels is not None:
            attrs["label"] = LABEL_NAMES[int(labels.domain_labels[domain_id])]
        g.add_node(("d", int(domain_id)), **attrs)
    for machine_id, domain_id in zip(graph.edge_machines, graph.edge_domains):
        g.add_edge(("m", int(machine_id)), ("d", int(domain_id)))
    return g


def component_summary(graph: BehaviorGraph) -> Dict[str, float]:
    """Connected-component structure of the (pruned) behavior graph."""
    g = to_networkx(graph)
    if g.number_of_nodes() == 0:
        return {"n_components": 0, "giant_fraction": 0.0, "n_isolated": 0}
    components = sorted(
        (len(c) for c in nx.connected_components(g)), reverse=True
    )
    return {
        "n_components": float(len(components)),
        "giant_fraction": components[0] / g.number_of_nodes(),
        "n_isolated": float(sum(1 for size in components if size == 1)),
    }


def domain_overlap(
    graph: BehaviorGraph, domain_a: int, domain_b: int
) -> float:
    """Jaccard similarity of two domains' querying-machine sets."""
    a = set(int(m) for m in graph.machines_of_domain(int(domain_a)))
    b = set(int(m) for m in graph.machines_of_domain(int(domain_b)))
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def intra_family_overlap(
    graph: BehaviorGraph,
    domain_groups: Dict[str, List[int]],
    rng: Optional[np.random.Generator] = None,
    max_pairs_per_group: int = 30,
) -> Dict[str, float]:
    """Mean querier-overlap within each named group of domains.

    Called with per-family C&C domain lists, this measures intuition (2)
    directly: C&C domains of one family share victims, so their pairwise
    Jaccard overlap is far above that of random benign domains.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    results: Dict[str, float] = {}
    for group, domain_ids in domain_groups.items():
        present = [
            d for d in domain_ids if graph.domain_degrees()[int(d)] > 0
        ]
        if len(present) < 2:
            continue
        pairs: List[Tuple[int, int]] = [
            (present[i], present[j])
            for i in range(len(present))
            for j in range(i + 1, len(present))
        ]
        if len(pairs) > max_pairs_per_group:
            picks = rng.choice(len(pairs), size=max_pairs_per_group, replace=False)
            pairs = [pairs[int(k)] for k in picks]
        overlaps = [domain_overlap(graph, a, b) for a, b in pairs]
        results[group] = float(np.mean(overlaps))
    return results


def summarize(graph: BehaviorGraph, labels: Optional[GraphLabels] = None) -> str:
    """A multi-line structural report."""
    lines = [repr(graph)]
    components = component_summary(graph)
    lines.append(
        f"components: {components['n_components']:.0f} "
        f"(giant holds {components['giant_fraction']:.1%} of nodes)"
    )
    domain_hist = degree_histogram(graph, "domain", max_bucket=10)
    lines.append(f"domain degree histogram (<=10): {domain_hist}")
    if labels is not None:
        counts = labels.counts(graph)
        lines.append(
            f"labels: {counts['domains_malware']} malware / "
            f"{counts['domains_benign']} benign / "
            f"{counts['domains_unknown']} unknown domains; "
            f"{counts['machines_malware']} infected machines"
        )
    return "\n".join(lines)

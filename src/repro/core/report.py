"""Detection-report export: JSON and CSV for downstream consumers.

A deployment's output feeds ticketing, blocking, and vetting pipelines
(§IV-D: "care should be taken (e.g., via an additional vetting process)
before the discovered domains are deployed to block malware-control
communications").  These helpers flatten a
:class:`repro.core.pipeline.DetectionReport` into analyst-facing rows:
domain, score, the querying machines, and the key feature context
(fraction of infected queriers, activity recency, abused-IP overlap) that
a vetting analyst reads first.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, TextIO, Union

import numpy as np

from repro.core.features import FeatureExtractor
from repro.core.pipeline import DetectionReport


def detection_rows(
    report: DetectionReport,
    threshold: float,
    extractor: Optional[FeatureExtractor] = None,
    max_machines: int = 20,
) -> List[Dict[str, object]]:
    """Flatten detections at/above *threshold* into sortable dicts.

    With an *extractor* (built over the same pruned graph/labels the
    report came from) each row also carries the vetting context features.
    """
    mask = report.scores >= threshold
    ids = report.domain_ids[mask]
    scores = report.scores[mask]
    order = np.argsort(-scores)
    ids, scores = ids[order], scores[order]

    features = None
    if extractor is not None and ids.size:
        features = extractor.feature_matrix(ids)

    rows: List[Dict[str, object]] = []
    for i, (domain_id, score) in enumerate(zip(ids, scores)):
        machines = report.graph.machines_of_domain(int(domain_id))
        machine_names = [
            report.graph.machines.name(int(m)) for m in machines[:max_machines]
        ]
        row: Dict[str, object] = {
            "domain": report.graph.domains.name(int(domain_id)),
            "score": round(float(score), 6),
            "day": report.day,
            "n_machines": int(machines.size),
            "machines": machine_names,
        }
        if features is not None:
            row.update(
                frac_infected_machines=round(float(features[i, 0]), 4),
                days_active=int(features[i, 3]),
                consecutive_days_active=int(features[i, 4]),
                frac_abused_ips=round(float(features[i, 7]), 4),
                frac_abused_prefixes=round(float(features[i, 8]), 4),
            )
        rows.append(row)
    return rows


def write_json(
    report: DetectionReport,
    threshold: float,
    stream_or_path: Union[str, TextIO],
    extractor: Optional[FeatureExtractor] = None,
) -> None:
    """Write detections as a JSON document with a small header."""
    rows = detection_rows(report, threshold, extractor)
    payload = {
        "day": report.day,
        "threshold": threshold,
        "n_scored": len(report),
        "n_detections": len(rows),
        "detections": rows,
    }
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path, "w") if own else stream_or_path
    try:
        json.dump(payload, stream, indent=2)
    finally:
        if own:
            stream.close()


def write_csv(
    report: DetectionReport,
    threshold: float,
    stream_or_path: Union[str, TextIO],
    extractor: Optional[FeatureExtractor] = None,
) -> None:
    """Write detections as CSV (machines joined with '|')."""
    rows = detection_rows(report, threshold, extractor)
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path, "w", newline="") if own else stream_or_path
    try:
        if not rows:
            stream.write("domain,score,day,n_machines,machines\n")
            return
        fieldnames = list(rows[0].keys())
        writer = csv.DictWriter(stream, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            flat = dict(row)
            flat["machines"] = "|".join(row["machines"])
            writer.writerow(flat)
    finally:
        if own:
            stream.close()


def to_json_text(
    report: DetectionReport,
    threshold: float,
    extractor: Optional[FeatureExtractor] = None,
) -> str:
    buffer = io.StringIO()
    write_json(report, threshold, buffer, extractor)
    return buffer.getvalue()

"""SegugioConfig persistence (JSON).

Deployments pin their pipeline configuration in version control; these
helpers serialize :class:`repro.core.pipeline.SegugioConfig` (including
the nested :class:`repro.core.pruning.PruneConfig`) to plain JSON and
back, refusing unknown keys so config drift fails loudly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, TextIO, Union

from repro.core.pipeline import SegugioConfig
from repro.core.pruning import PruneConfig

FORMAT_VERSION = 1


def config_to_dict(config: SegugioConfig) -> Dict[str, Any]:
    payload = dataclasses.asdict(config)
    payload["format_version"] = FORMAT_VERSION
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = list(payload["feature_columns"])
    return payload


def config_from_dict(payload: Dict[str, Any]) -> SegugioConfig:
    payload = dict(payload)
    version = payload.pop("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported config format version: {version}")

    prune_payload = payload.pop("prune", None)
    prune_fields = {f.name for f in dataclasses.fields(PruneConfig)}
    if prune_payload is not None:
        unknown = set(prune_payload) - prune_fields
        if unknown:
            raise ValueError(f"unknown prune config keys: {sorted(unknown)}")
        prune = PruneConfig(**prune_payload)
    else:
        prune = PruneConfig()

    config_fields = {f.name for f in dataclasses.fields(SegugioConfig)}
    unknown = set(payload) - config_fields
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    if payload.get("feature_columns") is not None:
        payload["feature_columns"] = tuple(payload["feature_columns"])
    return SegugioConfig(prune=prune, **payload)


def save_config(
    config: SegugioConfig, stream_or_path: Union[str, TextIO]
) -> None:
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path, "w") if own else stream_or_path
    try:
        json.dump(config_to_dict(config), stream, indent=2)
    finally:
        if own:
            stream.close()


def load_config(stream_or_path: Union[str, TextIO]) -> SegugioConfig:
    own = isinstance(stream_or_path, str)
    stream = open(stream_or_path) if own else stream_or_path
    try:
        return config_from_dict(json.load(stream))
    finally:
        if own:
            stream.close()

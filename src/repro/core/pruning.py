"""Graph pruning: the conservative filtering rules R1-R4 (paper §II-A2).

* **R1** — discard "inactive" machines querying <= ``r1_min_domains`` (5)
  domains... *except* machines already labeled MALWARE (a quiet infected
  machine may still query its couple of C&C domains).
* **R2** — discard proxy/forwarder meganodes: machines whose degree is at or
  above the ``r2_percentile`` (99.99) percentile of machine degrees.
* **R3** — discard domains queried by only one machine... *except* known
  malware-control domains.
* **R4** — discard extremely popular domains: those whose effective 2LD is
  queried by >= ``r4_machine_fraction`` (1/3) of all machines in the network.

All thresholds are expressed exactly as in the paper (a percentile and a
fraction), so the rules transfer unchanged between the paper's multi-million
machine graphs and the scaled-down synthetic scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import MALWARE, GraphLabels
from repro.dns.e2ld import E2ldIndex

# Per-node rule-attribution codes (int8 arrays indexed by global id).
# A node is attributed to the *first* rule that removed it; ORPHANED marks
# nodes no rule touched directly but whose every edge endpoint was pruned.
RULE_ABSENT = np.int8(-1)
RULE_KEPT = np.int8(0)
RULE_R1 = np.int8(1)
RULE_R2 = np.int8(2)
RULE_R3 = np.int8(3)
RULE_R4 = np.int8(4)
RULE_ORPHANED = np.int8(5)

RULE_NAMES: Dict[int, str] = {
    int(RULE_R1): "r1",
    int(RULE_R2): "r2",
    int(RULE_R3): "r3",
    int(RULE_R4): "r4",
    int(RULE_ORPHANED): "orphaned",
}


def rule_name(code: int) -> "str | None":
    """Human name for an attribution code (None for kept/absent)."""
    return RULE_NAMES.get(int(code))


@dataclass(frozen=True)
class PruneConfig:
    """Thresholds for rules R1-R4 (defaults are the paper's)."""

    r1_min_domains: int = 5
    r2_percentile: float = 99.99
    r4_machine_fraction: float = 1.0 / 3.0
    apply_r1: bool = True
    apply_r2: bool = True
    apply_r3: bool = True
    apply_r4: bool = True

    def __post_init__(self) -> None:
        if self.r1_min_domains < 0:
            raise ValueError("r1_min_domains must be non-negative")
        if not 0 < self.r2_percentile <= 100:
            raise ValueError("r2_percentile must be in (0, 100]")
        if not 0 < self.r4_machine_fraction <= 1:
            raise ValueError("r4_machine_fraction must be in (0, 1]")


@dataclass
class PruneResult:
    """The pruned graph plus per-rule and aggregate statistics.

    ``domain_rule`` / ``machine_rule`` are int8 attribution arrays over the
    *global* id spaces (shared interners): ``RULE_ABSENT`` for ids not in
    the day's graph, ``RULE_KEPT`` for survivors, ``RULE_R1``–``RULE_R4``
    for the first rule that removed the node, and ``RULE_ORPHANED`` for
    nodes left edge-less after their counterparts were pruned.  They feed
    the decision-provenance records (:mod:`repro.obs.provenance`).
    """

    graph: BehaviorGraph
    stats: Dict[str, float] = field(default_factory=dict)
    domain_rule: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int8)
    )
    machine_rule: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int8)
    )

    def summary(self) -> str:
        s = self.stats
        return (
            f"pruning: domains -{s['domains_removed_pct']:.2f}%  "
            f"machines -{s['machines_removed_pct']:.2f}%  "
            f"edges -{s['edges_removed_pct']:.2f}%"
        )


def prune_graph(
    graph: BehaviorGraph,
    labels: GraphLabels,
    e2ld_index: E2ldIndex,
    config: PruneConfig = PruneConfig(),
) -> PruneResult:
    """Apply R1-R4 (with their exceptions) in one pass over the edge list.

    All rule masks are computed on the *input* graph, then edges whose either
    endpoint is dropped are removed together — the paper applies the rules as
    one conservative filtering step, not to a fixpoint.
    """
    machine_degrees = graph.machine_degrees()
    domain_degrees = graph.domain_degrees()
    present_machines = machine_degrees > 0
    present_domains = domain_degrees > 0
    n_machines = int(np.count_nonzero(present_machines))

    keep_machines = present_machines.copy()
    keep_domains = present_domains.copy()
    machine_is_malware = labels.machine_labels == MALWARE
    domain_is_malware = labels.domain_labels == MALWARE

    # Rule attribution over the global id spaces (first rule wins).
    machine_rule = np.where(present_machines, RULE_KEPT, RULE_ABSENT).astype(
        np.int8
    )
    domain_rule = np.where(present_domains, RULE_KEPT, RULE_ABSENT).astype(
        np.int8
    )

    removed = {"r1": 0, "r2": 0, "r3": 0, "r4": 0}

    if config.apply_r1:
        # R1: inactive machines — exception: keep labeled-malware machines.
        inactive = (
            present_machines
            & (machine_degrees <= config.r1_min_domains)
            & ~machine_is_malware
        )
        removed["r1"] = int(np.count_nonzero(inactive & keep_machines))
        machine_rule[inactive & keep_machines] = RULE_R1
        keep_machines &= ~inactive

    if config.apply_r2:
        # R2: proxy/forwarder meganodes by degree percentile.
        active_degrees = machine_degrees[present_machines]
        if active_degrees.size:
            # "higher" interpolation keeps theta_d on an actual observed
            # degree at or above the requested quantile — conservative on
            # small graphs (prunes fewer machines, never more).
            theta_d = np.percentile(
                active_degrees, config.r2_percentile, method="higher"
            )
            meganode = present_machines & (machine_degrees >= theta_d)
            # Never let the percentile cut below the R1 threshold zone:
            # theta_d is a high quantile, but tiny test graphs could place it
            # at degree 1; require the node to be a strict outlier.
            if theta_d > np.median(active_degrees):
                removed["r2"] = int(np.count_nonzero(meganode & keep_machines))
                machine_rule[meganode & keep_machines] = RULE_R2
                keep_machines &= ~meganode

    if config.apply_r3:
        # R3: single-querier domains — exception: keep known malware domains.
        singletons = (
            present_domains & (domain_degrees == 1) & ~domain_is_malware
        )
        removed["r3"] = int(np.count_nonzero(singletons & keep_domains))
        domain_rule[singletons & keep_domains] = RULE_R3
        keep_domains &= ~singletons

    if config.apply_r4:
        # R4: e2LDs queried by >= theta_m machines.
        theta_m = config.r4_machine_fraction * n_machines
        e2ld_map = e2ld_index.map_array()
        edge_e2lds = e2ld_map[graph.edge_domains]
        # Count distinct machines per e2LD: dedupe (machine, e2ld) pairs.
        n_e2lds = len(e2ld_index)
        pair_keys = graph.edge_machines * np.int64(n_e2lds) + edge_e2lds
        unique_pairs = np.unique(pair_keys)
        e2ld_machine_counts = np.bincount(
            (unique_pairs % n_e2lds).astype(np.int64), minlength=n_e2lds
        )
        hot_e2lds = e2ld_machine_counts >= max(theta_m, 1)
        too_popular = present_domains & hot_e2lds[e2ld_map]
        removed["r4"] = int(np.count_nonzero(too_popular & keep_domains))
        domain_rule[too_popular & keep_domains] = RULE_R4
        keep_domains &= ~too_popular

    pruned = graph.subgraph(keep_machines, keep_domains)

    # Nodes no rule touched but whose every counterpart was pruned end up
    # edge-less in the subgraph — attribute them as orphaned.
    domain_rule[
        (domain_rule == RULE_KEPT) & (pruned.domain_degrees() == 0)
    ] = RULE_ORPHANED
    machine_rule[
        (machine_rule == RULE_KEPT) & (pruned.machine_degrees() == 0)
    ] = RULE_ORPHANED

    n_domains = int(np.count_nonzero(present_domains))
    stats: Dict[str, float] = {
        "machines_before": float(n_machines),
        "machines_after": float(pruned.n_machines),
        "domains_before": float(n_domains),
        "domains_after": float(pruned.n_domains),
        "edges_before": float(graph.n_edges),
        "edges_after": float(pruned.n_edges),
        "removed_r1_machines": float(removed["r1"]),
        "removed_r2_machines": float(removed["r2"]),
        "removed_r3_domains": float(removed["r3"]),
        "removed_r4_domains": float(removed["r4"]),
    }
    stats["machines_removed_pct"] = _pct(n_machines, pruned.n_machines)
    stats["domains_removed_pct"] = _pct(n_domains, pruned.n_domains)
    stats["edges_removed_pct"] = _pct(graph.n_edges, pruned.n_edges)
    return PruneResult(
        graph=pruned,
        stats=stats,
        domain_rule=domain_rule,
        machine_rule=machine_rule,
    )


def _pct(before: float, after: float) -> float:
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before

"""Graph pruning: the conservative filtering rules R1-R4 (paper §II-A2).

* **R1** — discard "inactive" machines querying <= ``r1_min_domains`` (5)
  domains... *except* machines already labeled MALWARE (a quiet infected
  machine may still query its couple of C&C domains).
* **R2** — discard proxy/forwarder meganodes: machines whose degree is at or
  above the ``r2_percentile`` (99.99) percentile of machine degrees.
* **R3** — discard domains queried by only one machine... *except* known
  malware-control domains.
* **R4** — discard extremely popular domains: those whose effective 2LD is
  queried by >= ``r4_machine_fraction`` (1/3) of all machines in the network.

All thresholds are expressed exactly as in the paper (a percentile and a
fraction), so the rules transfer unchanged between the paper's multi-million
machine graphs and the scaled-down synthetic scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import MALWARE, GraphLabels
from repro.dns.e2ld import E2ldIndex


@dataclass(frozen=True)
class PruneConfig:
    """Thresholds for rules R1-R4 (defaults are the paper's)."""

    r1_min_domains: int = 5
    r2_percentile: float = 99.99
    r4_machine_fraction: float = 1.0 / 3.0
    apply_r1: bool = True
    apply_r2: bool = True
    apply_r3: bool = True
    apply_r4: bool = True

    def __post_init__(self) -> None:
        if self.r1_min_domains < 0:
            raise ValueError("r1_min_domains must be non-negative")
        if not 0 < self.r2_percentile <= 100:
            raise ValueError("r2_percentile must be in (0, 100]")
        if not 0 < self.r4_machine_fraction <= 1:
            raise ValueError("r4_machine_fraction must be in (0, 1]")


@dataclass
class PruneResult:
    """The pruned graph plus per-rule and aggregate statistics."""

    graph: BehaviorGraph
    stats: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        s = self.stats
        return (
            f"pruning: domains -{s['domains_removed_pct']:.2f}%  "
            f"machines -{s['machines_removed_pct']:.2f}%  "
            f"edges -{s['edges_removed_pct']:.2f}%"
        )


def prune_graph(
    graph: BehaviorGraph,
    labels: GraphLabels,
    e2ld_index: E2ldIndex,
    config: PruneConfig = PruneConfig(),
) -> PruneResult:
    """Apply R1-R4 (with their exceptions) in one pass over the edge list.

    All rule masks are computed on the *input* graph, then edges whose either
    endpoint is dropped are removed together — the paper applies the rules as
    one conservative filtering step, not to a fixpoint.
    """
    machine_degrees = graph.machine_degrees()
    domain_degrees = graph.domain_degrees()
    present_machines = machine_degrees > 0
    present_domains = domain_degrees > 0
    n_machines = int(np.count_nonzero(present_machines))

    keep_machines = present_machines.copy()
    keep_domains = present_domains.copy()
    machine_is_malware = labels.machine_labels == MALWARE
    domain_is_malware = labels.domain_labels == MALWARE

    removed = {"r1": 0, "r2": 0, "r3": 0, "r4": 0}

    if config.apply_r1:
        # R1: inactive machines — exception: keep labeled-malware machines.
        inactive = (
            present_machines
            & (machine_degrees <= config.r1_min_domains)
            & ~machine_is_malware
        )
        removed["r1"] = int(np.count_nonzero(inactive & keep_machines))
        keep_machines &= ~inactive

    if config.apply_r2:
        # R2: proxy/forwarder meganodes by degree percentile.
        active_degrees = machine_degrees[present_machines]
        if active_degrees.size:
            # "higher" interpolation keeps theta_d on an actual observed
            # degree at or above the requested quantile — conservative on
            # small graphs (prunes fewer machines, never more).
            theta_d = np.percentile(
                active_degrees, config.r2_percentile, method="higher"
            )
            meganode = present_machines & (machine_degrees >= theta_d)
            # Never let the percentile cut below the R1 threshold zone:
            # theta_d is a high quantile, but tiny test graphs could place it
            # at degree 1; require the node to be a strict outlier.
            if theta_d > np.median(active_degrees):
                removed["r2"] = int(np.count_nonzero(meganode & keep_machines))
                keep_machines &= ~meganode

    if config.apply_r3:
        # R3: single-querier domains — exception: keep known malware domains.
        singletons = (
            present_domains & (domain_degrees == 1) & ~domain_is_malware
        )
        removed["r3"] = int(np.count_nonzero(singletons & keep_domains))
        keep_domains &= ~singletons

    if config.apply_r4:
        # R4: e2LDs queried by >= theta_m machines.
        theta_m = config.r4_machine_fraction * n_machines
        e2ld_map = e2ld_index.map_array()
        edge_e2lds = e2ld_map[graph.edge_domains]
        # Count distinct machines per e2LD: dedupe (machine, e2ld) pairs.
        n_e2lds = len(e2ld_index)
        pair_keys = graph.edge_machines * np.int64(n_e2lds) + edge_e2lds
        unique_pairs = np.unique(pair_keys)
        e2ld_machine_counts = np.bincount(
            (unique_pairs % n_e2lds).astype(np.int64), minlength=n_e2lds
        )
        hot_e2lds = e2ld_machine_counts >= max(theta_m, 1)
        too_popular = present_domains & hot_e2lds[e2ld_map]
        removed["r4"] = int(np.count_nonzero(too_popular & keep_domains))
        keep_domains &= ~too_popular

    pruned = graph.subgraph(keep_machines, keep_domains)

    n_domains = int(np.count_nonzero(present_domains))
    stats: Dict[str, float] = {
        "machines_before": float(n_machines),
        "machines_after": float(pruned.n_machines),
        "domains_before": float(n_domains),
        "domains_after": float(pruned.n_domains),
        "edges_before": float(graph.n_edges),
        "edges_after": float(pruned.n_edges),
        "removed_r1_machines": float(removed["r1"]),
        "removed_r2_machines": float(removed["r2"]),
        "removed_r3_domains": float(removed["r3"]),
        "removed_r4_domains": float(removed["r4"]),
    }
    stats["machines_removed_pct"] = _pct(n_machines, pruned.n_machines)
    stats["domains_removed_pct"] = _pct(n_domains, pruned.n_domains)
    stats["edges_removed_pct"] = _pct(graph.n_edges, pruned.n_edges)
    return PruneResult(graph=pruned, stats=stats)


def _pct(before: float, after: float) -> float:
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before

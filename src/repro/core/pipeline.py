"""The end-to-end Segugio system (paper Fig. 2).

:class:`ObservationContext` bundles everything Segugio can observe about one
network on one day: the day's DNS trace, the rolling activity indices, the
passive-DNS history, and the ground-truth feeds (blacklist + whitelist).

:class:`Segugio` is the deployable system:

* :meth:`Segugio.fit` — build the behavior graph for the training day, label
  and prune it, measure hidden-label features for every known domain, and
  train the malware-score classifier.
* :meth:`Segugio.classify` — build the graph for a (different) day and score
  all *unknown* domains, returning a :class:`DetectionReport`.

Evaluation protocols (cross-day, cross-network, cross-family, ...) layer on
top via the ``exclude_domains`` / ``hide_domains`` hooks, which implement the
paper's rigorous ground-truth hiding: held-out test domains are relabeled
*unknown* before machine labels, pruning, or features are computed, so their
ground truth can never leak into the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.features import (
    DEFAULT_ACTIVITY_WINDOW,
    FEATURE_NAMES,
    FeatureExtractor,
)
from repro.core.graph import BehaviorGraph
from repro.core.labeling import (
    MALWARE,
    UNKNOWN,
    GraphLabels,
    derive_machine_labels,
    label_domains,
)
from repro.core.pruning import (
    RULE_ABSENT,
    RULE_KEPT,
    PruneConfig,
    PruneResult,
    prune_graph,
    rule_name,
)
from repro.core.training import TrainingSet, build_training_set
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.trace import DayTrace
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.obs.logs import get_logger
from repro.obs.metrics import SCORE_BUCKETS, MetricsRegistry, get_registry
from repro.obs.provenance import (
    VERDICT_LABELED,
    VERDICT_PRUNED,
    VERDICT_SCORED,
    VOTE_BINS,
    current_decision_log,
)
from repro.obs.resources import (
    UNIT_DOMAINS_SCORED,
    UNIT_GRAPH_EDGES,
    UNIT_TRACE_ROWS,
    count_units,
)
from repro.obs.tracing import Stopwatch, current_tracer
from repro.pdns.abuse import AbuseOracle
from repro.pdns.database import PassiveDNSDatabase

DEFAULT_PDNS_WINDOW_DAYS = 150  # ~ the paper's five months

_log = get_logger("pipeline")


def _emit_graph_metrics(
    registry: MetricsRegistry, graph: BehaviorGraph, stage: str
) -> None:
    """Node/edge counts and degree stats for one built graph."""
    if not registry.enabled:
        return
    nodes = registry.gauge(
        "segugio_graph_nodes", "graph node counts", labels=("kind", "stage")
    )
    nodes.set(graph.n_machines, kind="machine", stage=stage)
    nodes.set(graph.n_domains, kind="domain", stage=stage)
    registry.gauge(
        "segugio_graph_edges", "graph edge count", labels=("stage",)
    ).set(graph.n_edges, stage=stage)
    degree = registry.gauge(
        "segugio_graph_degree",
        "degree distribution stats",
        labels=("kind", "stat", "stage"),
    )
    for kind, degrees in (
        ("machine", graph.machine_degrees()),
        ("domain", graph.domain_degrees()),
    ):
        present = degrees[degrees > 0]
        mean = float(present.mean()) if present.size else 0.0
        peak = int(present.max()) if present.size else 0
        degree.set(mean, kind=kind, stat="mean", stage=stage)
        degree.set(peak, kind=kind, stat="max", stage=stage)


def _emit_label_metrics(
    registry: MetricsRegistry, graph: BehaviorGraph, labels: "GraphLabels"
) -> None:
    """How many present domains carry each ground-truth label."""
    if not registry.enabled:
        return
    from repro.core.labeling import BENIGN

    present = graph.domain_ids()
    values = labels.domain_labels[present]
    gauge = registry.gauge(
        "segugio_labels_domains", "labeled domain counts", labels=("label",)
    )
    gauge.set(int((values == MALWARE).sum()), label="malware")
    gauge.set(int((values == BENIGN).sum()), label="benign")
    gauge.set(int((values == UNKNOWN).sum()), label="unknown")


def _emit_prune_metrics(registry: MetricsRegistry, stats: Dict[str, float]) -> None:
    """Per-rule node removals and aggregate reductions (paper §III)."""
    if not registry.enabled:
        return
    removed = registry.gauge(
        "segugio_pruning_removed",
        "nodes removed per pruning rule",
        labels=("rule", "kind"),
    )
    removed.set(stats.get("removed_r1_machines", 0.0), rule="r1", kind="machines")
    removed.set(stats.get("removed_r2_machines", 0.0), rule="r2", kind="machines")
    removed.set(stats.get("removed_r3_domains", 0.0), rule="r3", kind="domains")
    removed.set(stats.get("removed_r4_domains", 0.0), rule="r4", kind="domains")
    pct = registry.gauge(
        "segugio_pruning_removed_pct",
        "percentage of the graph removed by pruning",
        labels=("dimension",),
    )
    for dimension in ("domains", "machines", "edges"):
        pct.set(stats.get(f"{dimension}_removed_pct", 0.0), dimension=dimension)


def context_degradations(
    context: "ObservationContext", config: "SegugioConfig"
) -> List[str]:
    """Which feature groups will silently fall back on this context.

    Each tag is ``<fault>:<consequence>`` — e.g. a dead pDNS collector
    yields ``pdns_empty_window:f3_zero`` because the F3 IP-abuse features
    measure zero for every domain.  The tags are recorded as provenance on
    :class:`DetectionReport` (and, via the tracker, on ``DayReport``) so a
    day scored under degraded inputs is distinguishable from a healthy one
    after the fact.
    """
    tags: List[str] = []
    day = context.day
    pdns_start = max(day - config.pdns_window_days, 0)
    pdns_days, _, _ = context.pdns.window_records(pdns_start, day - 1)
    if pdns_days.size == 0:
        tags.append("pdns_empty_window:f3_zero")
    act_start = max(day - config.activity_window + 1, 0)
    if not context.fqd_activity.days_with_activity(act_start, day):
        tags.append("fqd_activity_empty:f2_zero")
    if not context.e2ld_activity.days_with_activity(act_start, day):
        tags.append("e2ld_activity_empty:f2_zero")
    if not context.blacklist.domains(as_of_day=day):
        tags.append("blacklist_empty:no_malware_labels")
    if len(context.whitelist) == 0:
        tags.append("whitelist_empty:no_benign_labels")
    return tags


@dataclass
class ObservationContext:
    """One network, one observation day, and all side information."""

    day: int
    trace: DayTrace
    fqd_activity: ActivityIndex
    e2ld_activity: ActivityIndex
    e2ld_index: E2ldIndex
    pdns: PassiveDNSDatabase
    blacklist: CncBlacklist
    whitelist: DomainWhitelist

    def domain_id(self, name: str) -> Optional[int]:
        """Global id of a domain name in this network's id space."""
        return self.trace.domains.lookup(name)

    def domain_ids(self, names: Iterable[str]) -> np.ndarray:
        """Ids for the names known to this network (unknown names skipped)."""
        ids = [self.trace.domains.lookup(name) for name in names]
        return np.asarray(
            sorted(i for i in ids if i is not None), dtype=np.int64
        )


@dataclass(frozen=True)
class SegugioConfig:
    """Tunable knobs; defaults follow the paper's deployment."""

    activity_window: int = DEFAULT_ACTIVITY_WINDOW
    pdns_window_days: int = DEFAULT_PDNS_WINDOW_DAYS
    prune: PruneConfig = field(default_factory=PruneConfig)
    filter_probes: bool = False
    """Apply the §VI anomalous-client heuristics before pruning: machines
    that enumerate long lists of mostly-dead blacklisted domains (security
    probes/scanners) are removed from the graph so they neither pollute
    machine labels nor inflate F1 features."""

    classifier: str = "forest"  # "forest" | "logistic"
    n_estimators: int = 60
    max_depth: int = 14
    max_bins: int = 64
    feature_columns: Optional[Tuple[int, ...]] = None  # None = all 11
    max_benign_train: Optional[int] = None
    seed: int = 0
    n_jobs: int = 1
    """Worker processes for the classifier hot path (fit + scoring); -1
    uses every core.  Purely an execution knob: any value produces
    bit-identical scores (trees are keyed on pre-derived seeds and score
    reduction uses fixed chunk boundaries — DESIGN.md §10)."""

    def make_classifier(self) -> Union[RandomForestClassifier, LogisticRegression]:
        if self.classifier == "forest":
            return RandomForestClassifier(
                n_estimators=self.n_estimators,
                max_depth=self.max_depth,
                max_bins=self.max_bins,
                class_weight="balanced",
                random_state=self.seed,
                n_jobs=self.n_jobs,
            )
        if self.classifier == "logistic":
            return LogisticRegression(class_weight="balanced")
        raise ValueError(f"unknown classifier {self.classifier!r}")

    def columns(self) -> List[int]:
        if self.feature_columns is None:
            return list(range(len(FEATURE_NAMES)))
        return list(self.feature_columns)


@dataclass
class DetectionReport:
    """Scored unknown domains of one classified day."""

    day: int
    domain_ids: np.ndarray
    scores: np.ndarray
    graph: BehaviorGraph
    labels: GraphLabels
    provenance: List[str] = field(default_factory=list)
    """Degradation tags (see :func:`context_degradations`) recording which
    feature groups fell back on the classified day — empty for a healthy
    day."""

    features: Optional[np.ndarray] = None
    """Full 11-column feature matrix for ``domain_ids`` (pre column
    selection), kept for drift monitoring and decision provenance."""

    def score_map(self) -> Dict[int, float]:
        return {int(d): float(s) for d, s in zip(self.domain_ids, self.scores)}

    def score_of(self, domain_name: str) -> Optional[float]:
        domain_id = self.graph.domains.lookup(domain_name)
        if domain_id is None:
            return None
        hits = np.flatnonzero(self.domain_ids == domain_id)
        return float(self.scores[hits[0]]) if hits.size else None

    def detected_ids(self, threshold: float) -> np.ndarray:
        return self.domain_ids[self.scores >= threshold]

    def detections(self, threshold: float) -> List[Tuple[str, float]]:
        """(domain, score) pairs at/above threshold, highest score first."""
        mask = self.scores >= threshold
        ids = self.domain_ids[mask]
        scores = self.scores[mask]
        order = np.argsort(-scores)
        return [
            (self.graph.domains.name(int(ids[i])), float(scores[i]))
            for i in order
        ]

    def infected_machines(self, threshold: float) -> List[str]:
        """Machines querying any detected domain (paper §VI: Segugio
        "can detect both malware-control domains and the infected machines
        that query them at the same time")."""
        detected = self.detected_ids(threshold)
        if detected.size == 0:
            return []
        machines: set = set()
        for domain_id in detected:
            machines.update(
                int(m) for m in self.graph.machines_of_domain(int(domain_id))
            )
        return sorted(self.graph.machines.name(m) for m in machines)

    def __len__(self) -> int:
        return int(self.domain_ids.size)


class Segugio:
    """Behavior-based tracker of malware-control domains."""

    def __init__(self, config: Optional[SegugioConfig] = None) -> None:
        self.config = config if config is not None else SegugioConfig()
        self.classifier_ = None
        self.training_set_: Optional[TrainingSet] = None
        self.train_stats_: Dict[str, float] = {}
        self.last_prune_: Optional[PruneResult] = None
        """Rule-attribution arrays from the most recent
        :meth:`prepare_day` call (decision provenance)."""
        self.timings_: Stopwatch = Stopwatch()
        self.degradations_: List[str] = []
        """Degradation tags observed on the *training* context (see
        :func:`context_degradations`); empty when training inputs were
        healthy."""

    # ------------------------------------------------------------------ #
    # shared graph preparation
    # ------------------------------------------------------------------ #

    def prepare_day(
        self,
        context: ObservationContext,
        hide_domains: Optional[Iterable[int]] = None,
        watch: Optional[Stopwatch] = None,
    ) -> Tuple[BehaviorGraph, GraphLabels, FeatureExtractor, Dict[str, float]]:
        """Graph -> labels (with optional hiding) -> pruning -> extractor.

        ``hide_domains`` (global domain ids) are relabeled UNKNOWN before
        machine labels are derived, before pruning, and before any feature
        is measured — the paper's leak-free evaluation procedure (§IV-A).
        """
        watch = watch if watch is not None else Stopwatch()
        registry = get_registry()
        if getattr(context.trace, "is_sharded", False):
            if self.config.filter_probes:
                raise ValueError(
                    "filter_probes requires the in-memory path: the §VI "
                    "probe heuristics walk per-machine adjacency, which a "
                    "sharded trace never materializes — disable "
                    "filter_probes or load the day without --shards"
                )
            from repro.core.sharded import build_day_sharded

            result, labels, domain_labels = build_day_sharded(
                context,
                self.config,
                registry,
                hide_domains=hide_domains,
                watch=watch,
            )
            pruned = result.graph
        else:
            with watch.phase("build_graph"):
                graph = BehaviorGraph.from_trace(context.trace)
            # Throughput numerators for the resource profile (--profile): one
            # build consumes the day's full trace and yields the raw graph, so
            # the counts accumulate once per prepare_day call — the same cadence
            # as the build_graph phase wall-clock they are divided by.
            count_units(UNIT_TRACE_ROWS, int(context.trace.n_edges))
            count_units(UNIT_GRAPH_EDGES, int(graph.n_edges))
            _emit_graph_metrics(registry, graph, stage="raw")
            with watch.phase("label_nodes"):
                domain_labels = label_domains(
                    graph, context.blacklist, context.whitelist, as_of_day=context.day
                )
                if hide_domains is not None:
                    hidden = np.asarray(list(hide_domains), dtype=np.int64)
                    if hidden.size:
                        domain_labels[hidden] = UNKNOWN
                labels = derive_machine_labels(graph, domain_labels)
            if self.config.filter_probes:
                with watch.phase("filter_probes"):
                    from repro.core.anomalies import remove_probe_machines

                    graph = remove_probe_machines(
                        graph, labels, context.fqd_activity
                    )
                    labels = derive_machine_labels(graph, domain_labels)
            with watch.phase("prune_graph"):
                result = prune_graph(
                    graph, labels, context.e2ld_index, self.config.prune
                )
                pruned = result.graph
                # Degrees changed; rederive machine labels on the pruned graph.
                labels = derive_machine_labels(pruned, domain_labels)
        self.last_prune_ = result
        _emit_prune_metrics(registry, result.stats)
        _emit_graph_metrics(registry, pruned, stage="pruned")
        _emit_label_metrics(registry, pruned, labels)
        with watch.phase("build_abuse_oracle"):
            known_malware = np.flatnonzero(domain_labels == MALWARE)
            from repro.core.labeling import BENIGN  # narrow import

            known_benign = np.flatnonzero(domain_labels == BENIGN)
            oracle = AbuseOracle(
                context.pdns,
                end_day=context.day - 1,
                window_days=self.config.pdns_window_days,
                malware_domain_ids=known_malware,
                benign_domain_ids=known_benign,
            )
        extractor = FeatureExtractor(
            pruned,
            labels,
            context.fqd_activity,
            context.e2ld_activity,
            context.e2ld_index,
            oracle,
            activity_window=self.config.activity_window,
        )
        return pruned, labels, extractor, result.stats

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def fit(
        self,
        context: ObservationContext,
        exclude_domains: Optional[Iterable[int]] = None,
    ) -> "Segugio":
        """Train the malware-score classifier on one day of traffic.

        ``exclude_domains`` — global ids whose ground truth must not be used
        at all (the cross-day test sets): they are hidden before labeling,
        so they neither enter the training set nor influence machine labels.
        """
        from repro.runtime.faults import maybe_fault

        maybe_fault("pipeline_fit", task=int(context.day))
        watch = self.timings_ = Stopwatch()
        self.degradations_ = context_degradations(context, self.config)
        graph, labels, extractor, prune_stats = self.prepare_day(
            context, hide_domains=exclude_domains, watch=watch
        )
        with watch.phase("measure_training_features"):
            rng = np.random.default_rng(self.config.seed)
            training = build_training_set(
                extractor,
                graph,
                labels,
                max_benign=self.config.max_benign_train,
                rng=rng,
            )
        columns = self.config.columns()
        training = training.select_columns(columns)
        with watch.phase("train_classifier"):
            classifier = self.config.make_classifier()
            classifier.fit(training.X, training.y)
        self.classifier_ = classifier
        self.training_set_ = training
        self.train_stats_ = dict(prune_stats)
        self.train_stats_.update(
            n_train_malware=float(training.n_malware),
            n_train_benign=float(training.n_benign),
        )
        registry = get_registry()
        if registry.enabled:
            samples = registry.gauge(
                "segugio_train_samples",
                "training-set size by class",
                labels=("label",),
            )
            samples.set(training.n_malware, label="malware")
            samples.set(training.n_benign, label="benign")
        _log.info(
            "fit_complete",
            day=context.day,
            n_train_malware=training.n_malware,
            n_train_benign=training.n_benign,
            degradations=self.degradations_,
            seconds=round(watch.total(), 6),
        )
        return self

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #

    def classify(
        self,
        context: ObservationContext,
        hide_domains: Optional[Iterable[int]] = None,
    ) -> DetectionReport:
        """Score every unknown domain in the day's pruned graph.

        ``hide_domains`` forces known test domains to be treated as unknown
        (evaluation mode); in deployment it is None and only genuinely
        unlabeled domains are scored.
        """
        if self.classifier_ is None:
            raise RuntimeError("Segugio must be fitted before classify()")
        from repro.runtime.faults import maybe_fault

        maybe_fault("pipeline_classify", task=int(context.day))
        watch = self.timings_
        graph, labels, extractor, _ = self.prepare_day(
            context, hide_domains=hide_domains, watch=watch
        )
        with watch.phase("measure_test_features"):
            present = graph.domain_ids()
            unknown_ids = present[
                labels.domain_labels[present] == UNKNOWN
            ]
            X_full = extractor.feature_matrix(unknown_ids, hide_labels=False)
        with watch.phase("score_domains"):
            X = X_full[:, self.config.columns()]
            scores = (
                self.classifier_.predict_proba(X)
                if unknown_ids.size
                else np.empty(0, dtype=np.float64)
            )
        count_units(UNIT_DOMAINS_SCORED, int(unknown_ids.size))
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "segugio_classified_domains_total",
                "unknown domains scored",
            ).inc(int(unknown_ids.size))
            registry.histogram(
                "segugio_classify_score",
                "malware-score distribution over scored domains",
                buckets=SCORE_BUCKETS,
            ).observe_many(scores)
        self._emit_decisions(
            context, graph, labels, unknown_ids, scores, X_full, X, hide_domains
        )
        _log.info(
            "classify_complete", day=context.day, n_scored=int(unknown_ids.size)
        )
        return DetectionReport(
            day=context.day,
            domain_ids=unknown_ids,
            scores=scores,
            graph=graph,
            labels=labels,
            provenance=context_degradations(context, self.config),
            features=X_full,
        )

    def _emit_decisions(
        self,
        context: ObservationContext,
        graph: BehaviorGraph,
        labels: GraphLabels,
        unknown_ids: np.ndarray,
        scores: np.ndarray,
        X_full: np.ndarray,
        X_selected: np.ndarray,
        hide_domains: Optional[Iterable[int]],
    ) -> None:
        """Record one decision-provenance record per domain in the day's graph.

        No-op unless a :class:`repro.obs.provenance.DecisionLog` is active
        (i.e. the run asked for ``--telemetry-dir``).  Thresholds are
        stamped later by the caller via ``DecisionLog.finalize_day``.
        """
        log = current_decision_log()
        prune = self.last_prune_
        if not log.enabled or prune is None:
            return
        from repro.core.labeling import BENIGN  # narrow import

        hidden = {int(d) for d in hide_domains} if hide_domains is not None else set()
        present = np.flatnonzero(prune.domain_rule != RULE_ABSENT)
        score_index = {int(d): i for i, d in enumerate(unknown_ids)}
        histogram = margin = None
        if unknown_ids.size and hasattr(self.classifier_, "tree_vote_histogram"):
            histogram, margin = self.classifier_.tree_vote_histogram(
                X_selected, n_bins=VOTE_BINS
            )
            n_trees = len(self.classifier_.trees_)
        with current_tracer().span(
            "segugio_decisions_emit", n_domains=int(present.size)
        ):
            for domain_id in present.tolist():
                code = int(prune.domain_rule[domain_id])
                label_value = int(labels.domain_labels[domain_id])
                if label_value == MALWARE:
                    label, source = "malware", "blacklist"
                elif label_value == BENIGN:
                    label, source = "benign", "whitelist"
                elif domain_id in hidden:
                    label, source = "unknown", "hidden_for_evaluation"
                else:
                    label, source = "unknown", "none"
                pruning = {
                    "kept": code == int(RULE_KEPT),
                    "removed_by": rule_name(code),
                }
                row = score_index.get(domain_id)
                if row is not None:
                    votes = None
                    if histogram is not None:
                        votes = {
                            "n_trees": int(n_trees),
                            "bins": VOTE_BINS,
                            "histogram": [int(v) for v in histogram[row]],
                            "margin": float(margin[row]),
                        }
                    log.record(
                        day=context.day,
                        domain=graph.domains.name(domain_id),
                        verdict=VERDICT_SCORED,
                        label=label,
                        label_source=source,
                        pruning=pruning,
                        features={
                            name: float(value)
                            for name, value in zip(FEATURE_NAMES, X_full[row])
                        },
                        votes=votes,
                        score=float(scores[row]),
                    )
                else:
                    verdict = (
                        VERDICT_LABELED
                        if code == int(RULE_KEPT)
                        else VERDICT_PRUNED
                    )
                    log.record(
                        day=context.day,
                        domain=graph.domains.name(domain_id),
                        verdict=verdict,
                        label=label,
                        label_source=source,
                        pruning=pruning,
                    )
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "segugio_decisions_total", "decision records emitted"
            ).inc(int(present.size))

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #

    def explain(
        self,
        context: ObservationContext,
        domain: str,
        hide_domains: Optional[Iterable[int]] = None,
    ) -> List[Dict[str, object]]:
        """Feature attribution for one domain's malware score.

        Measures the domain's features on *context* (with the same optional
        hiding used at classification time) and attributes the classifier's
        score to individual features by ablating each to the training-set
        median (see :func:`repro.ml.importance.local_attribution`).  Rows
        come back sorted by absolute contribution.
        """
        if self.classifier_ is None or self.training_set_ is None:
            raise RuntimeError("Segugio must be fitted before explain()")
        domain_id = context.domain_id(domain)
        if domain_id is None:
            raise KeyError(f"unknown domain {domain!r} in this network")
        from repro.ml.importance import local_attribution

        _, _, extractor, _ = self.prepare_day(context, hide_domains=hide_domains)
        columns = self.config.columns()
        x = extractor.feature_matrix([domain_id])[0][columns]
        return local_attribution(
            self.classifier_,
            self.training_set_.X,
            x,
            feature_names=self.training_set_.feature_names,
        )

    def with_feature_columns(self, columns: Sequence[int]) -> "Segugio":
        """A fresh (unfitted) Segugio restricted to the given feature columns."""
        return Segugio(replace(self.config, feature_columns=tuple(columns)))

    def __repr__(self) -> str:
        fitted = self.classifier_ is not None
        return f"Segugio(classifier={self.config.classifier!r}, fitted={fitted})"

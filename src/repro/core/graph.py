"""The machine-domain bipartite query-behavior graph (paper §II-A1).

An undirected bipartite graph ``G = (M, D, E)``: machines on one side,
domains on the other, an edge when the machine queried the domain during the
observation window.  Node identities are the *global* interned ids shared
with the traces, activity index, and pDNS store; the graph additionally keeps
CSR adjacency in both directions so that

* ``machines_of_domain(d)`` — the set S of machines querying *d* (feature F1),
* ``domains_of_machine(m)`` — a machine's query profile (labeling, pruning),

are O(degree) slices.  Domain nodes carry the day's resolved-IP annotation
(feature F3 input).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.dns.trace import DayTrace
from repro.utils.ids import Interner


class _Csr:
    """One-directional CSR adjacency over a dense id space."""

    __slots__ = ("offsets", "targets", "degrees")

    def __init__(self, sources: np.ndarray, targets: np.ndarray, n_sources: int) -> None:
        if sources.size:
            lo = int(sources.min())
            hi = int(sources.max())
            if lo < 0 or hi >= n_sources:
                offender = lo if lo < 0 else hi
                raise ValueError(
                    f"edge references id {offender} outside the interned id "
                    f"space [0, {n_sources}) — the trace was built against a "
                    f"stale or torn interner"
                )
        order = np.argsort(sources, kind="stable")
        self.targets = targets[order]
        self.degrees = np.bincount(sources, minlength=n_sources).astype(np.int64)
        self.offsets = np.zeros(n_sources + 1, dtype=np.int64)
        np.cumsum(self.degrees, out=self.offsets[1:])

    def neighbors(self, node_id: int) -> np.ndarray:
        return self.targets[self.offsets[node_id]:self.offsets[node_id + 1]]


class BehaviorGraph:
    """Bipartite who-queries-what graph for one observation window."""

    def __init__(
        self,
        day: int,
        machines: Interner,
        domains: Interner,
        edge_machines: np.ndarray,
        edge_domains: np.ndarray,
        resolutions: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        self.day = int(day)
        self.machines = machines
        self.domains = domains
        self.edge_machines = np.asarray(edge_machines, dtype=np.int64)
        self.edge_domains = np.asarray(edge_domains, dtype=np.int64)
        if self.edge_machines.shape != self.edge_domains.shape:
            raise ValueError("edge arrays must be parallel")
        self.resolutions: Dict[int, np.ndarray] = resolutions or {}

        self.n_machine_ids = len(machines)
        self.n_domain_ids = len(domains)
        self._by_machine = _Csr(
            self.edge_machines, self.edge_domains, self.n_machine_ids
        )
        self._by_domain = _Csr(
            self.edge_domains, self.edge_machines, self.n_domain_ids
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_trace(cls, trace: DayTrace) -> "BehaviorGraph":
        """Build the graph from one day of deduplicated DNS traffic."""
        return cls(
            trace.day,
            trace.machines,
            trace.domains,
            trace.edge_machines,
            trace.edge_domains,
            trace.resolutions,
        )

    def subgraph(
        self, keep_machines: np.ndarray, keep_domains: np.ndarray
    ) -> "BehaviorGraph":
        """Graph restricted to edges whose endpoints are both kept.

        *keep_machines* / *keep_domains* are boolean masks over the global id
        spaces.  Interners (and hence the id spaces) are shared with the
        parent graph; only the edge set shrinks.
        """
        edge_kept = keep_machines[self.edge_machines] & keep_domains[self.edge_domains]
        kept_domains = self.edge_domains[edge_kept]
        present = np.unique(kept_domains)
        resolutions = {
            int(did): self.resolutions[int(did)]
            for did in present
            if int(did) in self.resolutions
        }
        return BehaviorGraph(
            self.day,
            self.machines,
            self.domains,
            self.edge_machines[edge_kept],
            kept_domains,
            resolutions,
        )

    # ------------------------------------------------------------------ #
    # topology queries
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        return int(self.edge_machines.shape[0])

    def machine_ids(self) -> np.ndarray:
        """Global ids of machines present (degree > 0) in this graph."""
        return np.flatnonzero(self._by_machine.degrees > 0)

    def domain_ids(self) -> np.ndarray:
        """Global ids of domains present (degree > 0) in this graph."""
        return np.flatnonzero(self._by_domain.degrees > 0)

    @property
    def n_machines(self) -> int:
        return int(np.count_nonzero(self._by_machine.degrees))

    @property
    def n_domains(self) -> int:
        return int(np.count_nonzero(self._by_domain.degrees))

    def machine_degrees(self) -> np.ndarray:
        """Distinct domains queried, indexed by global machine id."""
        return self._by_machine.degrees

    def domain_degrees(self) -> np.ndarray:
        """Distinct querying machines, indexed by global domain id."""
        return self._by_domain.degrees

    def domains_of_machine(self, machine_id: int) -> np.ndarray:
        return self._by_machine.neighbors(machine_id)

    def machines_of_domain(self, domain_id: int) -> np.ndarray:
        return self._by_domain.neighbors(domain_id)

    def resolved_ips(self, domain_id: int) -> np.ndarray:
        ips = self.resolutions.get(int(domain_id))
        if ips is None:
            return np.empty(0, dtype=np.uint32)
        return ips

    def __repr__(self) -> str:
        return (
            f"BehaviorGraph(day={self.day}, machines={self.n_machines}, "
            f"domains={self.n_domains}, edges={self.n_edges})"
        )

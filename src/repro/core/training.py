"""Training-set construction with label hiding (paper Fig. 5).

For every known *malware* or *benign* domain in the (pruned) training graph,
its ground-truth label is temporarily hidden, its 11 features are measured
as if it were unknown, and the feature vector is tagged with the original
label.  The hidden-label semantics live in
:meth:`repro.core.features.FeatureExtractor.feature_matrix`; this module
assembles the dataset, optionally rebalancing the (heavily benign-skewed)
classes by subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.features import FEATURE_NAMES, FeatureExtractor
from repro.core.graph import BehaviorGraph
from repro.core.labeling import BENIGN, MALWARE, GraphLabels


@dataclass
class TrainingSet:
    """A labeled feature dataset ready for a classifier.

    ``y`` is 1 for malware-control domains, 0 for benign domains.
    """

    X: np.ndarray
    y: np.ndarray
    domain_ids: np.ndarray
    feature_names: List[str] = field(default_factory=lambda: list(FEATURE_NAMES))

    @property
    def n_samples(self) -> int:
        return int(self.y.shape[0])

    @property
    def n_malware(self) -> int:
        return int(np.count_nonzero(self.y == 1))

    @property
    def n_benign(self) -> int:
        return int(np.count_nonzero(self.y == 0))

    def select_columns(self, columns: List[int]) -> "TrainingSet":
        """A view of the dataset restricted to the given feature columns."""
        return TrainingSet(
            X=self.X[:, columns],
            y=self.y,
            domain_ids=self.domain_ids,
            feature_names=[self.feature_names[i] for i in columns],
        )

    def __repr__(self) -> str:
        return (
            f"TrainingSet(samples={self.n_samples}, malware={self.n_malware}, "
            f"benign={self.n_benign}, features={self.X.shape[1]})"
        )


def build_training_set(
    extractor: FeatureExtractor,
    graph: BehaviorGraph,
    labels: GraphLabels,
    max_benign: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> TrainingSet:
    """Measure hidden-label features for every known domain in *graph*.

    Args:
        extractor: Feature extractor built over the (pruned) training graph.
        graph: The pruned training graph.
        labels: Labels consistent with *graph*.
        max_benign: Optional cap on the number of benign samples; when the
            graph has more, a uniform random subsample of this size is used
            (malware samples are never subsampled).
        rng: Generator for the benign subsample (required when *max_benign*
            triggers).

    Raises:
        ValueError: if either class is absent from the graph.
    """
    present = graph.domain_ids()
    present_labels = labels.domain_labels[present]
    malware_ids = present[present_labels == MALWARE]
    benign_ids = present[present_labels == BENIGN]
    if malware_ids.size == 0:
        raise ValueError("training graph contains no known malware domains")
    if benign_ids.size == 0:
        raise ValueError("training graph contains no known benign domains")

    if max_benign is not None and benign_ids.size > max_benign:
        if rng is None:
            raise ValueError("rng is required when subsampling benign domains")
        benign_ids = rng.choice(benign_ids, size=max_benign, replace=False)
        benign_ids.sort()

    ids = np.concatenate([malware_ids, benign_ids])
    X = extractor.feature_matrix(ids, hide_labels=True)
    y = np.concatenate(
        [
            np.ones(malware_ids.size, dtype=np.int64),
            np.zeros(benign_ids.size, dtype=np.int64),
        ]
    )
    return TrainingSet(X=X, y=y, domain_ids=ids)

"""Heuristics for "anomalous" clients (paper §VI, last paragraph).

Some ISP clients run security tooling that continuously probes long lists
of known malware-related domains (to check blacklisting status, resolved
IPs, and so on).  Such probes are labeled *malware* by the propagation rule
— they do query C&C domains — but they are not infections, and they inject
edges that inflate the machine-behavior features of every domain they
touch.  The paper reports using "a set of heuristics to verify that our
filtered graphs did not seem to contain such anomalous clients"; this
module implements those heuristics:

* an infected machine's daily C&C query count is small (Fig. 3: almost
  never above twenty), while probes enumerate feeds with hundreds of
  entries — flag machines whose *known-malware degree* exceeds a cap;
* real infections query the family's *currently active* domains, while
  probes also hit long-dead blacklist entries — flag machines whose
  queried malware domains are mostly inactive (no recent activity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import MALWARE, GraphLabels
from repro.dns.activity import ActivityIndex


@dataclass(frozen=True)
class ProbeHeuristics:
    """Thresholds for probe-client detection."""

    max_malware_degree: int = 20
    """Fig. 3 bound: infected machines essentially never query more than
    twenty malware domains in a day."""

    max_dead_fraction: float = 0.3
    """Flag when more than this fraction of a machine's queried malware
    domains showed no activity in the lookback window (feed enumeration
    hits long-dead entries; live infections essentially never do)."""

    activity_window: int = 14


def detect_probe_machines(
    graph: BehaviorGraph,
    labels: GraphLabels,
    fqd_activity: ActivityIndex,
    heuristics: ProbeHeuristics = ProbeHeuristics(),
) -> np.ndarray:
    """Global machine ids flagged as probe/scanner clients.

    Only machines currently labeled MALWARE are candidates (a probe is by
    construction querying blacklisted names).
    """
    flagged = []
    candidates = np.flatnonzero(
        (labels.machine_labels == MALWARE)
        & (labels.machine_malware_degree > heuristics.max_malware_degree)
    )
    day = graph.day
    window = heuristics.activity_window
    for machine_id in candidates:
        queried = graph.domains_of_machine(int(machine_id))
        malware_queried = queried[
            labels.domain_labels[queried] == MALWARE
        ]
        if malware_queried.size == 0:
            continue
        dead = sum(
            1
            for domain_id in malware_queried
            if fqd_activity.days_active(int(domain_id), day, window) == 0
        )
        if dead / malware_queried.size > heuristics.max_dead_fraction:
            flagged.append(int(machine_id))
    return np.asarray(sorted(flagged), dtype=np.int64)


def remove_probe_machines(
    graph: BehaviorGraph,
    labels: GraphLabels,
    fqd_activity: ActivityIndex,
    heuristics: ProbeHeuristics = ProbeHeuristics(),
) -> BehaviorGraph:
    """Graph with flagged probe clients' edges removed."""
    probes = detect_probe_machines(graph, labels, fqd_activity, heuristics)
    if probes.size == 0:
        return graph
    keep_machines = np.ones(graph.n_machine_ids, dtype=bool)
    keep_machines[probes] = False
    keep_domains = np.ones(graph.n_domain_ids, dtype=bool)
    return graph.subgraph(keep_machines, keep_domains)

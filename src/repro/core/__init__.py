"""Segugio core: behavior graph, labeling, pruning, features, classifier.

The modules here implement §II of the paper in order:

* :mod:`repro.core.graph` — the machine-domain bipartite query-behavior graph
  (§II-A1) with CSR adjacency in both directions.
* :mod:`repro.core.labeling` — malware/benign/unknown node labeling and the
  machine-label propagation rules, including incremental label hiding.
* :mod:`repro.core.pruning` — the conservative filtering rules R1-R4 with
  their two exceptions (§II-A2).
* :mod:`repro.core.features` — the 11 statistical features in groups F1-F3
  (§II-A3), fully vectorized.
* :mod:`repro.core.training` — label-hiding training-set construction
  (Fig. 5).
* :mod:`repro.core.pipeline` — the end-to-end :class:`Segugio` system
  (train on day t1, classify unknown domains of day t2).
"""

from repro.core.anomalies import (
    ProbeHeuristics,
    detect_probe_machines,
    remove_probe_machines,
)
from repro.core.graph import BehaviorGraph
from repro.core.labeling import (
    BENIGN,
    MALWARE,
    UNKNOWN,
    GraphLabels,
    label_graph,
)
from repro.core.pruning import PruneConfig, PruneResult, prune_graph
from repro.core.features import FEATURE_GROUPS, FEATURE_NAMES, FeatureExtractor
from repro.core.training import TrainingSet, build_training_set
from repro.core.pipeline import DetectionReport, ObservationContext, Segugio, SegugioConfig
from repro.core.tracker import Confirmation, DayReport, DomainTracker, TrackedDomain

__all__ = [
    "BENIGN",
    "BehaviorGraph",
    "Confirmation",
    "DayReport",
    "DetectionReport",
    "DomainTracker",
    "FEATURE_GROUPS",
    "FEATURE_NAMES",
    "FeatureExtractor",
    "GraphLabels",
    "MALWARE",
    "ObservationContext",
    "ProbeHeuristics",
    "PruneConfig",
    "PruneResult",
    "Segugio",
    "SegugioConfig",
    "TrackedDomain",
    "TrainingSet",
    "UNKNOWN",
    "build_training_set",
    "detect_probe_machines",
    "label_graph",
    "prune_graph",
    "remove_probe_machines",
]

"""The 11 statistical domain features (paper §II-A3, Fig. 4).

Feature layout (column order is part of the public API; ablation experiments
address groups through :data:`FEATURE_GROUPS`):

====  ======================  =====================================================
idx   name                    meaning
====  ======================  =====================================================
0     machine_frac_infected   F1: ``m = |I| / |S|`` — fraction of known-infected
                              machines among those querying the domain
1     machine_frac_unknown    F1: ``u = |U| / |S|``
2     machine_total           F1: ``t = |S|``
3     fqd_days_active         F2: days the FQD was queried in the last ``n`` days
4     fqd_consecutive_days    F2: consecutive active days ending at ``t_now``
5     e2ld_days_active        F2: same as 3 for the effective 2LD
6     e2ld_consecutive_days   F2: same as 4 for the effective 2LD
7     ip_frac_malware         F3: fraction of resolved IPs pointed to by known
                              malware domains during the pDNS window ``W``
8     prefix24_frac_malware   F3: same as 7 over /24 prefixes
9     ip_n_unknown            F3: resolved IPs also used by unknown domains in ``W``
10    prefix24_n_unknown      F3: same as 9 over /24 prefixes
====  ======================  =====================================================

**Label hiding.**  Features are defined for *unknown* domains, so when
measuring a training domain whose ground truth is known, its label is hidden
first (Fig. 5).  Hiding domain *d* only affects machines in ``S(d)``:

* *d* is MALWARE: a machine in ``S(d)`` stays infected iff it queries at
  least one *other* malware domain (``malware_degree >= 2``);
* *d* is BENIGN: infection status is unchanged (``malware_degree >= 1``);
* in either case no machine in ``S(d)`` can be benign afterwards, because it
  now queries an unknown domain.

So F1 under hiding reduces to a per-edge threshold test on the precomputed
``machine_malware_degree`` array — which is why training-set construction is
vectorized rather than one graph relabeling per training domain.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import MALWARE, GraphLabels
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.obs.tracing import current_tracer
from repro.pdns.abuse import AbuseOracle

FEATURE_NAMES: List[str] = [
    "machine_frac_infected",
    "machine_frac_unknown",
    "machine_total",
    "fqd_days_active",
    "fqd_consecutive_days",
    "e2ld_days_active",
    "e2ld_consecutive_days",
    "ip_frac_malware",
    "prefix24_frac_malware",
    "ip_n_unknown",
    "prefix24_n_unknown",
]

FEATURE_GROUPS: Dict[str, List[int]] = {
    "machine": [0, 1, 2],
    "activity": [3, 4, 5, 6],
    "ip": [7, 8, 9, 10],
}

N_FEATURES = len(FEATURE_NAMES)

DEFAULT_ACTIVITY_WINDOW = 14  # days; n = 14 in the paper


class FeatureExtractor:
    """Measures the 11 features for candidate domains of one graph/day."""

    def __init__(
        self,
        graph: BehaviorGraph,
        labels: GraphLabels,
        fqd_activity: ActivityIndex,
        e2ld_activity: ActivityIndex,
        e2ld_index: E2ldIndex,
        abuse_oracle: AbuseOracle,
        activity_window: int = DEFAULT_ACTIVITY_WINDOW,
    ) -> None:
        if activity_window <= 0:
            raise ValueError("activity_window must be positive")
        self.graph = graph
        self.labels = labels
        self.fqd_activity = fqd_activity
        self.e2ld_activity = e2ld_activity
        self.e2ld_index = e2ld_index
        self.abuse_oracle = abuse_oracle
        self.activity_window = int(activity_window)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def feature_matrix(
        self, domain_ids: Iterable[int], hide_labels: bool = False
    ) -> np.ndarray:
        """Feature rows for the given candidate domains.

        With ``hide_labels=True`` each candidate's own ground-truth label is
        hidden while measuring *its* row (training mode, Fig. 5); with
        ``False`` the candidates are taken to be unknown already
        (classification mode, Fig. 4).
        """
        ids = np.asarray(
            list(domain_ids) if not isinstance(domain_ids, np.ndarray) else domain_ids,
            dtype=np.int64,
        )
        features = np.zeros((ids.size, N_FEATURES), dtype=np.float64)
        if ids.size == 0:
            return features
        tracer = current_tracer()
        n = int(ids.size)
        with tracer.span("segugio_features_f1_machine", n_domains=n):
            self._machine_behavior(ids, hide_labels, out=features[:, 0:3])
        with tracer.span("segugio_features_f2_activity", n_domains=n):
            self._domain_activity(ids, out=features[:, 3:7])
        with tracer.span("segugio_features_f3_ip", n_domains=n):
            self._ip_abuse(ids, hide_labels, out=features[:, 7:11])
        return features

    def features_for(self, domain_id: int, hide_labels: bool = False) -> np.ndarray:
        """One feature vector (convenience wrapper)."""
        return self.feature_matrix([domain_id], hide_labels=hide_labels)[0]

    # ------------------------------------------------------------------ #
    # F1: machine behavior
    # ------------------------------------------------------------------ #

    def _machine_behavior(
        self, ids: np.ndarray, hide_labels: bool, out: np.ndarray
    ) -> None:
        graph, labels = self.graph, self.labels
        k = ids.size

        cand_index = np.full(graph.n_domain_ids, -1, dtype=np.int64)
        cand_index[ids] = np.arange(k)
        edge_cand = cand_index[graph.edge_domains]
        sel = edge_cand >= 0
        ec = edge_cand[sel]
        em = graph.edge_machines[sel]

        totals = np.bincount(ec, minlength=k).astype(np.float64)

        if hide_labels:
            # Per-candidate infection threshold on the querying machines:
            # hiding a MALWARE candidate discounts itself from the machine's
            # malware degree; hiding a BENIGN candidate does not change it.
            cand_labels = labels.domain_labels[ids]
            thresholds = np.where(cand_labels == MALWARE, 2, 1)
            infected_ind = (
                labels.machine_malware_degree[em] >= thresholds[ec]
            )
            # After hiding, no machine in S(d) can be benign (it queries an
            # unknown domain), so U = S - I.
            infected = np.bincount(
                ec, weights=infected_ind.astype(np.float64), minlength=k
            )
            benign = np.zeros(k, dtype=np.float64)
        else:
            machine_labels = labels.machine_labels[em]
            infected = np.bincount(
                ec,
                weights=(machine_labels == MALWARE).astype(np.float64),
                minlength=k,
            )
            # For a genuinely unknown candidate no querying machine can be
            # benign; this general form also covers feature measurement on
            # already-labeled domains without hiding (used by diagnostics).
            from repro.core.labeling import BENIGN  # local to avoid cycle noise

            benign = np.bincount(
                ec,
                weights=(machine_labels == BENIGN).astype(np.float64),
                minlength=k,
            )

        with np.errstate(divide="ignore", invalid="ignore"):
            frac_infected = np.where(totals > 0, infected / totals, 0.0)
            unknown = totals - infected - benign
            frac_unknown = np.where(totals > 0, unknown / totals, 0.0)

        out[:, 0] = frac_infected
        out[:, 1] = frac_unknown
        out[:, 2] = totals

    # ------------------------------------------------------------------ #
    # F2: domain activity
    # ------------------------------------------------------------------ #

    def _domain_activity(self, ids: np.ndarray, out: np.ndarray) -> None:
        day = self.graph.day
        window = self.activity_window
        fqd, e2ld_act = self.fqd_activity, self.e2ld_activity
        eids = self.e2ld_index.map_array()[ids]
        out[:, 0] = fqd.days_active_bulk(ids, day, window)
        out[:, 1] = fqd.consecutive_days_bulk(ids, day, window)
        out[:, 2] = e2ld_act.days_active_bulk(eids, day, window)
        out[:, 3] = e2ld_act.consecutive_days_bulk(eids, day, window)

    def _domain_activity_reference(self, ids: np.ndarray, out: np.ndarray) -> None:
        """Per-row loop the bulk path must match bit-for-bit (tests/bench)."""
        day = self.graph.day
        window = self.activity_window
        fqd, e2ld_act = self.fqd_activity, self.e2ld_activity
        e2ld_map = self.e2ld_index.map_array()
        for row, domain_id in enumerate(ids):
            did = int(domain_id)
            eid = int(e2ld_map[did])
            out[row, 0] = fqd.days_active(did, day, window)
            out[row, 1] = fqd.consecutive_days(did, day, window)
            out[row, 2] = e2ld_act.days_active(eid, day, window)
            out[row, 3] = e2ld_act.consecutive_days(eid, day, window)

    # ------------------------------------------------------------------ #
    # F3: IP abuse
    # ------------------------------------------------------------------ #

    def _ip_abuse(self, ids: np.ndarray, hide_labels: bool, out: np.ndarray) -> None:
        graph, oracle, labels = self.graph, self.abuse_oracle, self.labels
        ip_sets = [graph.resolved_ips(int(did)) for did in ids]
        if hide_labels:
            # Fig. 5 hiding extends to the evidence base: a known malware
            # candidate's own pDNS history must not vouch against itself.
            exclude = np.where(
                labels.domain_labels[ids] == MALWARE, ids, np.int64(-1)
            )
        else:
            exclude = None
        out[:, :] = oracle.abuse_features_many(ip_sets, exclude_domains=exclude)

    def _ip_abuse_reference(
        self, ids: np.ndarray, hide_labels: bool, out: np.ndarray
    ) -> None:
        """Per-row loop the bulk path must match bit-for-bit (tests/bench)."""
        graph, oracle, labels = self.graph, self.abuse_oracle, self.labels
        for row, domain_id in enumerate(ids):
            did = int(domain_id)
            ips = graph.resolved_ips(did)
            exclude = (
                did
                if hide_labels and labels.domain_labels[did] == MALWARE
                else None
            )
            out[row, :] = oracle.abuse_features(ips, exclude_domain=exclude)

    # ------------------------------------------------------------------ #
    # ablation support
    # ------------------------------------------------------------------ #

    @staticmethod
    def columns_without_group(excluded_group: Optional[str]) -> List[int]:
        """Feature column indices with one named group removed.

        ``excluded_group=None`` returns all columns.  Used by the Fig. 7 /
        Fig. 8 ablation experiments ("No machine", "No activity", "No IP").
        """
        if excluded_group is None:
            return list(range(N_FEATURES))
        if excluded_group not in FEATURE_GROUPS:
            raise KeyError(
                f"unknown feature group {excluded_group!r}; "
                f"options: {sorted(FEATURE_GROUPS)}"
            )
        dropped = set(FEATURE_GROUPS[excluded_group])
        return [i for i in range(N_FEATURES) if i not in dropped]

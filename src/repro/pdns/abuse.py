"""The IP-abuse oracle behind feature group F3.

Given a pDNS history, an observation day ``t_now``, a lookback window ``W``
(five months in the paper), and the current ground-truth snapshot (which
domains are known malware / known benign), the oracle precomputes:

* the set of IPs that known malware-control domains pointed to during ``W``,
* the set of /24 prefixes containing such IPs,
* the corresponding sets for *unknown* domains (neither malware nor benign).

Per-candidate feature extraction is then four membership counts over the
candidate's (few) resolved IPs.  Membership is NumPy ``searchsorted`` against
sorted unique arrays, so the oracle handles millions of history rows while a
full day of candidate domains is scored in seconds.

:meth:`AbuseOracle.abuse_features_many` batches the whole candidate set:
every candidate's IPs are concatenated into one array tagged with segment
(candidate) offsets, deduplicated per segment in a single ``np.unique``
over packed ``(segment, ip)`` keys, matched with one ``searchsorted`` per
abuse set, and reduced back to per-candidate counts with ``np.bincount`` —
one NumPy pass over the day instead of four searches per domain.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.dns.records import prefix24
from repro.pdns.database import PassiveDNSDatabase


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    return np.unique(values)


def _membership_count(candidates: np.ndarray, sorted_set: np.ndarray) -> int:
    """How many of *candidates* (unique) appear in *sorted_set*."""
    if candidates.size == 0 or sorted_set.size == 0:
        return 0
    idx = np.searchsorted(sorted_set, candidates)
    idx = np.clip(idx, 0, sorted_set.size - 1)
    return int(np.count_nonzero(sorted_set[idx] == candidates))


class AbuseOracle:
    """Precomputed abused-IP-space sets for one (day, window, ground truth)."""

    def __init__(
        self,
        pdns: PassiveDNSDatabase,
        end_day: int,
        window_days: int,
        malware_domain_ids: Iterable[int],
        benign_domain_ids: Iterable[int] = (),
    ) -> None:
        if window_days <= 0:
            raise ValueError(f"window_days must be positive, got {window_days}")
        self.end_day = int(end_day)
        self.window_days = int(window_days)
        start_day = max(end_day - window_days + 1, 0)
        _, domains, ips = pdns.window_records(start_day, end_day)

        malware_set = np.unique(
            np.fromiter((int(d) for d in malware_domain_ids), dtype=np.int64)
            if not isinstance(malware_domain_ids, np.ndarray)
            else malware_domain_ids
        )
        benign_set = np.unique(
            np.fromiter((int(d) for d in benign_domain_ids), dtype=np.int64)
            if not isinstance(benign_domain_ids, np.ndarray)
            else benign_domain_ids
        )

        is_malware = _in_sorted(domains, malware_set)
        is_benign = _in_sorted(domains, benign_set)
        is_unknown = ~(is_malware | is_benign)

        self._malware_ips, self._malware_ip_sole_owner = _value_owners(
            ips[is_malware], domains[is_malware]
        )
        self._malware_prefixes, self._malware_prefix_sole_owner = _value_owners(
            prefix24(ips[is_malware]), domains[is_malware]
        )
        self._unknown_ips = _sorted_unique(ips[is_unknown])
        self._unknown_prefixes = _sorted_unique(prefix24(ips[is_unknown]))

    # ------------------------------------------------------------------ #
    # F3 feature queries (per candidate domain)
    # ------------------------------------------------------------------ #

    def abuse_features(
        self, resolved_ips: np.ndarray, exclude_domain: Optional[int] = None
    ) -> Tuple[float, float, float, float]:
        """The four F3 features for a candidate's resolved IP set ``A``.

        Returns ``(frac_malware_ips, frac_malware_prefixes,
        n_unknown_ips, n_unknown_prefixes)``:

        * fraction of IPs in A pointed to by known malware domains during W,
        * fraction of A's /24 prefixes matching malware-pointed IPs,
        * number of A's IPs also used by unknown domains during W,
        * number of A's /24s also used by unknown domains during W.

        ``exclude_domain`` implements Fig. 5 hiding for the evidence base:
        when measuring a *known* malware domain with its label hidden, its
        own history must not count as "pointed to by known malware" — an
        IP/prefix whose sole known-malware user is the candidate itself is
        therefore ignored (abuse evidence must come from *other* domains).
        """
        ips = np.unique(np.asarray(resolved_ips, dtype=np.uint32))
        if ips.size == 0:
            return 0.0, 0.0, 0.0, 0.0
        prefixes = np.unique(prefix24(ips))
        ip_hits = _membership_count_excluding(
            ips, self._malware_ips, self._malware_ip_sole_owner, exclude_domain
        )
        prefix_hits = _membership_count_excluding(
            prefixes,
            self._malware_prefixes,
            self._malware_prefix_sole_owner,
            exclude_domain,
        )
        frac_ips = ip_hits / ips.size
        frac_prefixes = prefix_hits / prefixes.size
        n_unknown_ips = _membership_count(ips, self._unknown_ips)
        n_unknown_prefixes = _membership_count(prefixes, self._unknown_prefixes)
        return frac_ips, frac_prefixes, float(n_unknown_ips), float(n_unknown_prefixes)

    def abuse_features_many(
        self,
        ip_sets: Sequence[np.ndarray],
        exclude_domains: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """The four F3 features for every candidate at once, shape (k, 4).

        ``ip_sets[i]`` is candidate *i*'s resolved-IP array (need not be
        unique or sorted); ``exclude_domains[i]`` is the domain id whose
        sole-owner evidence must be ignored for candidate *i* (Fig. 5
        hiding), or ``-1`` for no exclusion.  Row *i* equals
        ``abuse_features(ip_sets[i], exclude_domain=...)`` bit-for-bit —
        the per-candidate loop survives as the reference implementation in
        the test suite.
        """
        k = len(ip_sets)
        out = np.zeros((k, 4), dtype=np.float64)
        if k == 0:
            return out
        sizes = np.fromiter((a.size for a in ip_sets), dtype=np.int64, count=k)
        if int(sizes.sum()) == 0:
            return out
        if exclude_domains is None:
            exclude = None
        else:
            exclude = np.asarray(exclude_domains, dtype=np.int64)
            if exclude.shape != (k,):
                raise ValueError(
                    f"exclude_domains must have shape ({k},), got {exclude.shape}"
                )

        segments = np.repeat(np.arange(k, dtype=np.int64), sizes)
        ips = np.concatenate(
            [np.asarray(a, dtype=np.uint32) for a in ip_sets]
        )
        # Per-segment dedup in one pass: pack (segment, ip) into int64 —
        # segment in the high 32 bits keeps the unique array segment-sorted.
        seg_ips, ip_seg = _unique_per_segment(ips, segments)
        n_ips = np.bincount(ip_seg, minlength=k)
        prefixes = prefix24(seg_ips)
        seg_prefixes, prefix_seg = _unique_per_segment(prefixes, ip_seg)
        n_prefixes = np.bincount(prefix_seg, minlength=k)

        ip_hits = _membership_counts_segmented(
            seg_ips, ip_seg, k,
            self._malware_ips, self._malware_ip_sole_owner, exclude,
        )
        prefix_hits = _membership_counts_segmented(
            seg_prefixes, prefix_seg, k,
            self._malware_prefixes, self._malware_prefix_sole_owner, exclude,
        )
        unknown_ips = _membership_counts_segmented(
            seg_ips, ip_seg, k, self._unknown_ips, None, None
        )
        unknown_prefixes = _membership_counts_segmented(
            seg_prefixes, prefix_seg, k, self._unknown_prefixes, None, None
        )

        with np.errstate(divide="ignore", invalid="ignore"):
            out[:, 0] = np.where(n_ips > 0, ip_hits / n_ips, 0.0)
            out[:, 1] = np.where(n_prefixes > 0, prefix_hits / n_prefixes, 0.0)
        out[:, 2] = unknown_ips
        out[:, 3] = unknown_prefixes
        return out

    def ip_was_malware_pointed(self, ip: int) -> bool:
        """Exact-IP membership in the abused set (used by FP analysis)."""
        return _membership_count(
            np.asarray([ip], dtype=np.uint32), self._malware_ips
        ) > 0

    def prefix_was_malware_pointed(self, ip: int) -> bool:
        return _membership_count(
            np.asarray([prefix24(int(ip))], dtype=np.uint32),
            self._malware_prefixes,
        ) > 0

    @property
    def n_malware_ips(self) -> int:
        return int(self._malware_ips.size)

    @property
    def n_malware_prefixes(self) -> int:
        return int(self._malware_prefixes.size)

    def __repr__(self) -> str:
        return (
            f"AbuseOracle(end_day={self.end_day}, window={self.window_days}, "
            f"malware_ips={self.n_malware_ips})"
        )


def _value_owners(
    values: np.ndarray, owners: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique *values* plus, per value, its sole owning domain.

    The owner entry is the domain id when exactly one distinct domain
    produced the value within the window, and -1 when several did (shared
    infrastructure, which remains evidence even under Fig. 5 hiding).
    """
    if values.size == 0:
        empty_vals = np.empty(0, dtype=values.dtype)
        return empty_vals, np.empty(0, dtype=np.int64)
    pairs = np.stack(
        [values.astype(np.int64), owners.astype(np.int64)], axis=1
    )
    unique_pairs = np.unique(pairs, axis=0)
    unique_values, first_index, counts = np.unique(
        unique_pairs[:, 0], return_index=True, return_counts=True
    )
    sole_owner = np.where(counts == 1, unique_pairs[first_index, 1], -1)
    return unique_values.astype(values.dtype), sole_owner


def _membership_count_excluding(
    candidates: np.ndarray,
    sorted_set: np.ndarray,
    sole_owner: np.ndarray,
    exclude_domain: Optional[int],
) -> int:
    """Members of *sorted_set*, skipping entries solely owned by the
    excluded domain."""
    if candidates.size == 0 or sorted_set.size == 0:
        return 0
    idx = np.searchsorted(sorted_set, candidates)
    idx = np.clip(idx, 0, sorted_set.size - 1)
    hits = sorted_set[idx] == candidates
    if exclude_domain is not None:
        hits &= sole_owner[idx] != int(exclude_domain)
    return int(np.count_nonzero(hits))


def _unique_per_segment(
    values: np.ndarray, segments: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique ``values`` within each segment, with their segment ids.

    Packs ``(segment, value)`` into one int64 key (segment high, value low)
    so a single ``np.unique`` both deduplicates within segments and leaves
    the result ordered by segment — the layout every downstream
    ``np.bincount`` reduction relies on.
    """
    packed = (segments.astype(np.int64) << np.int64(32)) | values.astype(np.int64)
    packed = np.unique(packed)
    out_segments = (packed >> np.int64(32)).astype(np.int64)
    out_values = (packed & np.int64(0xFFFFFFFF)).astype(values.dtype)
    return out_values, out_segments


def _membership_counts_segmented(
    values: np.ndarray,
    segments: np.ndarray,
    n_segments: int,
    sorted_set: np.ndarray,
    sole_owner: Optional[np.ndarray],
    exclude_domains: Optional[np.ndarray],
) -> np.ndarray:
    """Per-segment count of ``values`` present in ``sorted_set``.

    One ``searchsorted`` over the whole concatenated candidate array, then
    a weighted ``bincount`` back to per-segment totals.  With
    ``exclude_domains`` (one id per segment, ``-1`` = none), a hit whose
    sole owner is the segment's excluded domain is dropped — the same
    Fig. 5 hiding rule as :func:`_membership_count_excluding`.
    """
    if values.size == 0 or sorted_set.size == 0:
        return np.zeros(n_segments, dtype=np.int64)
    idx = np.searchsorted(sorted_set, values)
    idx = np.clip(idx, 0, sorted_set.size - 1)
    hits = sorted_set[idx] == values
    if exclude_domains is not None and sole_owner is not None:
        excluded = exclude_domains[segments]
        hits &= ~((excluded >= 0) & (sole_owner[idx] == excluded))
    return np.bincount(
        segments, weights=hits.astype(np.float64), minlength=n_segments
    ).astype(np.int64)


def _in_sorted(values: np.ndarray, sorted_set: np.ndarray) -> np.ndarray:
    """Vectorized membership of *values* in sorted unique *sorted_set*."""
    if sorted_set.size == 0:
        return np.zeros(values.shape, dtype=bool)
    idx = np.searchsorted(sorted_set, values)
    idx = np.clip(idx, 0, sorted_set.size - 1)
    return sorted_set[idx] == values

"""Append-only passive-DNS history store.

Rows are ``(day, domain_id, ip)`` observations — "domain *d* resolved to IP
*i* on day *t* somewhere in the monitored infrastructure".  Domain ids come
from the same interner used by the traffic traces, so the graph, the activity
index, and the pDNS history share one id space.

The store is columnar: three parallel NumPy arrays, appended per day and
kept sorted by day, which makes time-window slicing a pair of binary
searches.  This is the access pattern both the F3 features and the Notos
baseline need (everything they compute is over "the W days preceding t_now").
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

import numpy as np


class PassiveDNSDatabase:
    """Time-indexed (day, domain, ip) resolution history."""

    def __init__(self) -> None:
        self._day_chunks: List[np.ndarray] = []
        self._domain_chunks: List[np.ndarray] = []
        self._ip_chunks: List[np.ndarray] = []
        self._last_day: int = -1
        self._finalized: Union[
            Tuple[np.ndarray, np.ndarray, np.ndarray], None
        ] = None

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def observe_day(
        self,
        day: int,
        domain_ids: Union[np.ndarray, Iterable[int]],
        ips: Union[np.ndarray, Iterable[int]],
    ) -> None:
        """Append one day's resolutions (parallel domain/ip arrays).

        Days must be fed in non-decreasing order so the store stays sorted.
        """
        domain_arr = np.asarray(
            list(domain_ids) if not isinstance(domain_ids, np.ndarray) else domain_ids,
            dtype=np.int64,
        )
        ip_arr = np.asarray(
            list(ips) if not isinstance(ips, np.ndarray) else ips,
            dtype=np.uint32,
        )
        if domain_arr.shape != ip_arr.shape:
            raise ValueError("domain_ids and ips must be parallel arrays")
        if day < self._last_day:
            raise ValueError(
                f"days must be appended in order; got {day} after {self._last_day}"
            )
        if domain_arr.size == 0:
            self._last_day = day
            return
        self._day_chunks.append(np.full(domain_arr.size, day, dtype=np.int32))
        self._domain_chunks.append(domain_arr)
        self._ip_chunks.append(ip_arr)
        self._last_day = day
        self._finalized = None

    def observe(self, day: int, domain_id: int, ips: Iterable[int]) -> None:
        """Convenience single-domain ingestion."""
        ip_list = list(ips)
        self.observe_day(day, [domain_id] * len(ip_list), ip_list)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._finalized is None:
            if self._day_chunks:
                days = np.concatenate(self._day_chunks)
                domains = np.concatenate(self._domain_chunks)
                ips = np.concatenate(self._ip_chunks)
            else:
                days = np.empty(0, dtype=np.int32)
                domains = np.empty(0, dtype=np.int64)
                ips = np.empty(0, dtype=np.uint32)
            self._finalized = (days, domains, ips)
        return self._finalized

    def window_records(
        self, start_day: int, end_day: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (days, domain_ids, ips) with ``start_day <= day <= end_day``."""
        if start_day > end_day:
            raise ValueError(f"empty window [{start_day}, {end_day}]")
        days, domains, ips = self._columns()
        lo = np.searchsorted(days, start_day, side="left")
        hi = np.searchsorted(days, end_day, side="right")
        return days[lo:hi], domains[lo:hi], ips[lo:hi]

    def domain_ips_in_window(
        self, domain_id: int, start_day: int, end_day: int
    ) -> np.ndarray:
        """Unique IPs a single domain resolved to within the window."""
        _, domains, ips = self.window_records(start_day, end_day)
        return np.unique(ips[domains == domain_id])

    @property
    def n_records(self) -> int:
        return int(sum(chunk.size for chunk in self._day_chunks))

    @property
    def last_day(self) -> int:
        return self._last_day

    def __len__(self) -> int:
        return self.n_records

    def __repr__(self) -> str:
        return (
            f"PassiveDNSDatabase(records={self.n_records}, "
            f"last_day={self._last_day})"
        )

"""Passive-DNS substrate: historical domain->IP resolution records.

The paper's F3 "IP abuse" features consult "a large passive DNS database"
covering the five months before the observation day.  ``database`` stores the
(day, domain, ip) history; ``abuse`` precomputes, for a given window and
ground-truth snapshot, the abused IP/prefix sets so that per-candidate
feature queries are cheap set intersections.
"""

from repro.pdns.abuse import AbuseOracle
from repro.pdns.database import PassiveDNSDatabase

__all__ = ["AbuseOracle", "PassiveDNSDatabase"]

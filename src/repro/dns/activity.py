"""Rolling per-domain activity index (feeds the F2 features).

The paper's *domain activity* features ask, for a graph built on day
``t_now`` and a lookback of ``n`` days (n = 14 in the paper):

* on how many days within ``[t_now - n + 1, t_now]`` was the domain queried,
* for how many *consecutive* days ending with ``t_now`` was it queried,

and the same two quantities for the domain's effective 2LD.

The index stores one Python integer bitmask per key, with bit *d* set when
the key was active on absolute day *d*.  Window queries are then two shifts
and a popcount — fast enough to call once per candidate domain per day even
at ISP scale, and trivially incremental as new days of traffic arrive.
Keys are opaque integers, so the same class indexes FQDs and e2LDs (each in
its own id space).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class ActivityIndex:
    """Tracks on which absolute days each integer key was active."""

    def __init__(self) -> None:
        self._masks: Dict[int, int] = {}
        self._first_seen: Dict[int, int] = {}

    def record(self, day: int, keys: Iterable[int]) -> None:
        """Mark every key in *keys* active on *day*."""
        if day < 0:
            raise ValueError(f"day must be non-negative, got {day}")
        bit = 1 << day
        masks = self._masks
        first = self._first_seen
        for key in keys:
            key = int(key)
            masks[key] = masks.get(key, 0) | bit
            prior = first.get(key)
            if prior is None or day < prior:
                first[key] = day

    def is_active(self, key: int, day: int) -> bool:
        return bool(self._masks.get(key, 0) >> day & 1)

    def first_seen(self, key: int) -> Optional[int]:
        """First day the key was ever recorded active, or None."""
        return self._first_seen.get(key)

    def days_active(self, key: int, end_day: int, window: int) -> int:
        """Number of active days within ``[end_day - window + 1, end_day]``."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        mask = self._masks.get(key, 0)
        start = max(end_day - window + 1, 0)
        span = end_day - start + 1
        windowed = (mask >> start) & ((1 << span) - 1)
        return int(windowed).bit_count()

    def consecutive_days(self, key: int, end_day: int, window: int) -> int:
        """Length of the active streak ending exactly at *end_day*.

        Capped at *window*; zero if the key was not active on *end_day*.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        mask = self._masks.get(key, 0)
        streak = 0
        day = end_day
        while day >= 0 and streak < window and (mask >> day) & 1:
            streak += 1
            day -= 1
        return streak

    def days_with_activity(self, start_day: int, end_day: int) -> List[int]:
        """Days in ``[start_day, end_day]`` on which *any* key was active.

        One pass OR-combines all per-key masks, so the cost is O(keys)
        regardless of window width — cheap enough for per-day health checks
        even at ISP scale.  Used to detect collector gaps: a day inside the
        feature window with no activity at all means the index is missing
        data, not that every domain went quiet.
        """
        if start_day < 0:
            start_day = 0
        if end_day < start_day:
            return []
        combined = 0
        for mask in self._masks.values():
            combined |= mask
        return [
            day
            for day in range(start_day, end_day + 1)
            if (combined >> day) & 1
        ]

    def __len__(self) -> int:
        return len(self._masks)

    def __contains__(self, key: int) -> bool:
        return key in self._masks

    def __repr__(self) -> str:
        return f"ActivityIndex(keys={len(self._masks)})"

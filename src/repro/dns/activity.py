"""Rolling per-domain activity index (feeds the F2 features).

The paper's *domain activity* features ask, for a graph built on day
``t_now`` and a lookback of ``n`` days (n = 14 in the paper):

* on how many days within ``[t_now - n + 1, t_now]`` was the domain queried,
* for how many *consecutive* days ending with ``t_now`` was it queried,

and the same two quantities for the domain's effective 2LD.

The index stores one Python integer bitmask per key, with bit *d* set when
the key was active on absolute day *d*.  Scalar window queries are two
shifts and a popcount; the bulk queries (:meth:`days_active_bulk`,
:meth:`consecutive_days_bulk`) extract every candidate's windowed mask into
one ``uint64`` array and answer with branch-free bit arithmetic — popcount
for active days, a zero-fill trick for the trailing streak — so a full
day's candidate set is one NumPy pass instead of one Python loop iteration
per domain.  Keys are opaque integers, so the same class indexes FQDs and
e2LDs (each in its own id space).

:meth:`record` also maintains the OR of every per-key mask incrementally,
so the per-day health check (:meth:`days_with_activity`) is O(window), not
O(total keys).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: widest window the uint64 bulk path can hold; wider windows fall back to
#: the scalar per-key methods (the paper uses n = 14)
_BULK_MAX_SPAN = 64

_POPCOUNT_M1 = np.uint64(0x5555555555555555)
_POPCOUNT_M2 = np.uint64(0x3333333333333333)
_POPCOUNT_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_POPCOUNT_H01 = np.uint64(0x0101010101010101)


def _popcount_u64(values: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a uint64 array, as int64."""
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(values).astype(np.int64)
    x = values.copy()
    x -= (x >> np.uint64(1)) & _POPCOUNT_M1
    x = (x & _POPCOUNT_M2) + ((x >> np.uint64(2)) & _POPCOUNT_M2)
    x = (x + (x >> np.uint64(4))) & _POPCOUNT_M4
    return ((x * _POPCOUNT_H01) >> np.uint64(56)).astype(np.int64)


class ActivityIndex:
    """Tracks on which absolute days each integer key was active."""

    def __init__(self) -> None:
        self._masks: Dict[int, int] = {}
        self._first_seen: Dict[int, int] = {}
        self._combined: int = 0

    def record(self, day: int, keys: Iterable[int]) -> None:
        """Mark every key in *keys* active on *day*."""
        if day < 0:
            raise ValueError(f"day must be non-negative, got {day}")
        bit = 1 << day
        masks = self._masks
        first = self._first_seen
        recorded_any = False
        for key in keys:
            key = int(key)
            masks[key] = masks.get(key, 0) | bit
            recorded_any = True
            prior = first.get(key)
            if prior is None or day < prior:
                first[key] = day
        if recorded_any:
            self._combined |= bit

    def is_active(self, key: int, day: int) -> bool:
        return bool(self._masks.get(key, 0) >> day & 1)

    def first_seen(self, key: int) -> Optional[int]:
        """First day the key was ever recorded active, or None."""
        return self._first_seen.get(key)

    def days_active(self, key: int, end_day: int, window: int) -> int:
        """Number of active days within ``[end_day - window + 1, end_day]``."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        mask = self._masks.get(key, 0)
        start = max(end_day - window + 1, 0)
        span = end_day - start + 1
        windowed = (mask >> start) & ((1 << span) - 1)
        return int(windowed).bit_count()

    def consecutive_days(self, key: int, end_day: int, window: int) -> int:
        """Length of the active streak ending exactly at *end_day*.

        Capped at *window*; zero if the key was not active on *end_day*.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        mask = self._masks.get(key, 0)
        streak = 0
        day = end_day
        while day >= 0 and streak < window and (mask >> day) & 1:
            streak += 1
            day -= 1
        return streak

    # ------------------------------------------------------------------ #
    # bulk window queries (feature extraction hot path)
    # ------------------------------------------------------------------ #

    def _windowed_masks(
        self, keys: np.ndarray, end_day: int, window: int
    ) -> Tuple[np.ndarray, int]:
        """Per-key window bits as uint64 (bit ``i`` = day ``start + i``)."""
        start = max(end_day - window + 1, 0)
        span = end_day - start + 1
        span_mask = (1 << span) - 1
        get = self._masks.get
        masks = np.fromiter(
            ((get(int(key), 0) >> start) & span_mask for key in keys),
            dtype=np.uint64,
            count=len(keys),
        )
        return masks, span

    def days_active_bulk(
        self, keys: np.ndarray, end_day: int, window: int
    ) -> np.ndarray:
        """Vectorized :meth:`days_active` over an array of keys."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if min(window, end_day + 1) > _BULK_MAX_SPAN:
            return np.fromiter(
                (self.days_active(int(k), end_day, window) for k in keys),
                dtype=np.int64,
                count=keys.size,
            )
        masks, _span = self._windowed_masks(keys, end_day, window)
        return _popcount_u64(masks)

    def consecutive_days_bulk(
        self, keys: np.ndarray, end_day: int, window: int
    ) -> np.ndarray:
        """Vectorized :meth:`consecutive_days` over an array of keys.

        The streak ending at ``end_day`` equals the run of set bits at the
        *top* of the windowed mask.  Let ``z`` be the zero positions within
        the span; smearing ``z`` downward fills every bit at or below the
        highest zero, so ``popcount(smeared) = span - streak`` — no loop,
        no data-dependent branch.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if min(window, end_day + 1) > _BULK_MAX_SPAN:
            return np.fromiter(
                (self.consecutive_days(int(k), end_day, window) for k in keys),
                dtype=np.int64,
                count=keys.size,
            )
        masks, span = self._windowed_masks(keys, end_day, window)
        span_mask = np.uint64((1 << span) - 1) if span < 64 else np.uint64(0xFFFFFFFFFFFFFFFF)
        zeros = ~masks & span_mask
        for shift in (1, 2, 4, 8, 16, 32):
            zeros |= zeros >> np.uint64(shift)
        return span - _popcount_u64(zeros)

    # ------------------------------------------------------------------ #

    def days_with_activity(self, start_day: int, end_day: int) -> List[int]:
        """Days in ``[start_day, end_day]`` on which *any* key was active.

        Reads the combined mask maintained incrementally by :meth:`record`,
        so the cost is O(window) regardless of how many keys the index
        holds — cheap enough for per-day health checks even at ISP scale.
        Used to detect collector gaps: a day inside the feature window with
        no activity at all means the index is missing data, not that every
        domain went quiet.
        """
        if start_day < 0:
            start_day = 0
        if end_day < start_day:
            return []
        combined = self._combined
        return [
            day
            for day in range(start_day, end_day + 1)
            if (combined >> day) & 1
        ]

    def __len__(self) -> int:
        return len(self._masks)

    def __contains__(self, key: int) -> bool:
        return key in self._masks

    def __repr__(self) -> str:
        return f"ActivityIndex(keys={len(self._masks)})"

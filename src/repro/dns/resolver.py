"""The local-resolver vantage point: caching resolution with TTLs.

Segugio watches the DNS traffic between customer machines and the ISP's
local resolver and uses "only authoritative DNS responses that map a
domain to a set of valid IP addresses" (§II-A1).  Two consequences this
module makes concrete:

* **Caching** — the resolver answers repeat queries from cache within the
  record's TTL; the *client-side* stream (Segugio's vantage) still sees
  every query-response pair, cached or not, which is why a per-day
  machine-domain edge exists regardless of upstream cache state.
* **NXDOMAIN filtering** — queries for names with no authoritative answer
  (e.g. the miss-storm of DGA malware, the signal Pleiades [11] uses)
  produce no valid mapping and therefore never become graph edges;
  :func:`valid_a_responses` is that boundary.

:class:`StaticAuthority` is the authoritative side (a domain -> (IPs, TTL)
table); :class:`CachingResolver` implements lookup with positive and
negative caching and records hit/miss statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

NOERROR = "NOERROR"
NXDOMAIN = "NXDOMAIN"


@dataclass(frozen=True)
class DnsAnswer:
    """One resolver response as seen by the querying client."""

    domain: str
    status: str
    ips: Tuple[int, ...] = ()
    ttl: int = 0
    from_cache: bool = False

    @property
    def is_valid_mapping(self) -> bool:
        """True when this answer maps the name to at least one IP —
        the only kind of response Segugio's graph is built from."""
        return self.status == NOERROR and bool(self.ips)


class StaticAuthority:
    """Authoritative records: domain -> (IPs, TTL)."""

    def __init__(self, default_ttl: int = 300) -> None:
        if default_ttl <= 0:
            raise ValueError("default_ttl must be positive")
        self.default_ttl = default_ttl
        self._records: Dict[str, Tuple[Tuple[int, ...], int]] = {}

    def add_record(
        self, domain: str, ips: Iterable[int], ttl: Optional[int] = None
    ) -> None:
        ip_tuple = tuple(int(ip) for ip in ips)
        if not ip_tuple:
            raise ValueError("a record needs at least one IP")
        self._records[domain] = (ip_tuple, ttl or self.default_ttl)

    def remove_record(self, domain: str) -> None:
        self._records.pop(domain, None)

    def lookup(self, domain: str) -> Optional[Tuple[Tuple[int, ...], int]]:
        return self._records.get(domain)

    def __contains__(self, domain: str) -> bool:
        return domain in self._records

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class _CacheEntry:
    expires_at: float
    ips: Tuple[int, ...]
    ttl: int


@dataclass
class ResolverStats:
    queries: int = 0
    cache_hits: int = 0
    upstream_lookups: int = 0
    nxdomain: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0


class CachingResolver:
    """A local resolver with positive and negative TTL caching."""

    def __init__(
        self, authority: StaticAuthority, negative_ttl: int = 60
    ) -> None:
        if negative_ttl <= 0:
            raise ValueError("negative_ttl must be positive")
        self.authority = authority
        self.negative_ttl = negative_ttl
        self._cache: Dict[str, _CacheEntry] = {}
        self._negative: Dict[str, float] = {}
        self.stats = ResolverStats()

    def resolve(self, domain: str, now: float) -> DnsAnswer:
        """Answer a client query at wall-clock *now* (seconds)."""
        self.stats.queries += 1

        entry = self._cache.get(domain)
        if entry is not None and entry.expires_at > now:
            self.stats.cache_hits += 1
            return DnsAnswer(domain, NOERROR, entry.ips, entry.ttl, from_cache=True)

        negative_until = self._negative.get(domain)
        if negative_until is not None and negative_until > now:
            self.stats.cache_hits += 1
            self.stats.nxdomain += 1
            return DnsAnswer(domain, NXDOMAIN, from_cache=True)

        self.stats.upstream_lookups += 1
        record = self.authority.lookup(domain)
        if record is None:
            self.stats.nxdomain += 1
            self._negative[domain] = now + self.negative_ttl
            return DnsAnswer(domain, NXDOMAIN)
        ips, ttl = record
        self._cache[domain] = _CacheEntry(now + ttl, ips, ttl)
        return DnsAnswer(domain, NOERROR, ips, ttl)

    def flush(self) -> None:
        self._cache.clear()
        self._negative.clear()


def valid_a_responses(answers: Iterable[DnsAnswer]) -> Iterator[DnsAnswer]:
    """The graph-construction boundary: keep only valid A mappings.

    NXDOMAIN responses (DGA misses and typos) and empty answers are
    dropped here — they never become machine-domain edges (paper §II-A1),
    which is also why Segugio and Pleiades [11] see disjoint signals.
    """
    for answer in answers:
        if answer.is_valid_mapping:
            yield answer


def authority_from_table(
    domains: Iterable[Tuple[str, np.ndarray]], default_ttl: int = 300
) -> StaticAuthority:
    """Build an authority from (name, ip-array) pairs (scenario IP table)."""
    authority = StaticAuthority(default_ttl=default_ttl)
    for name, ips in domains:
        if len(ips):
            authority.add_record(name, (int(ip) for ip in ips))
    return authority

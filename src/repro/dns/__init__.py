"""DNS substrate: domain names, the public-suffix list, traces, activity.

This package models the slice of the DNS ecosystem Segugio observes: A-record
responses between ISP customers and the local resolver (``trace``), effective
second-level domain computation via the public-suffix list (``publicsuffix``),
and the rolling index of *when* each domain was queried (``activity``), which
feeds the paper's F2 "domain activity" features.
"""

from repro.dns.activity import ActivityIndex
from repro.dns.names import is_valid_domain, normalize_domain
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.records import (
    AResponse,
    format_ipv4,
    parse_ipv4,
    prefix24,
)
from repro.dns.trace import DayTrace, DayTraceBuilder

__all__ = [
    "ActivityIndex",
    "AResponse",
    "DayTrace",
    "DayTraceBuilder",
    "PublicSuffixList",
    "format_ipv4",
    "is_valid_domain",
    "normalize_domain",
    "parse_ipv4",
    "prefix24",
]

"""DNS record primitives: IPv4 helpers and A-record responses.

IPs are carried as unsigned 32-bit integers throughout the library; the
string forms exist only at the presentation boundary.  The /24 prefix of an
IP — used heavily by the F3 "IP abuse" features and by the Notos baseline —
is simply the integer shifted right by 8 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

IntArray = np.ndarray


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(ip: int) -> str:
    """Format a 32-bit integer as dotted-quad notation."""
    if not 0 <= ip <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix24(ip: Union[int, IntArray]) -> Union[int, IntArray]:
    """The /24 network prefix of an IP (scalar or array), as ``ip >> 8``."""
    if isinstance(ip, np.ndarray):
        return ip >> np.uint32(8)
    return int(ip) >> 8


def prefix16(ip: Union[int, IntArray]) -> Union[int, IntArray]:
    """The /16 network prefix of an IP (scalar or array), as ``ip >> 16``."""
    if isinstance(ip, np.ndarray):
        return ip >> np.uint32(16)
    return int(ip) >> 16


@dataclass(frozen=True)
class AResponse:
    """One authoritative A-record response observed on the wire.

    Attributes:
        day: Observation day (absolute simulation day ordinal).
        machine: Identifier of the querying machine.
        domain: The queried fully-qualified domain name.
        ips: The valid IPv4 addresses the domain resolved to, as integers.
    """

    day: int
    machine: str
    domain: str
    ips: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ips:
            raise ValueError("an A response must carry at least one IP")
        for ip in self.ips:
            if not 0 <= ip <= 0xFFFFFFFF:
                raise ValueError(f"IPv4 integer out of range: {ip}")

    def formatted_ips(self) -> Tuple[str, ...]:
        return tuple(format_ipv4(ip) for ip in self.ips)

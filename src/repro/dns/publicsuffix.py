"""Public-suffix list matching and effective second-level domains.

The paper computes each domain's *effective second-level domain* (e2LD) with
the Mozilla Public Suffix List, "augmented with a large custom list of DNS
zones owned by dynamic DNS providers" (§II-A, footnote 2).  This module
implements the standard PSL matching algorithm (longest-rule wins, ``*.``
wildcard rules, ``!`` exception rules) over an embedded representative
snapshot, and supports augmenting the rule set at run time — which is how the
dynamic-DNS zones are added.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.dns.names import domain_labels, normalize_domain

# A representative snapshot of the Mozilla PSL.  The full list has thousands
# of entries; this subset covers the TLD structure used by the synthetic
# domain universe plus the classic tricky cases (multi-label suffixes,
# wildcards, exceptions) so that the matching algorithm is fully exercised.
_DEFAULT_RULES = """
com
net
org
edu
gov
mil
int
info
biz
name
io
co
me
tv
cc
us
uk
co.uk
org.uk
ac.uk
gov.uk
net.uk
de
fr
it
nl
es
pl
ru
com.ru
net.ru
org.ru
cn
com.cn
net.cn
org.cn
jp
co.jp
ne.jp
or.jp
ac.jp
br
com.br
net.br
org.br
gov.br
kr
co.kr
or.kr
in
co.in
net.in
org.in
au
com.au
net.au
org.au
ca
mx
com.mx
ch
se
no
fi
dk
be
at
cz
gr
hu
pt
ro
tr
com.tr
ua
com.ua
za
co.za
// wildcard + exception rules (as in the real PSL)
*.ck
!www.ck
*.bd
*.er
"""


class PublicSuffixList:
    """PSL matcher with support for run-time augmentation.

    Matching follows publicsuffix.org's algorithm: among all rules matching a
    domain, the longest (most labels) wins; exception rules beat wildcard
    rules; if no rule matches, the top label is the public suffix.
    """

    def __init__(self, rules: Optional[Iterable[str]] = None) -> None:
        # rule (without markers) -> kind: "normal" | "wildcard" | "exception"
        self._rules: Dict[str, str] = {}
        lines = rules if rules is not None else _DEFAULT_RULES.splitlines()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("//"):
                continue
            self.add_rule(line)

    def add_rule(self, rule: str) -> None:
        """Add one PSL rule (``suffix``, ``*.suffix``, or ``!exception``)."""
        rule = rule.strip().lower()
        if rule.startswith("!"):
            self._rules[rule[1:]] = "exception"
        elif rule.startswith("*."):
            self._rules[rule[2:]] = "wildcard"
        else:
            self._rules[rule] = "normal"

    def add_private_suffixes(self, suffixes: Iterable[str]) -> None:
        """Augment the list, e.g. with dynamic-DNS provider zones.

        After ``psl.add_private_suffixes(["dyndns.com"])``, the e2LD of
        ``evil.dyndns.com`` is ``evil.dyndns.com`` itself, so each customer
        of the provider is tracked as a separate registrant — exactly the
        augmentation the paper applies.
        """
        for suffix in suffixes:
            self.add_rule(normalize_domain(suffix))

    def is_public_suffix(self, domain: str) -> bool:
        """True if *domain* itself is a public suffix."""
        domain = normalize_domain(domain)
        return self.public_suffix(domain) == domain

    def public_suffix(self, domain: str) -> str:
        """Return the public suffix of *domain* per the PSL algorithm."""
        domain = normalize_domain(domain)
        labels = domain_labels(domain)
        n = len(labels)
        best_len = 0  # number of labels in the winning rule's suffix
        exception_len: Optional[int] = None
        for i in range(n):
            candidate = ".".join(labels[i:])
            kind = self._rules.get(candidate)
            if kind is None:
                continue
            suffix_labels = n - i
            if kind == "exception":
                # Exception rule: the public suffix is one label shorter.
                exception_len = suffix_labels - 1
            elif kind == "wildcard":
                # "*.foo" matches "<anything>.foo": suffix is one label longer.
                if i > 0:
                    best_len = max(best_len, suffix_labels + 1)
                else:
                    # The domain *is* "foo"; the wildcard does not extend it.
                    best_len = max(best_len, suffix_labels)
            else:
                best_len = max(best_len, suffix_labels)
        if exception_len is not None:
            best_len = exception_len
        if best_len == 0:
            best_len = 1  # default rule: "*"
        best_len = min(best_len, n)
        return ".".join(labels[n - best_len:])

    def e2ld(self, domain: str) -> Optional[str]:
        """Effective 2LD (a.k.a. registered domain): suffix plus one label.

        Returns ``None`` when *domain* is itself a public suffix (it has no
        registrant-level name).
        """
        domain = normalize_domain(domain)
        suffix = self.public_suffix(domain)
        if domain == suffix:
            return None
        labels = domain_labels(domain)
        suffix_label_count = len(domain_labels(suffix))
        return ".".join(labels[-(suffix_label_count + 1):])

    def e2ld_or_self(self, domain: str) -> str:
        """Like :meth:`e2ld` but falls back to the domain itself."""
        return self.e2ld(domain) or normalize_domain(domain)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:
        return f"PublicSuffixList(rules={len(self._rules)})"


def default_psl() -> PublicSuffixList:
    """A fresh PSL with the embedded snapshot (no private augmentation)."""
    return PublicSuffixList()

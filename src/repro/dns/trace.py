"""One day of observed DNS traffic: the *who-queried-what* edge list.

A :class:`DayTrace` is the raw material for the machine-domain behavior
graph (paper §II-A1).  It stores, for one observation window (one day):

* the set of (machine, domain) query edges, deduplicated, as parallel NumPy
  id arrays, and
* the set of IPv4 addresses each queried domain resolved to during the day.

Machine and domain names are interned through shared :class:`Interner`
instances so that traces from different days of the same network live in a
common id space, which is what lets the activity index and passive-DNS
database reference domains across days without string comparisons.
"""

from __future__ import annotations

import io
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    TextIO,
    Tuple,
    Union,
)

import numpy as np

from repro.dns.records import AResponse, format_ipv4, parse_ipv4
from repro.utils.errors import FeedFormatError
from repro.utils.ids import Interner


def parse_trace_line(
    line: str, *, source: str = "trace", lineno: int = 0
) -> Tuple[str, str, List[int]]:
    """Parse one ``machine\\tdomain\\tip1,ip2`` record, or raise a located error.

    Every malformed shape — wrong column count, empty machine/domain field,
    invalid IPv4 — raises :class:`FeedFormatError` carrying *source* and the
    1-based *lineno*, so a truncated ``trace.tsv`` names the exact record at
    fault instead of surfacing as a bare unpack/int error.
    """
    parts = line.split("\t")
    if len(parts) != 3:
        raise FeedFormatError(
            f"expected 3 tab-separated fields "
            f"(machine, domain, ips), got {len(parts)}",
            source=source,
            line=lineno,
            category="bad_columns",
        )
    machine, domain, ips_text = parts
    if not machine or not domain:
        raise FeedFormatError(
            "machine and domain fields must be non-empty",
            source=source,
            line=lineno,
            category="empty_field",
        )
    ips: List[int] = []
    if ips_text:
        for token in ips_text.split(","):
            try:
                ips.append(parse_ipv4(token))
            except ValueError:
                raise FeedFormatError(
                    f"invalid IPv4 address {token!r}",
                    source=source,
                    line=lineno,
                    category="bad_ipv4",
                ) from None
    return machine, domain, ips


#: default number of records per streaming batch — small enough that one
#: batch of interned int64 ids is a rounding error next to the edge store,
#: large enough to amortize the per-batch numpy/IO overhead
DEFAULT_BATCH_SIZE = 65536


class TraceRecord(NamedTuple):
    """One parsed trace record with its 1-based source line number."""

    lineno: int
    machine: str
    domain: str
    ips: List[int]


class TraceBatch(NamedTuple):
    """A fixed-size chunk of interned trace records.

    ``machine_ids``/``domain_ids`` are parallel edge arrays; the
    resolution observations are flattened into parallel
    ``res_domains``/``res_ips`` arrays (one row per observed IP), so a
    batch is four dense numpy arrays regardless of how many IPs each
    record carried.
    """

    machine_ids: np.ndarray
    domain_ids: np.ndarray
    res_domains: np.ndarray
    res_ips: np.ndarray


class TraceReader:
    """Streaming record iterator over a trace TSV stream.

    The reader owns the day-header state machine that `DayTrace.load`
    and the lenient loader previously each re-implemented.  The
    established day is exposed as :attr:`day`; a ``# day N`` header is
    only allowed to *change* the day before the first edge record.  A
    header with a different day appearing after records have been
    parsed raises a located :class:`FeedFormatError` with
    ``category="late_day_header"`` — previously both loaders silently
    re-tagged every already-parsed edge to the new day at build time.

    *on_error* selects the failure mode: ``None`` (strict) re-raises
    each :class:`FeedFormatError`; a callable (lenient) receives the
    error and the offending line is skipped, keeping the established
    day.
    """

    def __init__(
        self,
        stream: Iterable[str],
        *,
        source: str = "trace",
        on_error: Optional[Callable[[FeedFormatError], None]] = None,
    ) -> None:
        self.stream = stream
        self.source = source
        self.on_error = on_error
        self.day = 0
        self.n_records = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        for lineno, line in enumerate(self.stream, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "day":
                    try:
                        self._apply_day_header(parts[1], lineno)
                    except FeedFormatError as error:
                        if self.on_error is None:
                            raise
                        self.on_error(error)
                continue
            try:
                machine, domain, ips = parse_trace_line(
                    line, source=self.source, lineno=lineno
                )
            except FeedFormatError as error:
                if self.on_error is None:
                    raise
                self.on_error(error)
                continue
            self.n_records += 1
            yield TraceRecord(lineno, machine, domain, ips)

    def _apply_day_header(self, token: str, lineno: int) -> None:
        try:
            candidate = int(token)
        except ValueError:
            raise FeedFormatError(
                f"non-numeric day header {token!r}",
                source=self.source,
                line=lineno,
                category="bad_day",
            ) from None
        if candidate < 0:
            raise FeedFormatError(
                f"day header must be non-negative, got {candidate}",
                source=self.source,
                line=lineno,
                category="bad_day",
            )
        if self.n_records and candidate != self.day:
            raise FeedFormatError(
                f"day header {candidate} after {self.n_records} record(s) "
                f"already read under day {self.day} — a mid-file header "
                f"cannot re-tag earlier records",
                source=self.source,
                line=lineno,
                category="late_day_header",
            )
        self.day = candidate


def iter_trace_batches(
    reader: TraceReader,
    machines: Interner,
    domains: Interner,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Iterator[TraceBatch]:
    """Intern a reader's records and yield them as fixed-size batches.

    Peak memory is bounded by *batch_size* records (plus the interners),
    which is what lets a paper-scale day flow into the edge store
    without ever materializing its edge list in Python.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    mids: List[int] = []
    dids: List[int] = []
    res_d: List[int] = []
    res_i: List[int] = []
    for record in reader:
        mid = machines.intern(record.machine)
        did = domains.intern(record.domain)
        mids.append(mid)
        dids.append(did)
        for ip in record.ips:
            res_d.append(did)
            res_i.append(ip)
        if len(mids) >= batch_size:
            yield _pack_batch(mids, dids, res_d, res_i)
            mids, dids, res_d, res_i = [], [], [], []
    if mids:
        yield _pack_batch(mids, dids, res_d, res_i)


def _pack_batch(
    mids: List[int], dids: List[int], res_d: List[int], res_i: List[int]
) -> TraceBatch:
    return TraceBatch(
        np.asarray(mids, dtype=np.int64),
        np.asarray(dids, dtype=np.int64),
        np.asarray(res_d, dtype=np.int64),
        np.asarray(res_i, dtype=np.uint32),
    )


class DayTrace:
    """Deduplicated machine-domain query edges plus per-domain resolutions."""

    def __init__(
        self,
        day: int,
        machines: Interner,
        domains: Interner,
        edge_machines: np.ndarray,
        edge_domains: np.ndarray,
        resolutions: Dict[int, np.ndarray],
    ) -> None:
        if edge_machines.shape != edge_domains.shape:
            raise ValueError("edge arrays must be parallel")
        self.day = int(day)
        self.machines = machines
        self.domains = domains
        self.edge_machines = np.asarray(edge_machines, dtype=np.int64)
        self.edge_domains = np.asarray(edge_domains, dtype=np.int64)
        self.resolutions = resolutions

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        day: int,
        machines: Interner,
        domains: Interner,
        edge_machines: Union[np.ndarray, Iterable[int]],
        edge_domains: Union[np.ndarray, Iterable[int]],
        resolutions: Optional[Dict[int, np.ndarray]] = None,
    ) -> "DayTrace":
        """Build a trace from possibly-duplicated edge id arrays."""
        em = np.asarray(list(edge_machines) if not isinstance(edge_machines, np.ndarray) else edge_machines, dtype=np.int64)
        ed = np.asarray(list(edge_domains) if not isinstance(edge_domains, np.ndarray) else edge_domains, dtype=np.int64)
        if em.shape != ed.shape:
            raise ValueError("edge arrays must be parallel")
        em, ed = _dedupe_edges(em, ed)
        return cls(day, machines, domains, em, ed, resolutions or {})

    @classmethod
    def from_responses(
        cls,
        day: int,
        responses: Iterable[AResponse],
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> "DayTrace":
        """Aggregate raw A responses into a deduplicated day trace."""
        machines = machines if machines is not None else Interner()
        domains = domains if domains is not None else Interner()
        edge_m, edge_d = [], []
        resolved: Dict[int, set] = {}
        for response in responses:
            if response.day != day:
                raise ValueError(
                    f"response for day {response.day} fed to trace of day {day}"
                )
            mid = machines.intern(response.machine)
            did = domains.intern(response.domain)
            edge_m.append(mid)
            edge_d.append(did)
            resolved.setdefault(did, set()).update(response.ips)
        resolutions = {
            did: np.array(sorted(ips), dtype=np.uint32)
            for did, ips in resolved.items()
        }
        return cls.build(day, machines, domains, edge_m, edge_d, resolutions)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        return int(self.edge_machines.shape[0])

    def unique_machine_ids(self) -> np.ndarray:
        return np.unique(self.edge_machines)

    def unique_domain_ids(self) -> np.ndarray:
        return np.unique(self.edge_domains)

    def resolved_ips(self, domain_id: int) -> np.ndarray:
        """IPs the domain resolved to this day (empty array if none seen)."""
        ips = self.resolutions.get(domain_id)
        if ips is None:
            return np.empty(0, dtype=np.uint32)
        return ips

    # ------------------------------------------------------------------ #
    # serialization (TSV: machine, domain, comma-joined IPs)
    # ------------------------------------------------------------------ #

    def save(self, stream_or_path: Union[str, TextIO]) -> None:
        """Write the trace as TSV lines ``machine\\tdomain\\tip1,ip2``."""
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path, "w") if own else stream_or_path
        try:
            stream.write(f"# day {self.day}\n")
            for mid, did in zip(self.edge_machines, self.edge_domains):
                ips = ",".join(format_ipv4(int(ip)) for ip in self.resolved_ips(int(did)))
                stream.write(
                    f"{self.machines.name(int(mid))}\t"
                    f"{self.domains.name(int(did))}\t{ips}\n"
                )
        finally:
            if own:
                stream.close()

    @classmethod
    def load(
        cls,
        stream_or_path: Union[str, TextIO],
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> "DayTrace":
        """Read a trace previously written by :meth:`save`.

        Malformed records — wrong column counts, non-numeric day headers,
        day headers appearing after edge records, invalid IPv4 strings —
        raise :class:`FeedFormatError` naming the file and 1-based line
        number of the offending record.
        """
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path) if own else stream_or_path
        source = (
            stream_or_path
            if own
            else getattr(stream, "name", "<trace stream>")
        )
        machines = machines if machines is not None else Interner()
        domains = domains if domains is not None else Interner()
        try:
            reader = TraceReader(stream, source=source)
            edge_m, edge_d = [], []
            resolutions: Dict[int, set] = {}
            for record in reader:
                mid = machines.intern(record.machine)
                did = domains.intern(record.domain)
                edge_m.append(mid)
                edge_d.append(did)
                if record.ips:
                    resolutions.setdefault(did, set()).update(record.ips)
            packed = {
                did: np.array(sorted(ips), dtype=np.uint32)
                for did, ips in resolutions.items()
            }
            return cls.build(
                reader.day, machines, domains, edge_m, edge_d, packed
            )
        finally:
            if own:
                stream.close()

    @classmethod
    def load_streaming(
        cls,
        stream_or_path: Union[str, TextIO],
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> "DayTrace":
        """Read a saved trace through fixed-size batches.

        Equivalent output to :meth:`load` (same strict error behavior,
        bit-identical edge/resolution arrays), but records flow through
        :func:`iter_trace_batches` into a :class:`DayTraceBuilder`, so
        Python-side peak memory is bounded by *batch_size* records
        instead of the whole file.
        """
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path) if own else stream_or_path
        source = (
            stream_or_path
            if own
            else getattr(stream, "name", "<trace stream>")
        )
        machines = machines if machines is not None else Interner()
        domains = domains if domains is not None else Interner()
        try:
            reader = TraceReader(stream, source=source)
            builder = DayTraceBuilder(0, machines, domains)
            for batch in iter_trace_batches(
                reader, machines, domains, batch_size=batch_size
            ):
                feed_builder(builder, batch)
            builder.set_day(reader.day)
            return builder.build()
        finally:
            if own:
                stream.close()

    def to_tsv(self) -> str:
        buffer = io.StringIO()
        self.save(buffer)
        return buffer.getvalue()

    def __repr__(self) -> str:
        return (
            f"DayTrace(day={self.day}, edges={self.n_edges}, "
            f"machines={len(self.unique_machine_ids())}, "
            f"domains={len(self.unique_domain_ids())})"
        )


class DayTraceBuilder:
    """Incremental construction of a day trace from collector chunks.

    Real collectors emit traffic in chunks (hourly files, streaming
    batches); the builder accumulates edges and resolutions across any
    number of :meth:`add_edges` / :meth:`add_responses` calls and
    deduplicates once at :meth:`build` time.  Interners may be shared with
    other days, exactly like :meth:`DayTrace.build`.
    """

    def __init__(
        self,
        day: int,
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> None:
        self.day = int(day)
        self.machines = machines if machines is not None else Interner()
        self.domains = domains if domains is not None else Interner()
        self._machine_chunks: list = []
        self._domain_chunks: list = []
        self._resolved: Dict[int, set] = {}
        self._built = False

    def set_day(self, day: int) -> "DayTraceBuilder":
        """Re-tag the day under construction (a streamed file reveals its
        day header before any records, but the builder is created first)."""
        self._check_open()
        if day < 0:
            raise ValueError(f"day must be non-negative, got {day}")
        self.day = int(day)
        return self

    def add_edges(
        self,
        edge_machines: Union[np.ndarray, Iterable[int]],
        edge_domains: Union[np.ndarray, Iterable[int]],
    ) -> "DayTraceBuilder":
        """Append a chunk of (machine id, domain id) pairs."""
        self._check_open()
        em = np.asarray(
            list(edge_machines)
            if not isinstance(edge_machines, np.ndarray)
            else edge_machines,
            dtype=np.int64,
        )
        ed = np.asarray(
            list(edge_domains)
            if not isinstance(edge_domains, np.ndarray)
            else edge_domains,
            dtype=np.int64,
        )
        if em.shape != ed.shape:
            raise ValueError("edge arrays must be parallel")
        self._machine_chunks.append(em)
        self._domain_chunks.append(ed)
        return self

    def add_responses(self, responses: Iterable[AResponse]) -> "DayTraceBuilder":
        """Append a chunk of raw A responses (names interned here)."""
        self._check_open()
        em, ed = [], []
        for response in responses:
            if response.day != self.day:
                raise ValueError(
                    f"response for day {response.day} fed to builder of day "
                    f"{self.day}"
                )
            mid = self.machines.intern(response.machine)
            did = self.domains.intern(response.domain)
            em.append(mid)
            ed.append(did)
            self._resolved.setdefault(did, set()).update(response.ips)
        if em:
            self.add_edges(em, ed)
        return self

    def add_resolution(self, domain_id: int, ips: Iterable[int]) -> "DayTraceBuilder":
        """Record resolved IPs for a domain id (unioned across chunks)."""
        self._check_open()
        self._resolved.setdefault(int(domain_id), set()).update(
            int(ip) for ip in ips
        )
        return self

    @property
    def n_pending_edges(self) -> int:
        return int(sum(chunk.size for chunk in self._machine_chunks))

    def build(self) -> DayTrace:
        """Deduplicate everything accumulated and seal the builder."""
        self._check_open()
        self._built = True
        if self._machine_chunks:
            em = np.concatenate(self._machine_chunks)
            ed = np.concatenate(self._domain_chunks)
        else:
            em = np.empty(0, dtype=np.int64)
            ed = np.empty(0, dtype=np.int64)
        resolutions = {
            did: np.array(sorted(ips), dtype=np.uint32)
            for did, ips in self._resolved.items()
        }
        return DayTrace.build(
            self.day, self.machines, self.domains, em, ed, resolutions
        )

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("builder already built; create a new one")


def feed_builder(builder: DayTraceBuilder, batch: TraceBatch) -> None:
    """Append one :class:`TraceBatch` to a builder, edges and resolutions."""
    builder.add_edges(batch.machine_ids, batch.domain_ids)
    if batch.res_domains.size:
        order = np.argsort(batch.res_domains, kind="stable")
        dom_sorted = batch.res_domains[order]
        ips_sorted = batch.res_ips[order]
        uniques, starts = np.unique(dom_sorted, return_index=True)
        bounds = np.append(starts, dom_sorted.size)
        for i, did in enumerate(uniques):
            builder.add_resolution(
                int(did), ips_sorted[bounds[i] : bounds[i + 1]]
            )


def _dedupe_edges(
    edge_machines: np.ndarray, edge_domains: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate parallel (machine, domain) arrays, preserving pairs."""
    if edge_machines.size == 0:
        return edge_machines, edge_domains
    # Pack each pair into one int64 key; ids are dense and far below 2**31.
    max_domain = int(edge_domains.max()) + 1
    keys = edge_machines * max_domain + edge_domains
    unique_keys = np.unique(keys)
    return unique_keys // max_domain, unique_keys % max_domain

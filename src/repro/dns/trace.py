"""One day of observed DNS traffic: the *who-queried-what* edge list.

A :class:`DayTrace` is the raw material for the machine-domain behavior
graph (paper §II-A1).  It stores, for one observation window (one day):

* the set of (machine, domain) query edges, deduplicated, as parallel NumPy
  id arrays, and
* the set of IPv4 addresses each queried domain resolved to during the day.

Machine and domain names are interned through shared :class:`Interner`
instances so that traces from different days of the same network live in a
common id space, which is what lets the activity index and passive-DNS
database reference domains across days without string comparisons.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.dns.records import AResponse, format_ipv4, parse_ipv4
from repro.utils.errors import FeedFormatError
from repro.utils.ids import Interner


def parse_trace_line(
    line: str, *, source: str = "trace", lineno: int = 0
) -> Tuple[str, str, List[int]]:
    """Parse one ``machine\\tdomain\\tip1,ip2`` record, or raise a located error.

    Every malformed shape — wrong column count, empty machine/domain field,
    invalid IPv4 — raises :class:`FeedFormatError` carrying *source* and the
    1-based *lineno*, so a truncated ``trace.tsv`` names the exact record at
    fault instead of surfacing as a bare unpack/int error.
    """
    parts = line.split("\t")
    if len(parts) != 3:
        raise FeedFormatError(
            f"expected 3 tab-separated fields "
            f"(machine, domain, ips), got {len(parts)}",
            source=source,
            line=lineno,
            category="bad_columns",
        )
    machine, domain, ips_text = parts
    if not machine or not domain:
        raise FeedFormatError(
            "machine and domain fields must be non-empty",
            source=source,
            line=lineno,
            category="empty_field",
        )
    ips: List[int] = []
    if ips_text:
        for token in ips_text.split(","):
            try:
                ips.append(parse_ipv4(token))
            except ValueError:
                raise FeedFormatError(
                    f"invalid IPv4 address {token!r}",
                    source=source,
                    line=lineno,
                    category="bad_ipv4",
                ) from None
    return machine, domain, ips


class DayTrace:
    """Deduplicated machine-domain query edges plus per-domain resolutions."""

    def __init__(
        self,
        day: int,
        machines: Interner,
        domains: Interner,
        edge_machines: np.ndarray,
        edge_domains: np.ndarray,
        resolutions: Dict[int, np.ndarray],
    ) -> None:
        if edge_machines.shape != edge_domains.shape:
            raise ValueError("edge arrays must be parallel")
        self.day = int(day)
        self.machines = machines
        self.domains = domains
        self.edge_machines = np.asarray(edge_machines, dtype=np.int64)
        self.edge_domains = np.asarray(edge_domains, dtype=np.int64)
        self.resolutions = resolutions

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        day: int,
        machines: Interner,
        domains: Interner,
        edge_machines: Union[np.ndarray, Iterable[int]],
        edge_domains: Union[np.ndarray, Iterable[int]],
        resolutions: Optional[Dict[int, np.ndarray]] = None,
    ) -> "DayTrace":
        """Build a trace from possibly-duplicated edge id arrays."""
        em = np.asarray(list(edge_machines) if not isinstance(edge_machines, np.ndarray) else edge_machines, dtype=np.int64)
        ed = np.asarray(list(edge_domains) if not isinstance(edge_domains, np.ndarray) else edge_domains, dtype=np.int64)
        if em.shape != ed.shape:
            raise ValueError("edge arrays must be parallel")
        em, ed = _dedupe_edges(em, ed)
        return cls(day, machines, domains, em, ed, resolutions or {})

    @classmethod
    def from_responses(
        cls,
        day: int,
        responses: Iterable[AResponse],
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> "DayTrace":
        """Aggregate raw A responses into a deduplicated day trace."""
        machines = machines if machines is not None else Interner()
        domains = domains if domains is not None else Interner()
        edge_m, edge_d = [], []
        resolved: Dict[int, set] = {}
        for response in responses:
            if response.day != day:
                raise ValueError(
                    f"response for day {response.day} fed to trace of day {day}"
                )
            mid = machines.intern(response.machine)
            did = domains.intern(response.domain)
            edge_m.append(mid)
            edge_d.append(did)
            resolved.setdefault(did, set()).update(response.ips)
        resolutions = {
            did: np.array(sorted(ips), dtype=np.uint32)
            for did, ips in resolved.items()
        }
        return cls.build(day, machines, domains, edge_m, edge_d, resolutions)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def n_edges(self) -> int:
        return int(self.edge_machines.shape[0])

    def unique_machine_ids(self) -> np.ndarray:
        return np.unique(self.edge_machines)

    def unique_domain_ids(self) -> np.ndarray:
        return np.unique(self.edge_domains)

    def resolved_ips(self, domain_id: int) -> np.ndarray:
        """IPs the domain resolved to this day (empty array if none seen)."""
        ips = self.resolutions.get(domain_id)
        if ips is None:
            return np.empty(0, dtype=np.uint32)
        return ips

    # ------------------------------------------------------------------ #
    # serialization (TSV: machine, domain, comma-joined IPs)
    # ------------------------------------------------------------------ #

    def save(self, stream_or_path: Union[str, TextIO]) -> None:
        """Write the trace as TSV lines ``machine\\tdomain\\tip1,ip2``."""
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path, "w") if own else stream_or_path
        try:
            stream.write(f"# day {self.day}\n")
            for mid, did in zip(self.edge_machines, self.edge_domains):
                ips = ",".join(format_ipv4(int(ip)) for ip in self.resolved_ips(int(did)))
                stream.write(
                    f"{self.machines.name(int(mid))}\t"
                    f"{self.domains.name(int(did))}\t{ips}\n"
                )
        finally:
            if own:
                stream.close()

    @classmethod
    def load(
        cls,
        stream_or_path: Union[str, TextIO],
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> "DayTrace":
        """Read a trace previously written by :meth:`save`.

        Malformed records — wrong column counts, non-numeric day headers,
        invalid IPv4 strings — raise :class:`FeedFormatError` naming the
        file and 1-based line number of the offending record.
        """
        own = isinstance(stream_or_path, str)
        stream = open(stream_or_path) if own else stream_or_path
        source = (
            stream_or_path
            if own
            else getattr(stream, "name", "<trace stream>")
        )
        machines = machines if machines is not None else Interner()
        domains = domains if domains is not None else Interner()
        try:
            day = 0
            edge_m, edge_d = [], []
            resolutions: Dict[int, set] = {}
            for lineno, line in enumerate(stream, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                if line.startswith("#"):
                    parts = line[1:].split()
                    if len(parts) == 2 and parts[0] == "day":
                        try:
                            day = int(parts[1])
                        except ValueError:
                            raise FeedFormatError(
                                f"non-numeric day header {parts[1]!r}",
                                source=source,
                                line=lineno,
                                category="bad_day",
                            ) from None
                        if day < 0:
                            raise FeedFormatError(
                                f"day header must be non-negative, got {day}",
                                source=source,
                                line=lineno,
                                category="bad_day",
                            )
                    continue
                machine, domain, ips = parse_trace_line(
                    line, source=source, lineno=lineno
                )
                mid = machines.intern(machine)
                did = domains.intern(domain)
                edge_m.append(mid)
                edge_d.append(did)
                if ips:
                    resolutions.setdefault(did, set()).update(ips)
            packed = {
                did: np.array(sorted(ips), dtype=np.uint32)
                for did, ips in resolutions.items()
            }
            return cls.build(day, machines, domains, edge_m, edge_d, packed)
        finally:
            if own:
                stream.close()

    def to_tsv(self) -> str:
        buffer = io.StringIO()
        self.save(buffer)
        return buffer.getvalue()

    def __repr__(self) -> str:
        return (
            f"DayTrace(day={self.day}, edges={self.n_edges}, "
            f"machines={len(self.unique_machine_ids())}, "
            f"domains={len(self.unique_domain_ids())})"
        )


class DayTraceBuilder:
    """Incremental construction of a day trace from collector chunks.

    Real collectors emit traffic in chunks (hourly files, streaming
    batches); the builder accumulates edges and resolutions across any
    number of :meth:`add_edges` / :meth:`add_responses` calls and
    deduplicates once at :meth:`build` time.  Interners may be shared with
    other days, exactly like :meth:`DayTrace.build`.
    """

    def __init__(
        self,
        day: int,
        machines: Optional[Interner] = None,
        domains: Optional[Interner] = None,
    ) -> None:
        self.day = int(day)
        self.machines = machines if machines is not None else Interner()
        self.domains = domains if domains is not None else Interner()
        self._machine_chunks: list = []
        self._domain_chunks: list = []
        self._resolved: Dict[int, set] = {}
        self._built = False

    def add_edges(
        self,
        edge_machines: Union[np.ndarray, Iterable[int]],
        edge_domains: Union[np.ndarray, Iterable[int]],
    ) -> "DayTraceBuilder":
        """Append a chunk of (machine id, domain id) pairs."""
        self._check_open()
        em = np.asarray(
            list(edge_machines)
            if not isinstance(edge_machines, np.ndarray)
            else edge_machines,
            dtype=np.int64,
        )
        ed = np.asarray(
            list(edge_domains)
            if not isinstance(edge_domains, np.ndarray)
            else edge_domains,
            dtype=np.int64,
        )
        if em.shape != ed.shape:
            raise ValueError("edge arrays must be parallel")
        self._machine_chunks.append(em)
        self._domain_chunks.append(ed)
        return self

    def add_responses(self, responses: Iterable[AResponse]) -> "DayTraceBuilder":
        """Append a chunk of raw A responses (names interned here)."""
        self._check_open()
        em, ed = [], []
        for response in responses:
            if response.day != self.day:
                raise ValueError(
                    f"response for day {response.day} fed to builder of day "
                    f"{self.day}"
                )
            mid = self.machines.intern(response.machine)
            did = self.domains.intern(response.domain)
            em.append(mid)
            ed.append(did)
            self._resolved.setdefault(did, set()).update(response.ips)
        if em:
            self.add_edges(em, ed)
        return self

    def add_resolution(self, domain_id: int, ips: Iterable[int]) -> "DayTraceBuilder":
        """Record resolved IPs for a domain id (unioned across chunks)."""
        self._check_open()
        self._resolved.setdefault(int(domain_id), set()).update(
            int(ip) for ip in ips
        )
        return self

    @property
    def n_pending_edges(self) -> int:
        return int(sum(chunk.size for chunk in self._machine_chunks))

    def build(self) -> DayTrace:
        """Deduplicate everything accumulated and seal the builder."""
        self._check_open()
        self._built = True
        if self._machine_chunks:
            em = np.concatenate(self._machine_chunks)
            ed = np.concatenate(self._domain_chunks)
        else:
            em = np.empty(0, dtype=np.int64)
            ed = np.empty(0, dtype=np.int64)
        resolutions = {
            did: np.array(sorted(ips), dtype=np.uint32)
            for did, ips in self._resolved.items()
        }
        return DayTrace.build(
            self.day, self.machines, self.domains, em, ed, resolutions
        )

    def _check_open(self) -> None:
        if self._built:
            raise RuntimeError("builder already built; create a new one")


def _dedupe_edges(
    edge_machines: np.ndarray, edge_domains: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicate parallel (machine, domain) arrays, preserving pairs."""
    if edge_machines.size == 0:
        return edge_machines, edge_domains
    # Pack each pair into one int64 key; ids are dense and far below 2**31.
    max_domain = int(edge_domains.max()) + 1
    keys = edge_machines * max_domain + edge_domains
    unique_keys = np.unique(keys)
    return unique_keys // max_domain, unique_keys % max_domain

"""Incremental domain-id -> effective-2LD-id mapping.

Several parts of the system reason at e2LD granularity: pruning rule R4
("discard domains whose effective 2LD is queried by >= theta_m machines"),
the e2LD half of the F2 activity features, and the false-positive analysis
of Table III.  Computing e2LDs through the PSL is string work, so this index
does it once per distinct FQD and exposes the result as a dense int array
aligned with the domain interner — NumPy-indexable like every other per-node
annotation.

The index grows lazily as the shared domain interner grows (new domains
appear every day), and e2LDs get their own interner/id space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dns.publicsuffix import PublicSuffixList
from repro.utils.ids import Interner


class E2ldIndex:
    """Dense mapping from FQD ids to e2LD ids, kept in sync with an interner."""

    def __init__(
        self, domains: Interner, psl: Optional[PublicSuffixList] = None
    ) -> None:
        self._domains = domains
        self._psl = psl if psl is not None else PublicSuffixList()
        self.e2lds = Interner()
        self._mapping: list = []

    def _ensure(self, n: int) -> None:
        """Extend the mapping to cover domain ids < n."""
        for domain_id in range(len(self._mapping), n):
            name = self._domains.name(domain_id)
            e2ld = self._psl.e2ld_or_self(name)
            self._mapping.append(self.e2lds.intern(e2ld))

    def e2ld_id_of(self, domain_id: int) -> int:
        """The e2LD id for one FQD id."""
        self._ensure(domain_id + 1)
        return self._mapping[domain_id]

    def e2ld_of(self, domain_id: int) -> str:
        """The e2LD string for one FQD id."""
        return self.e2lds.name(self.e2ld_id_of(domain_id))

    def map_array(self) -> np.ndarray:
        """int64 array aligned with the domain interner: FQD id -> e2LD id."""
        self._ensure(len(self._domains))
        return np.asarray(self._mapping, dtype=np.int64)

    @property
    def psl(self) -> PublicSuffixList:
        return self._psl

    def __len__(self) -> int:
        self._ensure(len(self._domains))
        return len(self.e2lds)

    def __repr__(self) -> str:
        return f"E2ldIndex(domains={len(self._domains)}, e2lds={len(self.e2lds)})"

"""Domain-name normalization and validation.

All domain strings entering the system pass through :func:`normalize_domain`
so that graph nodes, blacklist entries, and whitelist entries agree on a
canonical form (lowercase, no trailing dot).
"""

from __future__ import annotations

import re
from typing import List

_LABEL_RE = re.compile(r"^[a-z0-9_]([a-z0-9_-]{0,61}[a-z0-9_])?$")

MAX_DOMAIN_LENGTH = 253
MAX_LABEL_LENGTH = 63


def normalize_domain(domain: str) -> str:
    """Return the canonical form of *domain*.

    Lowercases and strips surrounding whitespace and a single trailing dot
    (the DNS root).  Raises ``ValueError`` for empty input.
    """
    if not isinstance(domain, str):
        raise TypeError(f"domain must be a string, got {type(domain).__name__}")
    cleaned = domain.strip().lower().rstrip(".")
    if not cleaned:
        raise ValueError(f"empty domain name: {domain!r}")
    return cleaned


def domain_labels(domain: str) -> List[str]:
    """Split a (normalized) domain into its dot-separated labels."""
    return domain.split(".")


def is_valid_domain(domain: str) -> bool:
    """Check RFC-style syntactic validity of a normalized domain name."""
    if not domain or len(domain) > MAX_DOMAIN_LENGTH:
        return False
    labels = domain.split(".")
    if any(len(label) > MAX_LABEL_LENGTH for label in labels):
        return False
    return all(_LABEL_RE.match(label) for label in labels)


def parent_domains(domain: str) -> List[str]:
    """All proper parents, shortest last: ``a.b.c`` -> ``['b.c', 'c']``."""
    labels = domain_labels(domain)
    return [".".join(labels[i:]) for i in range(1, len(labels))]


def subdomain_of(domain: str, ancestor: str) -> bool:
    """True if *domain* equals *ancestor* or lies underneath it."""
    return domain == ancestor or domain.endswith("." + ancestor)

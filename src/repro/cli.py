"""Command-line interface: run experiments, demos, and deployments.

Examples::

    segugio demo --seed 7
    segugio experiment fig6 --scale small
    segugio experiment table1 --scale benchmark
    segugio track --days 3 --checkpoint /tmp/run.ckpt
    segugio track --days 5 --resume /tmp/run.ckpt --checkpoint /tmp/run.ckpt
    segugio track --days 3 --telemetry-dir /tmp/telemetry
    segugio track --days 3 --telemetry-dir /tmp/telemetry --profile \\
        --budgets examples/budgets.json
    segugio track --days 3 --alert-rules rules.json --task-timeout 120
    segugio telemetry /tmp/telemetry/manifest.json
    segugio profile /tmp/telemetry --html profile.html
    segugio bench --e2e --out BENCH_e2e.json
    segugio explain --telemetry-dir /tmp/telemetry --domain evil.example
    segugio monitor /tmp/telemetry --html dashboard.html
    segugio monitor /tmp/telemetry --reference rolling:7
    segugio chaos --plan examples/fault-plan.json --out /tmp/chaos
    segugio export-day /tmp/obs --day-offset 2
    segugio health /tmp/obs
    segugio classify-dir /tmp/obs --lenient
    segugio list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.eval import experiments as E
from repro.eval.figures import ascii_roc
from repro.eval.reporting import ascii_table, histogram, roc_series_table
from repro.synth.scenario import Scenario


def _scenario(scale: str, seed: int) -> Scenario:
    if scale == "small":
        return Scenario.small(seed=seed)
    if scale == "benchmark":
        return Scenario.benchmark(seed=seed)
    raise SystemExit(f"unknown scale {scale!r} (use small|benchmark)")


def _run_demo(args: argparse.Namespace) -> None:
    from repro import Segugio
    from repro.core.pipeline import SegugioConfig

    scenario = _scenario(args.scale, args.seed)
    train_ctx = scenario.context("isp1", scenario.eval_day(0))
    test_ctx = scenario.context("isp1", scenario.eval_day(5))
    model = Segugio(SegugioConfig(n_jobs=_jobs(args))).fit(train_ctx)
    report = model.classify(test_ctx)
    print(f"trained on day {train_ctx.day}: {model.training_set_}")
    print(f"scored {len(report)} unknown domains on day {test_ctx.day}")
    print("top detections:")
    for name, score in report.detections(threshold=0.0)[:15]:
        truth = "MALWARE" if scenario.is_true_malware(name) else "benign?"
        print(f"  {score:6.3f}  {name:<40s} [{truth}]")


def _run_experiment(args: argparse.Namespace) -> None:
    scenario = _scenario(args.scale, args.seed)
    name = args.name
    if name == "table1":
        rows = E.table1_dataset_summary(scenario)
        print(
            ascii_table(
                list(rows[0].keys()),
                [list(r.values()) for r in rows],
                title="Table I: experiment data (before graph pruning)",
            )
        )
    elif name == "fig3":
        result = E.fig3_infection_behavior(scenario, "isp1", scenario.eval_day(0))
        print("Fig. 3: malware domains queried per infected machine")
        for count, n in result["counts"].items():
            print(f"  {count:3d} domains: {n}")
        print(f"  query >1 domain: {result['frac_query_more_than_one']:.1%}")
    elif name == "pruning":
        print(E.pruning_statistics(scenario))
    elif name == "fig6":
        results = E.fig6_cross_day_and_network(scenario)
        curves = {e.name: e.roc for e in results.values()}
        print(roc_series_table(curves, title="Fig. 6: cross-day / cross-network"))
        print()
        print(ascii_roc(curves, max_fpr=0.01))
    elif name == "fig7":
        results = E.fig7_feature_ablation(scenario)
        print(
            roc_series_table(
                {label: e.roc for label, e in results.items()},
                title="Fig. 7: feature ablation",
            )
        )
    elif name == "fig8":
        result = E.fig8_cross_family(scenario)
        print(result.summary())
    elif name == "fig10":
        print(E.fig10_public_blacklist(scenario).summary())
    elif name == "crossbl":
        result = E.cross_blacklist_test(scenario)
        print({k: v for k, v in result.items() if k != "roc"})
    elif name == "fig11":
        result = E.fig11_early_detection(scenario, n_days=2)
        print(
            histogram(
                result["gaps"],
                bins=list(range(0, 36, 5)),
                title="Fig. 11: days from detection to blacklisting",
            )
        )
    elif name == "fig12":
        result = E.fig12_notos_comparison(scenario)
        print(result.summary())
        print("Table IV: Notos FP breakdown:", result.notos_fp_breakdown)
        curves = {"Segugio": result.segugio_roc, "Notos": result.notos_roc}
        if result.exposure_roc is not None:
            curves["Exposure"] = result.exposure_roc
        print()
        print(ascii_roc(curves, max_fpr=0.05))
    elif name == "lbp":
        result = E.graph_inference_comparison(scenario)
        print(
            roc_series_table(
                result["curves"], title="Graph-inference comparison"
            )
        )
    elif name == "perf":
        timing = E.performance_timing(scenario)
        for phase, seconds in timing.items():
            print(f"  {phase:<28s} {seconds:8.3f}s")
    else:
        raise SystemExit(f"unknown experiment {name!r}; try `segugio list`")


EXPERIMENT_NAMES: List[str] = [
    "table1",
    "fig3",
    "pruning",
    "fig6",
    "fig7",
    "fig8",
    "fig10",
    "crossbl",
    "fig11",
    "fig12",
    "lbp",
    "perf",
]


def _run_list(_args: argparse.Namespace) -> None:
    print("available experiments:")
    for name in EXPERIMENT_NAMES:
        print(f"  {name}")


def _load_alert_rules(args: argparse.Namespace):
    """The --alert-rules file as a rule tuple (None when the flag is absent)."""
    if not getattr(args, "alert_rules", None):
        return None
    from repro.obs import AlertRuleError, load_alert_rules

    try:
        return load_alert_rules(args.alert_rules)
    except AlertRuleError as error:
        raise SystemExit(str(error))


def _load_budgets(args: argparse.Namespace):
    """The --budgets file as a ResourceBudget tuple (None when absent)."""
    if not getattr(args, "budgets", None):
        return None
    from repro.obs import ResourceBudgetError, load_resource_budgets

    try:
        return load_resource_budgets(args.budgets)
    except ResourceBudgetError as error:
        raise SystemExit(str(error))


def _load_fault_plan(args: argparse.Namespace):
    """The fault-plan file named by the flag (None when absent)."""
    path = getattr(args, "inject_faults", None) or getattr(args, "plan", None)
    if not path:
        return None
    from repro.runtime.faults import FaultPlanError, load_fault_plan

    try:
        return load_fault_plan(path)
    except FaultPlanError as error:
        raise SystemExit(str(error))


def _run_track(args: argparse.Namespace) -> None:
    from contextlib import nullcontext
    from dataclasses import replace

    from repro.core.pipeline import SegugioConfig
    from repro.core.tracker import DomainTracker
    from repro.runtime.faults import use_fault_plan
    from repro.runtime.supervisor import (
        policy_from_overrides,
        supervised_process_day,
        use_policy,
    )

    alert_rules = _load_alert_rules(args)
    plan = _load_fault_plan(args)
    overrides = dict(plan.policy) if plan is not None else {}
    if args.task_timeout is not None:
        overrides["task_timeout"] = args.task_timeout
    policy = policy_from_overrides(overrides)

    scenario = _scenario(args.scale, args.seed)
    if args.resume:
        tracker = DomainTracker.resume(args.resume)
        if args.jobs is not None:
            # execution knob only: any worker count yields bit-identical
            # scores, so overriding it cannot fork a resumed ledger
            tracker.config = replace(tracker.config, n_jobs=args.jobs)
        if alert_rules is not None:
            tracker.alert_rules = alert_rules
        print(
            f"resumed from {args.resume}: "
            f"{len(tracker.days_processed)} days already scored, "
            f"{len(tracker)} domains tracked"
        )
    else:
        tracker = DomainTracker(
            config=SegugioConfig(n_jobs=_jobs(args)),
            fp_target=args.fp_target,
            alert_rules=alert_rules,
        )
    if args.profile and not args.telemetry_dir:
        raise SystemExit(
            "--profile needs --telemetry-dir (the resource summary lands "
            "in the run manifest)"
        )
    if args.budgets and not args.profile:
        raise SystemExit(
            "--budgets needs --profile (budgets are evaluated over the "
            "profiled resource summary)"
        )
    if args.telemetry_dir:
        from repro.obs import RunTelemetry
        from repro.runtime.checkpoint import config_to_dict

        tracker.telemetry = RunTelemetry(
            command="track",
            config=config_to_dict(tracker.config),
            profile=args.profile,
            budgets=_load_budgets(args),
        )
        # Stream decision records into the output directory as each day
        # finalizes instead of buffering the whole campaign's ledger in
        # memory (byte-identical output; see DecisionLog.stream_to).
        tracker.telemetry.stream_decisions(args.telemetry_dir)
    shard_stack = None
    if args.shards is not None:
        import tempfile

        if args.shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {args.shards}")
        shard_stack = tempfile.TemporaryDirectory(prefix="segugio-shards-")
    last_done = tracker.days_processed[-1] if tracker.days_processed else None
    with use_fault_plan(plan) if plan is not None else nullcontext():
        with use_policy(policy):
            for offset in range(args.days):
                day = scenario.eval_day(offset)
                if last_done is not None and day <= last_done:
                    continue  # completed before the interruption; do not re-score
                context = scenario.context(args.isp, day)
                if shard_stack is not None:
                    context = _shard_day_context(
                        context, shard_stack.name, args.shards, _batch_size(args)
                    )
                # activate telemetry around the *whole* day so day retries
                # and checkpoint-write retries land in the run's event log
                with (
                    tracker.telemetry.activate()
                    if tracker.telemetry is not None
                    else nullcontext()
                ):
                    report = supervised_process_day(tracker, context, policy=policy)
                    print(report.summary())
                    for entry in report.new_detections[:5]:
                        truth = (
                            "MALWARE"
                            if scenario.is_true_malware(entry.name)
                            else "unknown"
                        )
                        print(f"    new: {entry.name:<42s} [{truth}]")
                    if args.checkpoint:
                        tracker.save_checkpoint(args.checkpoint)
                if shard_stack is not None:
                    # one day's store is never needed again: keep disk
                    # usage bounded by a single day
                    import os
                    import shutil

                    shutil.rmtree(
                        os.path.join(shard_stack.name, f"day-{day:05d}"),
                        ignore_errors=True,
                    )
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    if tracker.telemetry is not None and args.telemetry_dir:
        manifest_path, trace_path = tracker.telemetry.write(args.telemetry_dir)
        print(f"run manifest written to {manifest_path}")
        print(f"span trace written to {trace_path}")
        print(f"inspect with: segugio telemetry {manifest_path}")
        if args.profile:
            print(f"resource profile: segugio profile {args.telemetry_dir}")
    confirmed = tracker.confirmations(scenario.commercial_blacklist, horizon=35)
    print(
        f"\ntracked {len(tracker)} domains; {len(confirmed)} later entered "
        f"the blacklist"
    )
    if confirmed:
        mean_lead = sum(c.lead_days for c in confirmed) / len(confirmed)
        print(f"mean lead over the feed: {mean_lead:.1f} days")


def _run_report(args: argparse.Namespace) -> None:
    from repro.eval.fullreport import SECTIONS, write_report

    scenario = _scenario(args.scale, args.seed)
    sections = args.sections.split(",") if args.sections else None
    if sections is not None:
        unknown = [s for s in sections if s not in SECTIONS]
        if unknown:
            raise SystemExit(
                f"unknown sections {unknown}; options: {', '.join(SECTIONS)}"
            )
    write_report(scenario, args.out, sections)
    print(f"wrote report to {args.out}")


def _run_diagnose(args: argparse.Namespace) -> None:
    from repro.synth.diagnostics import diagnose

    scenario = _scenario(args.scale, args.seed)
    result = diagnose(scenario, args.isp, scenario.eval_day(args.day_offset))
    print(result.report())
    if not result.healthy():
        raise SystemExit("world diagnostics failed")


def _run_graph_stats(args: argparse.Namespace) -> None:
    from repro import Segugio
    from repro.core.graph import BehaviorGraph
    from repro.core.graphstats import degree_histogram, summarize

    scenario = _scenario(args.scale, args.seed)
    context = scenario.context(args.isp, scenario.eval_day(args.day_offset))
    raw = BehaviorGraph.from_trace(context.trace)
    model = Segugio()
    pruned, labels, _, _ = model.prepare_day(context)
    print("=== raw graph ===")
    print(summarize(raw))
    print("\n=== after pruning R1-R4 ===")
    print(summarize(pruned, labels))
    print(
        "\ndomain degree histogram (pruned, <=15):",
        degree_histogram(pruned, "domain", max_bucket=15),
    )


def _run_explain(args: argparse.Namespace) -> None:
    from repro import Segugio
    from repro.ml.metrics import threshold_for_fpr

    if args.telemetry_dir is not None:
        _explain_from_artifacts(args)
        return

    scenario = _scenario(args.scale, args.seed)
    context = scenario.context(args.isp, scenario.eval_day(args.day_offset))
    model = Segugio().fit(context)
    report = model.classify(context)

    if args.domain is not None:
        target = args.domain
        score = report.score_of(target)
        if score is None:
            raise SystemExit(f"{target!r} was not scored (labeled or pruned)")
    else:
        training = model.training_set_
        benign_scores = model.classifier_.predict_proba(
            training.X[training.y == 0]
        )
        threshold = threshold_for_fpr(benign_scores, 0.005)
        detections = report.detections(threshold)
        if not detections:
            raise SystemExit("no detections at the default threshold")
        target, score = detections[0]

    try:
        rows = model.explain(context, target)
    except KeyError as error:
        raise SystemExit(str(error))
    print(f"{target}: malware score {score:.3f}")
    for row in rows[: args.top]:
        print(
            f"  {row['feature']:<24s} value={row['value']:8.2f} "
            f"(typical {row['background_median']:6.2f})  "
            f"contribution {row['contribution']:+.3f}"
        )


def _explain_from_artifacts(args: argparse.Namespace) -> None:
    """Replay a verdict from a telemetry dir's decisions.jsonl — no rerun."""
    import os

    from repro.obs.manifest import MANIFEST_FILENAME, ManifestError, load_manifest
    from repro.obs.provenance import (
        DECISIONS_FILENAME,
        ProvenanceError,
        decisions_for_domain,
        load_decisions,
        render_decision,
    )

    # The manifest records the decisions file it wrote (None when the run
    # recorded no decisions); honor it rather than assuming the default
    # name, falling back only when no manifest is present at all.
    decisions_name = DECISIONS_FILENAME
    manifest_path = os.path.join(args.telemetry_dir, MANIFEST_FILENAME)
    if os.path.exists(manifest_path):
        try:
            manifest = load_manifest(manifest_path)
        except ManifestError as error:
            raise SystemExit(str(error))
        recorded = manifest.get("decisions_file")
        if recorded is None:
            raise SystemExit(
                f"run {manifest.get('run_id', '?')} recorded no decision "
                f"provenance (manifest decisions_file is null) — rerun "
                "with --telemetry-dir to capture decisions"
            )
        decisions_name = str(recorded)
    path = os.path.join(args.telemetry_dir, decisions_name)
    if not os.path.exists(path):
        raise SystemExit(
            f"no {decisions_name} in {args.telemetry_dir} (was the run "
            "started with --telemetry-dir?)"
        )
    try:
        records = load_decisions(path)
    except ProvenanceError as error:
        raise SystemExit(str(error))
    if args.domain is not None:
        matches = decisions_for_domain(records, args.domain)
        if not matches:
            raise SystemExit(
                f"{args.domain!r} has no decision record in {path}"
            )
    else:
        detected = [r for r in records if r.get("detected")]
        if not detected:
            raise SystemExit(f"no detected domains recorded in {path}")
        top = max(detected, key=lambda r: (r.get("score") or 0.0))
        matches = decisions_for_domain(records, str(top["domain"]))
    for record in matches:
        print(render_decision(record))


def _run_monitor(args: argparse.Namespace) -> None:
    from repro.eval.monitor import (
        MonitorError,
        load_runs,
        parse_reference,
        render_monitor,
        render_monitor_html,
    )

    try:
        parse_reference(args.reference)  # reject a bad spec before loading
        runs = load_runs(args.telemetry_dirs)
        text = render_monitor(runs, reference=args.reference)
        html_text = (
            render_monitor_html(runs, reference=args.reference)
            if args.html
            else None
        )
    except MonitorError as error:
        raise SystemExit(str(error))
    print(text)
    if args.html and html_text is not None:
        with open(args.html, "w") as stream:
            stream.write(html_text)
        print(f"\nhtml dashboard written to {args.html}")


def _run_export_day(args: argparse.Namespace) -> None:
    from repro.datasets.store import save_observation

    scenario = _scenario(args.scale, args.seed)
    context = scenario.context(args.isp, scenario.eval_day(args.day_offset))
    save_observation(
        args.directory,
        context,
        private_suffixes=scenario.universe.identified_services,
    )
    print(
        f"wrote day {context.day} of {args.isp} "
        f"({context.trace.n_edges} edges) to {args.directory}"
    )


def _run_health(args: argparse.Namespace) -> None:
    from repro.runtime.health import check_context
    from repro.runtime.ingest import load_observation_checked

    context, ingest = load_observation_checked(
        args.directory, mode=args.mode, max_error_rate=args.max_error_rate
    )
    if ingest.n_quarantined:
        print(ingest.summary())
    report = check_context(context)
    print(report.summary())
    if not report.ok:
        raise SystemExit(2)


def _run_classify_dir(args: argparse.Namespace) -> None:
    from contextlib import nullcontext

    from repro import Segugio
    from repro.ml.metrics import threshold_for_fpr
    from repro.runtime.ingest import load_observation_checked

    telemetry = None
    if args.telemetry_dir:
        from repro.obs import RunTelemetry

        telemetry = RunTelemetry(command="classify-dir")
    with telemetry.activate() if telemetry else nullcontext():
        context, ingest = load_observation_checked(
            args.directory,
            mode=args.mode,
            max_error_rate=args.max_error_rate,
            shards=args.shards,
            batch_size=args.batch_size,
        )
        if ingest.n_quarantined:
            print(ingest.summary())
        from repro.core.pipeline import SegugioConfig

        model = Segugio(SegugioConfig(n_jobs=_jobs(args)))
        with (
            telemetry.day_scope(context.day)
            if telemetry
            else nullcontext({})
        ) as record:
            model.fit(context)
            training = model.training_set_
            benign_scores = model.classifier_.predict_proba(
                training.X[training.y == 0]
            )
            threshold = threshold_for_fpr(benign_scores, args.fp_target)
            report = model.classify(context)
            detections = report.detections(threshold)
            record.update(
                threshold=threshold,
                n_scored=len(report),
                n_new_detections=len(detections),
                provenance=list(report.provenance),
            )
    if telemetry is not None:
        from repro.runtime.checkpoint import config_to_dict

        telemetry.config = config_to_dict(model.config)
        telemetry.add_ingest_report(ingest)
        manifest_path, trace_path = telemetry.write(args.telemetry_dir)
        print(f"run manifest written to {manifest_path}")
        print(f"span trace written to {trace_path}")
    print(
        f"day {context.day}: {len(report)} unknown domains scored, "
        f"{len(detections)} detected at <= {args.fp_target:.2%} training FPs"
    )
    if report.provenance:
        print("degraded inputs: " + ", ".join(report.provenance))
    for name, score in detections[: args.top]:
        print(f"  {score:6.3f}  {name}")


def _run_bigday(args: argparse.Namespace) -> None:
    """Track a paper-scale synthetic day stream through the sharded path."""
    import os
    import shutil
    import tempfile
    import time
    from contextlib import nullcontext

    from repro.core.pipeline import SegugioConfig
    from repro.core.tracker import DomainTracker
    from repro.runtime.supervisor import (
        policy_from_overrides,
        supervised_process_day,
        use_policy,
    )
    from repro.synth.bigday import BigDay, BigDayConfig

    if args.shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {args.shards}")
    alert_rules = _load_alert_rules(args)
    policy = policy_from_overrides({})
    started = time.perf_counter()
    config = BigDayConfig.for_edges(
        args.edges, seed=args.seed, n_days=max(args.days, 1)
    )
    world = BigDay(config)
    print(
        f"world ready in {time.perf_counter() - started:.1f}s: "
        f"{config.n_machines} machines, {len(world.domains)} domains, "
        f"{world.n_rows_per_day} raw rows/day"
    )
    tracker = DomainTracker(
        config=SegugioConfig(n_jobs=_jobs(args), n_estimators=args.estimators),
        fp_target=args.fp_target,
        alert_rules=alert_rules,
    )
    if args.profile and not args.telemetry_dir:
        raise SystemExit(
            "--profile needs --telemetry-dir (the resource summary lands "
            "in the run manifest)"
        )
    if args.budgets and not args.profile:
        raise SystemExit(
            "--budgets needs --profile (budgets are evaluated over the "
            "profiled resource summary)"
        )
    if args.telemetry_dir:
        from repro.obs import RunTelemetry
        from repro.runtime.checkpoint import config_to_dict

        tracker.telemetry = RunTelemetry(
            command="bigday",
            config=config_to_dict(tracker.config),
            profile=args.profile,
            budgets=_load_budgets(args),
        )
        # Paper-scale days carry ~1 GB of decision records; stream them
        # to disk as each day finalizes instead of holding the whole
        # campaign ledger in memory (byte-identical output).
        tracker.telemetry.stream_decisions(args.telemetry_dir)
    store_stack = None
    store_root = args.store_dir
    if store_root is None:
        store_stack = tempfile.TemporaryDirectory(prefix="segugio-bigday-")
        store_root = store_stack.name
    batch_size = _batch_size(args)
    with use_policy(policy):
        for offset in range(args.days):
            day = world.eval_day(offset)
            context = world.context(
                day,
                store_dir=store_root,
                shards=args.shards,
                batch_size=batch_size,
            )
            with (
                tracker.telemetry.activate()
                if tracker.telemetry is not None
                else nullcontext()
            ):
                report = supervised_process_day(tracker, context, policy=policy)
                print(report.summary())
                for entry in report.new_detections[:5]:
                    truth = (
                        "MALWARE"
                        if world.is_malware(entry.name)
                        else "unknown"
                    )
                    print(f"    new: {entry.name:<42s} [{truth}]")
            if store_stack is not None:
                # stores under a caller-named --store-dir are kept for
                # inspection; our own temporaries are dropped per day
                shutil.rmtree(
                    os.path.join(store_root, f"day-{day:05d}"),
                    ignore_errors=True,
                )
    if args.verify:
        _verify_bigday(world, args, batch_size, store_root)
    if tracker.telemetry is not None and args.telemetry_dir:
        manifest_path, trace_path = tracker.telemetry.write(args.telemetry_dir)
        print(f"run manifest written to {manifest_path}")
        print(f"span trace written to {trace_path}")
        if args.profile:
            print(f"resource profile: segugio profile {args.telemetry_dir}")
    confirmed = tracker.confirmations(
        world.blacklist, horizon=config.fresh_blacklist_lag + 30
    )
    print(
        f"\ntracked {len(tracker)} domains; {len(confirmed)} later entered "
        f"the blacklist"
    )
    if confirmed:
        mean_lead = sum(c.lead_days for c in confirmed) / len(confirmed)
        print(f"mean lead over the feed: {mean_lead:.1f} days")


def _verify_bigday(world, args: argparse.Namespace, batch_size: int, store_root: str) -> None:
    """Score the first day through both paths and demand identical bytes."""
    import os
    import shutil

    import numpy as np

    from repro import Segugio
    from repro.core.pipeline import SegugioConfig

    day = world.eval_day(0)
    cfg = SegugioConfig(n_jobs=_jobs(args), n_estimators=args.estimators)
    model_mem = Segugio(cfg).fit(world.context(day, batch_size=batch_size))
    report_mem = model_mem.classify(world.context(day, batch_size=batch_size))
    directory = os.path.join(store_root, "verify")
    sharded = world.context(
        day, store_dir=directory, shards=args.shards, batch_size=batch_size
    )
    model_shard = Segugio(cfg).fit(sharded)
    report_shard = model_shard.classify(sharded)
    shutil.rmtree(directory, ignore_errors=True)
    identical = np.array_equal(
        report_mem.domain_ids, report_shard.domain_ids
    ) and np.array_equal(report_mem.scores, report_shard.scores)
    if not identical:
        raise SystemExit(
            "verify FAILED: sharded day scores diverge from the in-memory "
            "path — the determinism contract is broken"
        )
    print(
        f"verify: day {day} sharded output bit-identical to in-memory "
        f"({len(report_mem)} domains scored)"
    )


def _run_bench(args: argparse.Namespace) -> None:
    import json

    from repro.eval.bench import render_bench, run_hotpath_bench

    repeats = 1 if args.quick else args.repeats
    scale = "small" if args.quick else args.scale
    if args.e2e:
        from repro.eval.bench import render_e2e_bench, run_e2e_bench

        payload = run_e2e_bench(
            scale=scale,
            seed=args.seed,
            n_jobs=_jobs(args),
            repeats=repeats,
            n_days=args.days,
            n_shards=args.shards if args.shards is not None else 2,
            batch_size=args.batch_size,
            # --quick exists for smoke coverage, not overhead verdicts:
            # don't let the median-of-rounds overhead search grind
            # through extra rounds on a noisy box
            max_rounds=repeats if args.quick else None,
        )
        out = args.out or "BENCH_e2e.json"
        with open(out, "w") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(render_e2e_bench(payload))
        print(f"benchmark payload written to {out}")
        gate = payload["gate"]
        if not gate["passed"]:
            profiling = payload["profiling"]
            if not profiling["outputs_bit_identical"]:
                reason = "profiling perturbed decision outputs"
            elif not payload["sharded"]["outputs_bit_identical"]:
                reason = "sharded execution perturbed decision outputs"
            elif not payload["worker_tracing"]["complete"]:
                reason = "worker span coverage incomplete"
            elif not payload["sharded"]["worker_tracing"]["complete"]:
                reason = "sharded worker span coverage incomplete"
            else:
                reason = (
                    f"profiling overhead {profiling['overhead_pct']:.2f}% "
                    f">= {gate['max_overhead_pct']:.0f}%"
                )
            raise SystemExit("e2e gate failed: " + reason)
        return
    payload = run_hotpath_bench(
        scale=scale, seed=args.seed, n_jobs=_jobs(args), repeats=repeats
    )
    out = args.out or "BENCH_hotpath.json"
    with open(out, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")
    print(render_bench(payload))
    print(f"benchmark payload written to {out}")
    features = payload["features"]
    slow = [
        key
        for key in ("f2_activity", "f3_ip_abuse")
        if features[key]["speedup"] < 1.0 or not features[key]["bit_identical"]
    ]
    if slow:
        raise SystemExit(
            f"bulk feature path regressed vs the loop reference: {slow}"
        )


def _run_chaos(args: argparse.Namespace) -> None:
    import tempfile

    from repro.eval.chaos import run_chaos

    plan = _load_fault_plan(args)
    alert_rules = _load_alert_rules(args)
    out_dir = args.out or tempfile.mkdtemp(prefix="segugio-chaos-")
    report = run_chaos(
        plan,
        out_dir=out_dir,
        scale=args.scale,
        seed=args.seed,
        isp=args.isp,
        days=args.days,
        jobs=2 if args.jobs is None else args.jobs,
        estimators=args.estimators,
        fp_target=args.fp_target,
        kill_day_offset=args.kill_day,
        alert_rules=alert_rules,
        profile=args.profile,
    )
    print(report.summary())
    if not report.passed:
        raise SystemExit(1)


def _run_telemetry(args: argparse.Namespace) -> None:
    from repro.obs import ManifestError, load_manifest, render_telemetry

    try:
        manifest = load_manifest(args.manifest)
    except ManifestError as error:
        raise SystemExit(str(error))
    print(render_telemetry(manifest))


def _run_profile(args: argparse.Namespace) -> None:
    from repro.eval.profile import (
        ProfileError,
        load_profile,
        render_profile,
        render_profile_html,
    )

    try:
        manifest = load_profile(args.telemetry_dir)
        text = render_profile(manifest)
        html_text = render_profile_html(manifest) if args.html else None
    except ProfileError as error:
        raise SystemExit(str(error))
    print(text)
    if args.html and html_text is not None:
        with open(args.html, "w") as stream:
            stream.write(html_text)
        print(f"\nhtml profile written to {args.html}")


def _run_trace(args: argparse.Namespace) -> None:
    from repro.eval.trace import (
        TraceError,
        load_trace,
        render_trace,
        render_trace_html,
    )

    try:
        manifest, rows = load_trace(args.telemetry_dir)
        text = render_trace(manifest, rows)
        html_text = render_trace_html(manifest, rows) if args.html else None
    except TraceError as error:
        raise SystemExit(str(error))
    print(text)
    if args.html and html_text is not None:
        with open(args.html, "w") as stream:
            stream.write(html_text)
        print(f"\nhtml trace written to {args.html}")


def _run_lint(lint_args: List[str]) -> int:
    """Dev helper: run segugio-lint from a repository checkout.

    The linter lives in ``tools/lint`` (repo tooling, not part of the
    installed package), so this walks up from the working directory to
    find the checkout and re-invokes ``python -m tools.lint`` there.
    """
    import os
    import subprocess

    def _checkout_above(start: str) -> Optional[str]:
        candidate = start
        while True:
            if os.path.isfile(os.path.join(candidate, "tools", "lint", "__init__.py")):
                return candidate
            parent = os.path.dirname(candidate)
            if parent == candidate:
                return None
            candidate = parent

    # prefer the working directory; fall back to the checkout this very
    # module was imported from (PYTHONPATH=src development), so the
    # command works from any directory
    root = _checkout_above(os.getcwd()) or _checkout_above(
        os.path.dirname(os.path.abspath(__file__))
    )
    if root is None:
        raise SystemExit(
            "segugio lint: not inside a repository checkout "
            "(tools/lint not found above the working directory or the "
            "imported repro package)"
        )
    command = [sys.executable, "-m", "tools.lint"] + list(lint_args)
    return subprocess.call(command, cwd=root)


def _run_lint_namespace(args: argparse.Namespace) -> None:
    returncode = _run_lint(args.lint_args)
    if returncode:
        raise SystemExit(returncode)


def _add_ingest_flags(parser: argparse.ArgumentParser) -> None:
    """--strict/--lenient ingest mode plus the lenient error-rate cap."""
    from repro.runtime.ingest import DEFAULT_MAX_ERROR_RATE

    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--strict",
        dest="mode",
        action="store_const",
        const="strict",
        help="fail on the first malformed record (default)",
    )
    mode.add_argument(
        "--lenient",
        dest="mode",
        action="store_const",
        const="lenient",
        help="quarantine malformed records up to --max-error-rate",
    )
    parser.set_defaults(mode="strict")
    parser.add_argument(
        "--max-error-rate",
        type=float,
        default=DEFAULT_MAX_ERROR_RATE,
        help="lenient mode: malformed-record fraction above which the "
        "load fails loudly",
    )


def _jobs(args: argparse.Namespace) -> int:
    """The --jobs value with the absent flag meaning serial."""
    return 1 if args.jobs is None else args.jobs


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    """--shards/--batch-size: the out-of-core streaming graph build."""
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition each day's edges by machine id into this many "
        "shards and run the out-of-core graph build through the "
        "supervised pool (outputs are bit-identical to the in-memory "
        "path at any shard count)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="trace rows per streamed batch (default 65536); purely an "
        "execution knob — any value yields bit-identical outputs",
    )


def _batch_size(args: argparse.Namespace) -> int:
    from repro.dns.trace import DEFAULT_BATCH_SIZE

    value = getattr(args, "batch_size", None)
    if value is None:
        return DEFAULT_BATCH_SIZE
    if value < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {value}")
    return value


def _shard_day_context(context, root: str, shards: int, batch_size: int):
    """Reshard one in-memory day context through an edge store under *root*."""
    import os
    from dataclasses import replace

    from repro.datasets.edgestore import ShardedDayTrace

    directory = os.path.join(root, f"day-{context.day:05d}")
    trace = ShardedDayTrace.from_day_trace(
        context.trace, directory, n_shards=shards, batch_size=batch_size
    )
    return replace(context, trace=trace)


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    # default None = "not given": lets `track --resume` distinguish an
    # explicit --jobs 1 (override the checkpointed value back to serial)
    # from the flag simply being absent (keep the checkpointed value)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for classifier fit/scoring (-1 = all "
        "cores, default 1); scores are bit-identical for any value",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="segugio",
        description="Segugio (DSN 2015) reproduction: experiments and demos",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="train + classify on a synthetic ISP")
    demo.add_argument("--scale", default="small", choices=["small", "benchmark"])
    demo.add_argument("--seed", type=int, default=7)
    _add_jobs_flag(demo)
    demo.set_defaults(func=_run_demo)

    exp = sub.add_parser("experiment", help="run a named paper experiment")
    exp.add_argument("name", help="experiment id (see `segugio list`)")
    exp.add_argument("--scale", default="small", choices=["small", "benchmark"])
    exp.add_argument("--seed", type=int, default=7)
    exp.set_defaults(func=_run_experiment)

    lst = sub.add_parser("list", help="list experiment names")
    lst.set_defaults(func=_run_list)

    track = sub.add_parser("track", help="day-by-day deployment tracking")
    track.add_argument("--scale", default="small", choices=["small", "benchmark"])
    track.add_argument("--seed", type=int, default=7)
    track.add_argument("--isp", default="isp1")
    track.add_argument("--days", type=int, default=3)
    track.add_argument("--fp-target", type=float, default=0.001)
    track.add_argument(
        "--checkpoint",
        default=None,
        help="write a checksummed checkpoint here after every day",
    )
    track.add_argument(
        "--resume",
        default=None,
        help="resume a killed run from this checkpoint (already-scored "
        "days are skipped; the ledger continues bit-identically)",
    )
    track.add_argument(
        "--telemetry-dir",
        default=None,
        help="write a run manifest (manifest.json) and span trace "
        "(trace.jsonl) into this directory",
    )
    track.add_argument(
        "--alert-rules",
        default=None,
        help="JSON file of SLO alert rules replacing the built-in set "
        "(see repro.obs.monitor.load_alert_rules)",
    )
    track.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase CPU/peak-RSS/IO, throughput, and pool "
        "stats into the manifest's resources key (needs --telemetry-dir; "
        "observation only — decision outputs stay bit-identical)",
    )
    track.add_argument(
        "--budgets",
        default=None,
        help="JSON file of declarative resource budgets (max_peak_rss_mb, "
        "min rows/s, ...) checked against the profiled summary and folded "
        "into run health (needs --profile; see "
        "repro.obs.resources.load_resource_budgets)",
    )
    track.add_argument(
        "--inject-faults",
        default=None,
        help="fault-plan JSON to inject deterministic failures "
        "(testing/drills; see repro.runtime.faults)",
    )
    track.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds without any parallel-task progress before the "
        "supervisor declares a hang and degrades (default: no watchdog)",
    )
    _add_jobs_flag(track)
    _add_shard_flags(track)
    track.set_defaults(func=_run_track)

    bigday = sub.add_parser(
        "bigday",
        help="track a paper-scale synthetic day stream through the "
        "sharded out-of-core graph build",
    )
    bigday.add_argument(
        "--edges",
        type=int,
        default=5_200_000,
        help="target deduplicated edges per day (default 5.2M — the "
        "acceptance scale; the paper's ISPs see ~320M)",
    )
    bigday.add_argument("--days", type=int, default=2)
    bigday.add_argument("--seed", type=int, default=0)
    bigday.add_argument("--fp-target", type=float, default=0.001)
    bigday.add_argument(
        "--estimators",
        type=int,
        default=24,
        help="forest size (smaller than the deployment default keeps the "
        "scale run focused on the graph path)",
    )
    bigday.add_argument(
        "--store-dir",
        default=None,
        help="directory for the per-day edge stores (kept for inspection; "
        "default: a temporary directory dropped day by day)",
    )
    bigday.add_argument(
        "--telemetry-dir",
        default=None,
        help="write a run manifest and span trace into this directory",
    )
    bigday.add_argument(
        "--alert-rules",
        default=None,
        help="JSON file of SLO alert rules replacing the built-in set",
    )
    bigday.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase CPU/peak-RSS/IO and throughput into the "
        "manifest's resources key (needs --telemetry-dir)",
    )
    bigday.add_argument(
        "--budgets",
        default=None,
        help="JSON file of resource budgets (e.g. a process.peak_rss_mb "
        "cap) checked against the profiled summary (needs --profile)",
    )
    bigday.add_argument(
        "--verify",
        action="store_true",
        help="additionally score the first day through the in-memory "
        "path and fail unless the sharded output is bit-identical "
        "(materializes the full day — budget memory accordingly)",
    )
    _add_jobs_flag(bigday)
    _add_shard_flags(bigday)
    bigday.set_defaults(func=_run_bigday, shards=8)

    report = sub.add_parser(
        "report", help="run experiments and write a Markdown report"
    )
    report.add_argument("--out", default="segugio-report.md")
    report.add_argument("--scale", default="small", choices=["small", "benchmark"])
    report.add_argument("--seed", type=int, default=7)
    report.add_argument(
        "--sections",
        default=None,
        help="comma-separated subset (default: all); see repro.eval.fullreport",
    )
    report.set_defaults(func=_run_report)

    diag = sub.add_parser(
        "diagnose", help="check the paper's preconditions on a world"
    )
    diag.add_argument("--scale", default="small", choices=["small", "benchmark"])
    diag.add_argument("--seed", type=int, default=7)
    diag.add_argument("--isp", default="isp1")
    diag.add_argument("--day-offset", type=int, default=0)
    diag.set_defaults(func=_run_diagnose)

    stats = sub.add_parser("graph-stats", help="behavior-graph structure report")
    stats.add_argument("--scale", default="small", choices=["small", "benchmark"])
    stats.add_argument("--seed", type=int, default=7)
    stats.add_argument("--isp", default="isp1")
    stats.add_argument("--day-offset", type=int, default=0)
    stats.set_defaults(func=_run_graph_stats)

    explain = sub.add_parser(
        "explain", help="feature attribution for a scored domain"
    )
    explain.add_argument("--domain", default=None, help="FQD to explain (default: top detection)")
    explain.add_argument("--scale", default="small", choices=["small", "benchmark"])
    explain.add_argument("--seed", type=int, default=7)
    explain.add_argument("--isp", default="isp1")
    explain.add_argument("--day-offset", type=int, default=0)
    explain.add_argument("--top", type=int, default=6)
    explain.add_argument(
        "--telemetry-dir",
        default=None,
        help="replay the decision record(s) from this telemetry dir's "
        "decisions.jsonl instead of re-running the pipeline",
    )
    explain.set_defaults(func=_run_explain)

    monitor = sub.add_parser(
        "monitor",
        help="multi-day quality dashboard over telemetry directories",
    )
    monitor.add_argument(
        "telemetry_dirs",
        nargs="+",
        help="one or more --telemetry-dir outputs (each holding a "
        "manifest.json and optionally decisions.jsonl)",
    )
    monitor.add_argument(
        "--html",
        default=None,
        help="additionally write a self-contained HTML dashboard here",
    )
    monitor.add_argument(
        "--reference",
        default="previous",
        help="baseline for the reference-drift section: previous "
        "(default), pinned:<day>, or rolling:<k>",
    )
    monitor.set_defaults(func=_run_monitor)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection drill: run a tracking campaign under a "
        "fault plan and verify outputs stay bit-identical",
    )
    chaos.add_argument(
        "--plan",
        default=None,
        help="fault-plan JSON (default: a built-in plan exercising worker "
        "kill, day retry, and a torn checkpoint write)",
    )
    chaos.add_argument("--scale", default="small", choices=["small", "benchmark"])
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--isp", default="isp1")
    chaos.add_argument("--days", type=int, default=3)
    chaos.add_argument(
        "--estimators",
        type=int,
        default=24,
        help="forest size for the drill (>= 17 keeps the parallel predict "
        "path multi-chunk so forest_predict faults can fire)",
    )
    chaos.add_argument("--fp-target", type=float, default=0.01)
    chaos.add_argument(
        "--kill-day",
        type=int,
        default=None,
        help="simulate a coordinator crash after this day offset and "
        "resume from the checkpoint (exercises the drift sidecar)",
    )
    chaos.add_argument(
        "--out",
        default=None,
        help="directory for the checkpoint and run manifest "
        "(default: a fresh temporary directory)",
    )
    chaos.add_argument(
        "--alert-rules",
        default=None,
        help="JSON file of SLO alert rules for the drill's health verdicts",
    )
    chaos.add_argument(
        "--profile",
        action="store_true",
        help="record resource accounting during the chaos run; the "
        "bit-identity invariants then also prove profiling is inert",
    )
    _add_jobs_flag(chaos)
    chaos.set_defaults(func=_run_chaos)

    export = sub.add_parser(
        "export-day", help="write one observation day to a directory"
    )
    export.add_argument("directory")
    export.add_argument("--scale", default="small", choices=["small", "benchmark"])
    export.add_argument("--seed", type=int, default=7)
    export.add_argument("--isp", default="isp1")
    export.add_argument("--day-offset", type=int, default=0)
    export.set_defaults(func=_run_export_day)

    classify = sub.add_parser(
        "classify-dir", help="train + classify an exported observation day"
    )
    classify.add_argument("directory")
    classify.add_argument("--fp-target", type=float, default=0.005)
    classify.add_argument("--top", type=int, default=15)
    classify.add_argument(
        "--telemetry-dir",
        default=None,
        help="write a run manifest (manifest.json) and span trace "
        "(trace.jsonl) into this directory",
    )
    _add_ingest_flags(classify)
    _add_jobs_flag(classify)
    _add_shard_flags(classify)
    classify.set_defaults(func=_run_classify_dir)

    health = sub.add_parser(
        "health",
        help="pre-flight health checks on an exported observation day",
    )
    health.add_argument("directory")
    _add_ingest_flags(health)
    health.set_defaults(func=_run_health)

    bench = sub.add_parser(
        "bench",
        help="hot-path benchmark (fit/classify/feature timings) -> "
        "BENCH_hotpath.json",
    )
    bench.add_argument("--scale", default="small", choices=["small", "benchmark"])
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small scale, single repeat",
    )
    bench.add_argument(
        "--e2e",
        action="store_true",
        help="end-to-end baseline instead: a pinned tracking campaign "
        "profiled off vs. on -> BENCH_e2e.json (rows/s, edges/s, peak "
        "RSS), gated on bit-identical outputs and <3%% overhead",
    )
    bench.add_argument(
        "--days",
        type=int,
        default=2,
        help="tracked days for the --e2e campaign (default 2)",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="payload path (default BENCH_hotpath.json, or BENCH_e2e.json "
        "with --e2e)",
    )
    _add_jobs_flag(bench)
    _add_shard_flags(bench)
    bench.set_defaults(func=_run_bench)

    telemetry = sub.add_parser(
        "telemetry",
        help="render the per-phase cost breakdown of a run manifest",
    )
    telemetry.add_argument("manifest", help="path to a manifest.json")
    telemetry.set_defaults(func=_run_telemetry)

    profile = sub.add_parser(
        "profile",
        help="phase-tree + hotspot resource view of a profiled run "
        "(manifest written by track --telemetry-dir ... --profile)",
    )
    profile.add_argument(
        "telemetry_dir",
        help="a --telemetry-dir output (or a manifest.json path)",
    )
    profile.add_argument(
        "--html",
        default=None,
        help="additionally write a self-contained HTML profile here",
    )
    profile.set_defaults(func=_run_profile)

    trace = sub.add_parser(
        "trace",
        help="unified parent + pool-worker timeline of a run's trace.jsonl "
        "(worker lanes need track --telemetry-dir ... --profile)",
    )
    trace.add_argument(
        "telemetry_dir",
        help="a --telemetry-dir output (or a trace.jsonl path)",
    )
    trace.add_argument(
        "--html",
        default=None,
        help="additionally write a self-contained HTML flamegraph here",
    )
    trace.set_defaults(func=_run_trace)

    # Handled in main() before parsing so every flag forwards verbatim
    # to ``python -m tools.lint`` (argparse's REMAINDER mishandles a
    # leading option token like `segugio lint --format json`).
    lint = sub.add_parser(
        "lint",
        help="run segugio-lint: per-file rules (SEG001-SEG012) plus "
        "whole-program analyses (SEG101-SEG105) over the checkout",
        description="Static analysis enforcing the repo's determinism, "
        "layering, and telemetry contracts (DESIGN.md §9). All flags "
        "forward verbatim to `python -m tools.lint`: --format "
        "{human,json,github}, --select RULES, --graph {dot,json}, "
        "--explain SEGxxx, --stats, --baseline PATH, --write-baseline, "
        "--list-rules.",
    )
    lint.add_argument("lint_args", nargs=argparse.REMAINDER)
    lint.set_defaults(func=_run_lint_namespace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        # forwarded verbatim: argparse's REMAINDER mishandles a leading
        # option token (e.g. `segugio lint --format json`)
        return _run_lint(raw[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "log_json", False):
        from repro.obs import logs

        logs.configure(sys.stderr)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Dataset persistence: observation days as on-disk directories.

A deployment feeds Segugio from live infrastructure; experiments and
hand-offs need the same inputs as files.  :mod:`repro.datasets.store`
writes and reads a complete :class:`repro.core.pipeline.ObservationContext`
— trace, feeds, activity index, passive-DNS history, PSL augmentation —
as one self-describing directory, preserving the global domain-id space so
models and reports transfer exactly.
"""

from repro.datasets.store import load_observation, save_observation

__all__ = ["load_observation", "save_observation"]

"""Serialize an observation day to a directory and back.

Layout (one directory per observation)::

    meta.json          format version, day, PSL private suffixes, counts
    domains.txt        global domain interner, one name per id-ordered line
    machines.txt       machine interner, same encoding
    trace.tsv          the day's deduplicated edges + resolutions
    blacklist.tsv      C&C feed (domain, added_day, family)
    whitelist.txt      benign e2LDs
    pdns.npz           passive-DNS columns (days, domain ids, ips)
    activity.npz       (day, key) activity pairs for FQDs and e2LDs

Ids are positional: ``domains.txt`` line *k* is the name of global domain
id *k*, so a context loaded from disk reproduces the exact feature values
and scores of the context that was saved (asserted by the round-trip
tests).  The activity and pDNS stores are windowed at save time to what
the pipeline can ever read for this day (activity window + pDNS window),
keeping exports compact.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

import numpy as np

from repro.core.features import DEFAULT_ACTIVITY_WINDOW
from repro.core.pipeline import DEFAULT_PDNS_WINDOW_DAYS, ObservationContext
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import DayTrace
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.pdns.database import PassiveDNSDatabase
from repro.utils.ids import Interner

FORMAT_VERSION = 1


def _activity_pairs(
    index: ActivityIndex, keys: range, start_day: int, end_day: int
) -> np.ndarray:
    """(day, key) rows for every key active within [start_day, end_day]."""
    rows: List[List[int]] = []
    for key in keys:
        if key not in index:
            continue
        for day in range(start_day, end_day + 1):
            if index.is_active(key, day):
                rows.append([day, key])
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def save_observation(
    directory: str,
    context: ObservationContext,
    private_suffixes: Optional[List[str]] = None,
    activity_window: int = DEFAULT_ACTIVITY_WINDOW,
    pdns_window: int = DEFAULT_PDNS_WINDOW_DAYS,
) -> None:
    """Write *context* to *directory* (created if missing).

    ``private_suffixes`` are the dynamic-DNS/free-hosting zones the PSL was
    augmented with; they are required to recompute e2LDs identically at
    load time.
    """
    os.makedirs(directory, exist_ok=True)
    day = context.day

    with open(os.path.join(directory, "domains.txt"), "w") as stream:
        for name in context.trace.domains:
            stream.write(name + "\n")
    with open(os.path.join(directory, "machines.txt"), "w") as stream:
        for name in context.trace.machines:
            stream.write(name + "\n")

    context.trace.save(os.path.join(directory, "trace.tsv"))
    context.blacklist.save(os.path.join(directory, "blacklist.tsv"))
    context.whitelist.save(os.path.join(directory, "whitelist.txt"))

    pdns_start = max(day - pdns_window, 0)
    days, domains, ips = context.pdns.window_records(pdns_start, day)
    np.savez_compressed(
        os.path.join(directory, "pdns.npz"),
        days=days,
        domains=domains,
        ips=ips,
    )

    act_start = max(day - activity_window + 1, 0)
    fqd_pairs = _activity_pairs(
        context.fqd_activity,
        range(len(context.trace.domains)),
        act_start,
        day,
    )
    e2ld_pairs = _activity_pairs(
        context.e2ld_activity,
        range(len(context.e2ld_index)),  # forces the e2LD mapping
        act_start,
        day,
    )
    np.savez_compressed(
        os.path.join(directory, "activity.npz"),
        fqd=fqd_pairs,
        e2ld=e2ld_pairs,
    )

    meta = {
        "format_version": FORMAT_VERSION,
        "day": day,
        "private_suffixes": sorted(private_suffixes or []),
        "n_domains": len(context.trace.domains),
        "n_machines": len(context.trace.machines),
        "n_edges": context.trace.n_edges,
        "activity_window": activity_window,
        "pdns_window": pdns_window,
    }
    with open(os.path.join(directory, "meta.json"), "w") as stream:
        json.dump(meta, stream, indent=2)


def load_observation(directory: str) -> ObservationContext:
    """Read a directory written by :func:`save_observation`."""
    with open(os.path.join(directory, "meta.json")) as stream:
        meta = json.load(stream)
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version}")
    day = int(meta["day"])

    with open(os.path.join(directory, "domains.txt")) as stream:
        domains = Interner(line.rstrip("\n") for line in stream if line.strip())
    with open(os.path.join(directory, "machines.txt")) as stream:
        machines = Interner(line.rstrip("\n") for line in stream if line.strip())
    if len(domains) != meta["n_domains"]:
        raise ValueError("domains.txt does not match meta.json")
    if len(machines) != meta["n_machines"]:
        raise ValueError("machines.txt does not match meta.json")

    trace = DayTrace.load(
        os.path.join(directory, "trace.tsv"), machines=machines, domains=domains
    )
    blacklist = CncBlacklist.load(os.path.join(directory, "blacklist.tsv"))

    psl = PublicSuffixList()
    psl.add_private_suffixes(meta["private_suffixes"])
    whitelist = DomainWhitelist.load(
        os.path.join(directory, "whitelist.txt"), psl=psl
    )
    e2ld_index = E2ldIndex(domains, psl)

    pdns = PassiveDNSDatabase()
    with np.load(os.path.join(directory, "pdns.npz")) as payload:
        days = payload["days"]
        dom = payload["domains"]
        ips = payload["ips"]
    for unique_day in np.unique(days):
        mask = days == unique_day
        pdns.observe_day(int(unique_day), dom[mask], ips[mask])

    fqd_activity = ActivityIndex()
    e2ld_activity = ActivityIndex()
    with np.load(os.path.join(directory, "activity.npz")) as payload:
        for target, key in ((fqd_activity, "fqd"), (e2ld_activity, "e2ld")):
            pairs = payload[key]
            for unique_day in np.unique(pairs[:, 0]) if pairs.size else []:
                target.record(
                    int(unique_day), pairs[pairs[:, 0] == unique_day, 1]
                )

    return ObservationContext(
        day=day,
        trace=trace,
        fqd_activity=fqd_activity,
        e2ld_activity=e2ld_activity,
        e2ld_index=e2ld_index,
        pdns=pdns,
        blacklist=blacklist,
        whitelist=whitelist,
    )

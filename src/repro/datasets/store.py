"""Serialize an observation day to a directory and back.

Layout (one directory per observation)::

    meta.json          format version, day, PSL private suffixes, counts
    domains.txt        global domain interner, one name per id-ordered line
    machines.txt       machine interner, same encoding
    trace.tsv          the day's deduplicated edges + resolutions
    blacklist.tsv      C&C feed (domain, added_day, family)
    whitelist.txt      benign e2LDs
    pdns.npz           passive-DNS columns (days, domain ids, ips)
    activity.npz       (day, key) activity pairs for FQDs and e2LDs

Ids are positional: ``domains.txt`` line *k* is the name of global domain
id *k*, so a context loaded from disk reproduces the exact feature values
and scores of the context that was saved (asserted by the round-trip
tests).  The activity and pDNS stores are windowed at save time to what
the pipeline can ever read for this day (activity window + pDNS window),
keeping exports compact.

Saves are atomic: everything is staged into ``<directory>.tmp`` and swapped
into place only once complete (see :func:`repro.runtime.retry
.atomic_directory`), so a crash mid-save can never leave a torn directory
behind.  Loading a directory written by a newer library raises
:class:`FormatVersionError` naming both versions; the strict/lenient
malformed-record handling lives one layer up in :mod:`repro.runtime.ingest`,
which reuses the ``load_*`` helpers below.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional

import numpy as np

from repro.core.features import DEFAULT_ACTIVITY_WINDOW
from repro.core.pipeline import DEFAULT_PDNS_WINDOW_DAYS, ObservationContext
from repro.dns.activity import ActivityIndex
from repro.dns.e2ld import E2ldIndex
from repro.dns.publicsuffix import PublicSuffixList
from repro.dns.trace import DayTrace
from repro.intel.blacklist import CncBlacklist
from repro.intel.whitelist import DomainWhitelist
from repro.pdns.database import PassiveDNSDatabase
from repro.runtime.retry import atomic_directory
from repro.utils.errors import FormatVersionError, IngestError
from repro.utils.ids import Interner

FORMAT_VERSION = 1

OBSERVATION_FILES = (
    "meta.json",
    "domains.txt",
    "machines.txt",
    "trace.tsv",
    "blacklist.tsv",
    "whitelist.txt",
    "pdns.npz",
    "activity.npz",
)

_REQUIRED_META_KEYS = ("format_version", "day", "n_domains", "n_machines")


def _activity_pairs(
    index: ActivityIndex, keys: range, start_day: int, end_day: int
) -> np.ndarray:
    """(day, key) rows for every key active within [start_day, end_day]."""
    rows: List[List[int]] = []
    for key in keys:
        if key not in index:
            continue
        for day in range(start_day, end_day + 1):
            if index.is_active(key, day):
                rows.append([day, key])
    if not rows:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def save_observation(
    directory: str,
    context: ObservationContext,
    private_suffixes: Optional[List[str]] = None,
    activity_window: int = DEFAULT_ACTIVITY_WINDOW,
    pdns_window: int = DEFAULT_PDNS_WINDOW_DAYS,
) -> None:
    """Write *context* to *directory* (replaced atomically if it exists).

    ``private_suffixes`` are the dynamic-DNS/free-hosting zones the PSL was
    augmented with; they are required to recompute e2LDs identically at
    load time.

    The write is staged into ``<directory>.tmp`` and renamed into place
    only once every file is complete, so readers never observe a
    half-written observation and a crash mid-save leaves any previous
    *directory* untouched.
    """
    with atomic_directory(directory) as staging:
        _write_observation(
            staging, context, private_suffixes, activity_window, pdns_window
        )


def _write_observation(
    directory: str,
    context: ObservationContext,
    private_suffixes: Optional[List[str]],
    activity_window: int,
    pdns_window: int,
) -> None:
    day = context.day

    with open(os.path.join(directory, "domains.txt"), "w") as stream:
        for name in context.trace.domains:
            stream.write(name + "\n")
    with open(os.path.join(directory, "machines.txt"), "w") as stream:
        for name in context.trace.machines:
            stream.write(name + "\n")

    context.trace.save(os.path.join(directory, "trace.tsv"))
    context.blacklist.save(os.path.join(directory, "blacklist.tsv"))
    context.whitelist.save(os.path.join(directory, "whitelist.txt"))

    pdns_start = max(day - pdns_window, 0)
    days, domains, ips = context.pdns.window_records(pdns_start, day)
    np.savez_compressed(
        os.path.join(directory, "pdns.npz"),
        days=days,
        domains=domains,
        ips=ips,
    )

    act_start = max(day - activity_window + 1, 0)
    fqd_pairs = _activity_pairs(
        context.fqd_activity,
        range(len(context.trace.domains)),
        act_start,
        day,
    )
    e2ld_pairs = _activity_pairs(
        context.e2ld_activity,
        range(len(context.e2ld_index)),  # forces the e2LD mapping
        act_start,
        day,
    )
    np.savez_compressed(
        os.path.join(directory, "activity.npz"),
        fqd=fqd_pairs,
        e2ld=e2ld_pairs,
    )

    meta = {
        "format_version": FORMAT_VERSION,
        "day": day,
        "private_suffixes": sorted(private_suffixes or []),
        "n_domains": len(context.trace.domains),
        "n_machines": len(context.trace.machines),
        "n_edges": context.trace.n_edges,
        "activity_window": activity_window,
        "pdns_window": pdns_window,
    }
    with open(os.path.join(directory, "meta.json"), "w") as stream:
        json.dump(meta, stream, indent=2)


# ---------------------------------------------------------------------- #
# loading — small composable pieces, reused by repro.runtime.ingest
# ---------------------------------------------------------------------- #


def load_meta(directory: str) -> dict:
    """Read and validate ``meta.json``.

    Raises :class:`FormatVersionError` (naming the found and supported
    versions) on a version mismatch, and :class:`IngestError` on a missing
    or structurally broken meta file.
    """
    path = os.path.join(directory, "meta.json")
    if not os.path.exists(path):
        raise IngestError(
            f"{directory}: not an observation directory (no meta.json)"
        )
    try:
        with open(path) as stream:
            meta = json.load(stream)
    except json.JSONDecodeError as error:
        raise IngestError(f"{path}: meta.json is not valid JSON: {error}")
    if not isinstance(meta, dict):
        raise IngestError(f"{path}: meta.json must hold a JSON object")
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise FormatVersionError(version, FORMAT_VERSION, what="observation")
    missing = [key for key in _REQUIRED_META_KEYS if key not in meta]
    if missing:
        raise IngestError(f"{path}: meta.json is missing keys {missing}")
    return meta


def load_interner(path: str, expected: int, label: str) -> Interner:
    """Read a positional-id name file, checking the count against meta."""
    with open(path) as stream:
        interner = Interner(
            line.rstrip("\n") for line in stream if line.strip()
        )
    if len(interner) != expected:
        raise IngestError(
            f"{path}: {os.path.basename(path)} holds {len(interner)} "
            f"{label} but meta.json promises {expected} — the export is "
            f"torn or was edited"
        )
    return interner


def load_pdns_arrays(directory: str) -> tuple:
    """The raw (days, domain ids, ips) columns of ``pdns.npz``."""
    with np.load(os.path.join(directory, "pdns.npz")) as payload:
        return payload["days"], payload["domains"], payload["ips"]


def build_pdns(
    days: np.ndarray, domains: np.ndarray, ips: np.ndarray
) -> PassiveDNSDatabase:
    """Replay (day, domain, ip) columns into a fresh pDNS store."""
    pdns = PassiveDNSDatabase()
    for unique_day in np.unique(days):
        mask = days == unique_day
        pdns.observe_day(int(unique_day), domains[mask], ips[mask])
    return pdns


def load_activity_arrays(directory: str) -> tuple:
    """The raw (fqd pairs, e2ld pairs) arrays of ``activity.npz``."""
    with np.load(os.path.join(directory, "activity.npz")) as payload:
        return payload["fqd"], payload["e2ld"]


def build_activity_index(pairs: np.ndarray) -> ActivityIndex:
    """Replay (day, key) rows into a fresh activity index."""
    index = ActivityIndex()
    for unique_day in np.unique(pairs[:, 0]) if pairs.size else []:
        index.record(int(unique_day), pairs[pairs[:, 0] == unique_day, 1])
    return index


def load_observation(directory: str) -> ObservationContext:
    """Read a directory written by :func:`save_observation` (strict mode).

    Any malformed record raises a located error immediately; for
    quarantine-and-continue loading use
    :func:`repro.runtime.ingest.load_observation_checked`.
    """
    meta = load_meta(directory)
    day = int(meta["day"])

    domains = load_interner(
        os.path.join(directory, "domains.txt"), int(meta["n_domains"]), "domains"
    )
    machines = load_interner(
        os.path.join(directory, "machines.txt"),
        int(meta["n_machines"]),
        "machines",
    )

    trace = DayTrace.load(
        os.path.join(directory, "trace.tsv"), machines=machines, domains=domains
    )
    blacklist = CncBlacklist.load(os.path.join(directory, "blacklist.tsv"))

    psl = PublicSuffixList()
    psl.add_private_suffixes(meta.get("private_suffixes", []))
    whitelist = DomainWhitelist.load(
        os.path.join(directory, "whitelist.txt"), psl=psl
    )
    e2ld_index = E2ldIndex(domains, psl)

    pdns = build_pdns(*load_pdns_arrays(directory))

    fqd_pairs, e2ld_pairs = load_activity_arrays(directory)
    fqd_activity = build_activity_index(fqd_pairs)
    e2ld_activity = build_activity_index(e2ld_pairs)

    return ObservationContext(
        day=day,
        trace=trace,
        fqd_activity=fqd_activity,
        e2ld_activity=e2ld_activity,
        e2ld_index=e2ld_index,
        pdns=pdns,
        blacklist=blacklist,
        whitelist=whitelist,
    )

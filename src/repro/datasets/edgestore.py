"""Columnar, memory-mapped, machine-sharded edge store for one day.

The paper's deployments see 1.6M–4M machines and ~320M machine–domain
edges per day (§IV-G); an in-memory :class:`~repro.dns.trace.DayTrace`
cannot represent that.  This module is the out-of-core backing store:
trace records stream in as fixed-size batches, are spilled to per-shard
binary files partitioned by ``machine_id % n_shards``, and are finalized
into deduplicated, sorted columnar ``.npy`` arrays that readers map with
``mmap_mode="r"`` — per-shard graph build touches only its own shard's
pages.

Layout of a finalized store directory::

    manifest.json            counts + format version, written last
    shard-00000.machines.npy shard 0 edge machine ids, deduped, sorted
    shard-00000.domains.npy  shard 0 edge domain ids (parallel array)
    ...
    res.domains.npy          sorted unique resolved domain ids
    res.offsets.npy          CSR offsets into res.ips.npy
    res.ips.npy              per-domain sorted unique IPv4s (uint32)

Determinism rules (the sharded path must stay bit-identical to the
in-memory one):

* machines are partitioned by ``machine_id % n_shards``, so every
  machine's edges live wholly in one shard and per-shard deduplication
  equals global deduplication restricted to the shard;
* each shard's edges are sorted by ``(machine, domain)`` exactly like
  :func:`repro.dns.trace._dedupe_edges` orders the in-memory arrays, so
  concatenating shards and lexsorting by ``(machine, domain)`` rebuilds
  the in-memory edge order byte for byte;
* resolutions are globally deduplicated to per-domain sorted unique IP
  arrays — the same values ``sorted(set(ips))`` produces in memory.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.retry import atomic_file
from repro.utils.errors import FormatVersionError
from repro.utils.ids import Interner

EDGESTORE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"


def _shard_stem(shard: int) -> str:
    return f"shard-{shard:05d}"


class EdgeStoreWriter:
    """Spill-then-finalize writer for a sharded edge store.

    Batches may arrive in any order and carry duplicate edges; nothing is
    deduplicated until :meth:`finalize`, so peak memory during ingestion
    is one batch, and during finalize one shard's raw spill.
    """

    def __init__(self, directory: str, *, day: int = 0, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.day = int(day)
        self.n_shards = int(n_shards)
        self.n_batches = 0
        self.n_raw_rows = 0
        self._n_res_rows = 0
        self._finalized = False
        self._edge_spills = [
            open(self._spill_path(shard), "wb") for shard in range(n_shards)
        ]
        self._res_spill = open(os.path.join(directory, "res.spill"), "wb")

    def _spill_path(self, shard: int) -> str:
        return os.path.join(self.directory, f"{_shard_stem(shard)}.spill")

    def set_day(self, day: int) -> None:
        """Re-tag the day (a streamed trace reveals its header early on,
        but the writer is constructed before the stream is opened)."""
        self._check_open()
        if day < 0:
            raise ValueError(f"day must be non-negative, got {day}")
        self.day = int(day)

    def add_batch(self, machine_ids: np.ndarray, domain_ids: np.ndarray) -> None:
        """Spill one batch of (machine id, domain id) pairs to the shards."""
        self._check_open()
        em = np.asarray(machine_ids, dtype=np.int64)
        ed = np.asarray(domain_ids, dtype=np.int64)
        if em.shape != ed.shape:
            raise ValueError("edge arrays must be parallel")
        self.n_batches += 1
        self.n_raw_rows += int(em.size)
        if not em.size:
            return
        if int(em.min()) < 0 or int(ed.min()) < 0:
            raise ValueError("edge ids must be non-negative")
        if self.n_shards == 1:
            self._spill_pairs(self._edge_spills[0], em, ed)
            return
        part = em % self.n_shards
        order = np.argsort(part, kind="stable")
        part_sorted = part[order]
        em_sorted = em[order]
        ed_sorted = ed[order]
        bounds = np.searchsorted(part_sorted, np.arange(self.n_shards + 1))
        for shard in range(self.n_shards):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            if lo < hi:
                self._spill_pairs(
                    self._edge_spills[shard], em_sorted[lo:hi], ed_sorted[lo:hi]
                )

    def add_resolutions(self, domain_ids: np.ndarray, ips: np.ndarray) -> None:
        """Spill flattened (domain id, resolved IP) observation rows."""
        self._check_open()
        did = np.asarray(domain_ids, dtype=np.int64)
        ip = np.asarray(ips, dtype=np.int64)
        if did.shape != ip.shape:
            raise ValueError("resolution arrays must be parallel")
        if not did.size:
            return
        self._n_res_rows += int(did.size)
        self._spill_pairs(self._res_spill, did, ip)

    @staticmethod
    def _spill_pairs(handle, left: np.ndarray, right: np.ndarray) -> None:
        pairs = np.empty((left.size, 2), dtype=np.int64)
        pairs[:, 0] = left
        pairs[:, 1] = right
        handle.write(pairs.tobytes())

    def finalize(
        self,
        n_machines: Optional[int] = None,
        n_domains: Optional[int] = None,
    ) -> "EdgeStore":
        """Dedupe and sort every shard, write the columnar arrays and the
        manifest (last, atomically — its presence marks a complete store)."""
        self._check_open()
        self._finalized = True
        for handle in self._edge_spills:
            handle.close()
        self._res_spill.close()

        shard_edges: List[int] = []
        max_machine = -1
        max_domain = -1
        for shard in range(self.n_shards):
            spill = self._spill_path(shard)
            pairs = np.fromfile(spill, dtype=np.int64).reshape(-1, 2)
            em, ed = _dedupe_pairs(pairs[:, 0], pairs[:, 1])
            if em.size:
                max_machine = max(max_machine, int(em.max()))
                max_domain = max(max_domain, int(ed.max()))
            np.save(
                os.path.join(self.directory, f"{_shard_stem(shard)}.machines.npy"),
                em,
            )
            np.save(
                os.path.join(self.directory, f"{_shard_stem(shard)}.domains.npy"),
                ed,
            )
            shard_edges.append(int(em.size))
            os.remove(spill)

        res_spill = os.path.join(self.directory, "res.spill")
        res_pairs = np.fromfile(res_spill, dtype=np.int64).reshape(-1, 2)
        res_domains, res_offsets, res_ips = _pack_resolutions(
            res_pairs[:, 0], res_pairs[:, 1]
        )
        np.save(os.path.join(self.directory, "res.domains.npy"), res_domains)
        np.save(os.path.join(self.directory, "res.offsets.npy"), res_offsets)
        np.save(os.path.join(self.directory, "res.ips.npy"), res_ips)
        os.remove(res_spill)

        manifest = {
            "format_version": EDGESTORE_FORMAT_VERSION,
            "day": self.day,
            "n_shards": self.n_shards,
            "n_edges": int(sum(shard_edges)),
            "n_raw_rows": self.n_raw_rows,
            "n_batches": self.n_batches,
            "n_machines": int(n_machines if n_machines is not None else max_machine + 1),
            "n_domains": int(n_domains if n_domains is not None else max_domain + 1),
            "n_resolved_domains": int(res_domains.size),
            "shard_edges": shard_edges,
        }
        with atomic_file(os.path.join(self.directory, MANIFEST_NAME)) as staging:
            with open(staging, "w") as stream:
                json.dump(manifest, stream, sort_keys=True, indent=2)
        return EdgeStore.open(self.directory)

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeError("edge store already finalized; open it instead")


def _dedupe_pairs(
    left: np.ndarray, right: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted-unique (left, right) pairs — the `_dedupe_edges` ordering."""
    if not left.size:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    base = int(right.max()) + 1
    keys = left * base + right
    unique_keys = np.unique(keys)
    return unique_keys // base, unique_keys % base


def _pack_resolutions(
    domain_ids: np.ndarray, ips: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columnar CSR of per-domain sorted unique IPs (uint32)."""
    if not domain_ids.size:
        return (
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.uint32),
        )
    keys = (domain_ids.astype(np.uint64) << np.uint64(32)) | ips.astype(
        np.uint64
    )
    unique_keys = np.unique(keys)
    did = (unique_keys >> np.uint64(32)).astype(np.int64)
    ip = (unique_keys & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    res_domains, starts = np.unique(did, return_index=True)
    res_offsets = np.append(starts, did.size).astype(np.int64)
    return res_domains, res_offsets, ip


class EdgeStore:
    """Read side of a finalized store: mmap-backed columnar access."""

    def __init__(
        self,
        directory: str,
        *,
        day: int,
        n_shards: int,
        n_edges: int,
        n_raw_rows: int,
        n_batches: int,
        n_machines: int,
        n_domains: int,
        n_resolved_domains: int,
        shard_edge_counts: List[int],
    ) -> None:
        self.directory = directory
        self.day = day
        self.n_shards = n_shards
        self.n_edges = n_edges
        self.n_raw_rows = n_raw_rows
        self.n_batches = n_batches
        self.n_machines = n_machines
        self.n_domains = n_domains
        self.n_resolved_domains = n_resolved_domains
        self.shard_edge_counts = shard_edge_counts
        self._res_domains: Optional[np.ndarray] = None
        self._res_offsets: Optional[np.ndarray] = None
        self._res_ips: Optional[np.ndarray] = None

    @classmethod
    def open(cls, directory: str) -> "EdgeStore":
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"{directory}: no {MANIFEST_NAME} — the edge store was never "
                f"finalized or the directory is not an edge store"
            )
        with open(path) as stream:
            manifest = json.load(stream)
        if manifest["format_version"] != EDGESTORE_FORMAT_VERSION:
            raise FormatVersionError(
                manifest["format_version"],
                EDGESTORE_FORMAT_VERSION,
                what="edge store",
            )
        return cls(
            directory,
            day=int(manifest["day"]),
            n_shards=int(manifest["n_shards"]),
            n_edges=int(manifest["n_edges"]),
            n_raw_rows=int(manifest["n_raw_rows"]),
            n_batches=int(manifest["n_batches"]),
            n_machines=int(manifest["n_machines"]),
            n_domains=int(manifest["n_domains"]),
            n_resolved_domains=int(manifest["n_resolved_domains"]),
            shard_edge_counts=[int(count) for count in manifest["shard_edges"]],
        )

    def shard_edges(self, shard: int) -> Tuple[np.ndarray, np.ndarray]:
        """One shard's deduped (machine, domain) arrays, memory-mapped."""
        if not 0 <= shard < self.n_shards:
            raise IndexError(
                f"shard {shard} outside [0, {self.n_shards})"
            )
        em = np.load(
            os.path.join(self.directory, f"{_shard_stem(shard)}.machines.npy"),
            mmap_mode="r",
        )
        ed = np.load(
            os.path.join(self.directory, f"{_shard_stem(shard)}.domains.npy"),
            mmap_mode="r",
        )
        return em, ed

    def _resolution_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._res_domains is None:
            self._res_domains = np.load(
                os.path.join(self.directory, "res.domains.npy"), mmap_mode="r"
            )
            self._res_offsets = np.load(
                os.path.join(self.directory, "res.offsets.npy"), mmap_mode="r"
            )
            self._res_ips = np.load(
                os.path.join(self.directory, "res.ips.npy"), mmap_mode="r"
            )
        return self._res_domains, self._res_offsets, self._res_ips

    def resolved_ips(self, domain_id: int) -> np.ndarray:
        """IPs the domain resolved to this day (empty array if none seen)."""
        res_domains, res_offsets, res_ips = self._resolution_arrays()
        index = int(np.searchsorted(res_domains, domain_id))
        if index >= res_domains.size or res_domains[index] != domain_id:
            return np.empty(0, dtype=np.uint32)
        return np.asarray(
            res_ips[res_offsets[index] : res_offsets[index + 1]],
            dtype=np.uint32,
        )

    def resolutions_for(self, domain_ids: np.ndarray) -> Dict[int, np.ndarray]:
        """Resolution dict for the given ids — the in-memory trace shape."""
        out: Dict[int, np.ndarray] = {}
        for did in np.asarray(domain_ids):
            ips = self.resolved_ips(int(did))
            if ips.size:
                out[int(did)] = ips
        return out


class ShardedDayTrace:
    """A DayTrace-shaped facade over an :class:`EdgeStore`.

    Presents the accessor surface the health checks and pipeline need
    (``day``, ``n_edges``, unique id sets, resolutions) without ever
    materializing the full edge list; ``is_sharded`` is the dispatch flag
    the pipeline keys the out-of-core build on.
    """

    is_sharded = True

    def __init__(
        self, store: EdgeStore, machines: Interner, domains: Interner
    ) -> None:
        self.store = store
        self.machines = machines
        self.domains = domains
        self.day = store.day
        self.directory = store.directory
        self.n_shards = store.n_shards
        self._unique_machines: Optional[np.ndarray] = None
        self._unique_domains: Optional[np.ndarray] = None

    @classmethod
    def open(
        cls, directory: str, machines: Interner, domains: Interner
    ) -> "ShardedDayTrace":
        return cls(EdgeStore.open(directory), machines, domains)

    @classmethod
    def from_day_trace(
        cls,
        trace,
        directory: str,
        *,
        n_shards: int,
        batch_size: int = 65536,
    ) -> "ShardedDayTrace":
        """Shard an in-memory :class:`DayTrace` — batches re-flow through
        the writer exactly as a streamed file would."""
        writer = EdgeStoreWriter(directory, day=trace.day, n_shards=n_shards)
        total = trace.n_edges
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            writer.add_batch(
                trace.edge_machines[start:stop], trace.edge_domains[start:stop]
            )
        for did in sorted(trace.resolutions):
            ips = trace.resolutions[did]
            writer.add_resolutions(
                np.full(ips.size, did, dtype=np.int64), ips
            )
        writer.finalize(
            n_machines=len(trace.machines), n_domains=len(trace.domains)
        )
        return cls.open(directory, trace.machines, trace.domains)

    @property
    def n_edges(self) -> int:
        return self.store.n_edges

    def unique_machine_ids(self) -> np.ndarray:
        if self._unique_machines is None:
            chunks = []
            for shard in range(self.store.n_shards):
                em, _ = self.store.shard_edges(shard)
                chunks.append(np.unique(em))
            self._unique_machines = (
                np.unique(np.concatenate(chunks))
                if chunks
                else np.empty(0, dtype=np.int64)
            )
        return self._unique_machines

    def unique_domain_ids(self) -> np.ndarray:
        if self._unique_domains is None:
            chunks = []
            for shard in range(self.store.n_shards):
                _, ed = self.store.shard_edges(shard)
                chunks.append(np.unique(ed))
            self._unique_domains = (
                np.unique(np.concatenate(chunks))
                if chunks
                else np.empty(0, dtype=np.int64)
            )
        return self._unique_domains

    def resolved_ips(self, domain_id: int) -> np.ndarray:
        return self.store.resolved_ips(domain_id)

    def resolutions_for(self, domain_ids: np.ndarray) -> Dict[int, np.ndarray]:
        return self.store.resolutions_for(domain_ids)

    def __repr__(self) -> str:
        return (
            f"ShardedDayTrace(day={self.day}, edges={self.n_edges}, "
            f"shards={self.n_shards}, dir={self.directory!r})"
        )

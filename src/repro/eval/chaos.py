"""The ``segugio chaos`` harness: prove the fault-tolerance claims, don't hope.

Runs the same multi-day tracking campaign twice over one synthetic world:

* a **baseline** run — serial, fault-free, the reference bytes;
* a **chaos** run — parallel, under an injected :class:`FaultPlan`
  (:mod:`repro.runtime.faults`), supervised by the degradation ladder
  (:mod:`repro.runtime.supervisor`), checkpointed after every day, and
  optionally "crashed" after a chosen day and resumed from its checkpoint
  (which exercises the drift-monitor sidecar restore path).

Then it asserts the paper-level invariants the robustness layer promises:

1. the campaign **completes** — every scheduled day produced a report;
2. the tracker ledger is **bit-identical** to the baseline's;
3. per-day detection **thresholds** and **detections** are identical;
4. the final **checkpoint is intact** (checksum-valid and resumable to the
   same state — a torn write must never survive the atomic-rename layer);
5. every injected fault left **degradation provenance** in the run
   manifest, and the run's **health verdict reflects** it;
6. the day-over-day **drift monitor stayed armed** across faults and
   resume — chaos drift summaries match the baseline's.

Degradation may only ever cost wall-clock, never bytes; any divergence is
an invariant failure, the report says which one, and ``segugio chaos``
exits nonzero.  Everything is deterministic: the same plan, seed, and
scenario always fire the same faults and produce the same verdict.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import SegugioConfig
from repro.core.tracker import DayReport, DomainTracker
from repro.obs.monitor import STATUS_OK, AlertRule
from repro.obs.run import RunTelemetry
from repro.runtime.checkpoint import config_to_dict
from repro.runtime.faults import FaultPlan, plan_from_dict, use_fault_plan
from repro.runtime.supervisor import (
    SupervisorPolicy,
    policy_from_overrides,
    supervised_process_day,
    use_policy,
)
from repro.synth.scenario import Scenario
from repro.utils.errors import CheckpointError

#: canned plan used when ``segugio chaos`` is run without ``--plan`` (and
#: mirrored by ``examples/fault-plan.json``): one worker killed mid-fit,
#: one transient I/O error failing a whole day's fit, and one torn
#: checkpoint write.  Fast to run, touches all three recovery layers
#: (ladder, day retry, atomic checkpoint write).
DEFAULT_CHAOS_PLAN: Dict[str, object] = {
    "seed": 0,
    "policy": {"base_delay": 0.01, "max_retries": 1},
    "faults": [
        {"kind": "worker_kill", "site": "forest_fit", "task": 0},
        {"kind": "io_error", "site": "pipeline_fit", "count": 1},
        {"kind": "corrupt_intermediate", "site": "checkpoint_save", "count": 1},
    ],
}

CHECKPOINT_FILENAME = "chaos.ckpt"


@dataclass(frozen=True)
class Invariant:
    """One verified chaos invariant: what was promised, and whether it held."""

    name: str
    passed: bool
    detail: str


@dataclass
class ChaosReport:
    """The chaos run's verdict: invariants, fired faults, degradations."""

    n_days: int
    invariants: List[Invariant] = field(default_factory=list)
    fired: List[Dict[str, object]] = field(default_factory=list)
    events: List[Dict[str, object]] = field(default_factory=list)
    manifest_path: Optional[str] = None

    @property
    def passed(self) -> bool:
        return all(invariant.passed for invariant in self.invariants)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            kind = str(event.get("kind", "?"))
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"segugio chaos — {self.n_days} day(s), "
            f"{len(self.fired)} fault(s) fired, "
            f"{len(self.events)} degradation event(s): {verdict}"
        ]
        if self.fired:
            lines.append("faults fired:")
            for entry in self.fired:
                site = entry.get("site", "?")
                task = entry.get("task")
                where = f"{site}[{task}]" if task is not None else str(site)
                lines.append(f"  {entry.get('kind', '?')} at {where}")
        counts = self.event_counts()
        if counts:
            lines.append("degradation events:")
            for kind in sorted(counts):
                lines.append(f"  {kind}: {counts[kind]}")
        lines.append("invariants:")
        for invariant in self.invariants:
            mark = "[+]" if invariant.passed else "[x]"
            lines.append(f"  {mark} {invariant.name}: {invariant.detail}")
        if self.manifest_path:
            lines.append(f"run manifest: {self.manifest_path}")
        return "\n".join(lines)


def _day_fingerprint(report: DayReport) -> Dict[str, object]:
    """The per-day outputs the bit-identity invariants compare."""
    return {
        "day": int(report.day),
        "threshold": float(report.threshold),
        "n_scored": int(report.n_scored),
        "new": sorted(entry.name for entry in report.new_detections),
        "repeat": sorted(report.repeat_detections),
    }


def _drift_equal(
    left: Optional[Dict[str, object]], right: Optional[Dict[str, object]]
) -> bool:
    """Exact equality for drift-monitor references (numpy-array aware)."""
    if left is None or right is None:
        return left is right
    if set(left) != set(right):
        return False
    for key in left:
        a, b = left[key], right[key]
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            if not (
                isinstance(a, np.ndarray)
                and isinstance(b, np.ndarray)
                and a.shape == b.shape
                and np.array_equal(a, b)
            ):
                return False
        elif a != b:
            return False
    return True


def run_chaos(
    plan: Optional[FaultPlan] = None,
    *,
    out_dir: str,
    scale: str = "small",
    seed: int = 7,
    isp: str = "isp1",
    days: int = 3,
    jobs: int = 2,
    estimators: int = 24,
    fp_target: float = 0.01,
    kill_day_offset: Optional[int] = None,
    policy: Optional[SupervisorPolicy] = None,
    alert_rules: Optional[Sequence[AlertRule]] = None,
    profile: bool = False,
) -> ChaosReport:
    """Run the chaos scenario and verify every invariant; never raises on
    a mere invariant failure — the report carries the verdict.

    ``kill_day_offset`` simulates a coordinator crash *after* that day's
    checkpoint: the tracker object is discarded and resumed from disk,
    which must restore both the ledger and the drift-monitor sidecar.
    ``estimators`` should be >= 17 so the parallel predict path has more
    than one tree chunk and ``forest_predict`` fault sites can fire.
    ``profile`` turns on resource accounting for the chaos run: the
    manifest gains its additive ``resources`` key and the bit-identity
    invariants then double as proof that profiling perturbs nothing.
    """
    if plan is None:
        plan = plan_from_dict(DEFAULT_CHAOS_PLAN, source="<default chaos plan>")
    base = SupervisorPolicy(base_delay=0.01)
    if policy is None:
        policy = policy_from_overrides(plan.policy, base=base)

    scenario = Scenario.small(seed=seed) if scale == "small" else Scenario.benchmark(seed=seed)
    contexts = [scenario.context(isp, scenario.eval_day(offset)) for offset in range(days)]

    # --- baseline: serial, fault-free ---------------------------------- #
    baseline = DomainTracker(
        config=SegugioConfig(n_estimators=estimators, n_jobs=1),
        fp_target=fp_target,
        alert_rules=alert_rules,
    )
    baseline_days = [_day_fingerprint(baseline.process_day(ctx)) for ctx in contexts]
    baseline_drift = baseline.drift_reference()

    # --- chaos: parallel, faulted, checkpointed, optionally resumed ---- #
    os.makedirs(out_dir, exist_ok=True)
    checkpoint_path = os.path.join(out_dir, CHECKPOINT_FILENAME)
    config = SegugioConfig(n_estimators=estimators, n_jobs=jobs)
    telemetry = RunTelemetry(
        command="chaos", config=config_to_dict(config), profile=profile
    )
    tracker = DomainTracker(
        config=config,
        fp_target=fp_target,
        telemetry=telemetry,
        alert_rules=alert_rules,
    )
    chaos_days: List[Dict[str, object]] = []
    resume_error: Optional[str] = None
    with use_fault_plan(plan), use_policy(policy):
        for offset, context in enumerate(contexts):
            with telemetry.activate():
                report = supervised_process_day(tracker, context, policy=policy)
                chaos_days.append(_day_fingerprint(report))
                tracker.save_checkpoint(checkpoint_path)
            if kill_day_offset is not None and offset == kill_day_offset:
                # simulated coordinator crash: forget the live tracker and
                # come back from the bytes on disk (ledger + drift sidecar)
                try:
                    tracker = DomainTracker.resume(checkpoint_path)
                except CheckpointError as error:
                    resume_error = str(error)
                    break
                tracker.telemetry = telemetry
    manifest_path, _ = telemetry.write(out_dir)
    manifest = telemetry.build_manifest()

    # --- invariants ---------------------------------------------------- #
    report_out = ChaosReport(
        n_days=days,
        fired=list(plan.fired),
        events=telemetry.events.to_list(),
        manifest_path=manifest_path,
    )
    add = report_out.invariants.append

    completed = resume_error is None and len(chaos_days) == len(contexts)
    add(
        Invariant(
            "completes",
            completed,
            f"{len(chaos_days)}/{len(contexts)} day(s) processed"
            + (f"; resume failed: {resume_error}" if resume_error else ""),
        )
    )

    ledger_same = tracker.state_dict() == baseline.state_dict()
    add(
        Invariant(
            "ledger_bit_identical",
            completed and ledger_same,
            "chaos ledger == serial fault-free ledger"
            if ledger_same
            else "chaos tracker state diverged from the baseline",
        )
    )

    diverged = [
        str(b["day"]) for b, c in zip(baseline_days, chaos_days) if b != c
    ]
    add(
        Invariant(
            "outputs_bit_identical",
            completed and not diverged,
            "per-day thresholds and detections identical"
            if not diverged
            else f"day(s) {', '.join(diverged)} diverged from the baseline",
        )
    )

    try:
        restored = DomainTracker.resume(checkpoint_path)
        ckpt_ok = restored.state_dict() == tracker.state_dict()
        ckpt_detail = (
            "final checkpoint checksum-valid and resumes to the same state"
            if ckpt_ok
            else "resumed checkpoint state differs from the live tracker"
        )
    except (CheckpointError, OSError) as error:
        ckpt_ok, ckpt_detail = False, f"checkpoint unusable: {error}"
    add(Invariant("checkpoint_intact", ckpt_ok, ckpt_detail))

    fired_ok = plan.n_fired > 0 or not plan.specs
    add(
        Invariant(
            "faults_fired",
            fired_ok,
            f"{plan.n_fired} fault(s) fired ({', '.join(plan.fired_kinds()) or 'none'})"
            if fired_ok
            else "plan has fault specs but none fired — nothing was exercised",
        )
    )

    if plan.n_fired:
        recorded = bool(manifest.get("runtime_events"))
        add(
            Invariant(
                "degradations_recorded",
                recorded,
                f"{len(report_out.events)} degradation event(s) in the manifest"
                if recorded
                else "faults fired but the manifest records no degradation events",
            )
        )
        health = manifest.get("health")
        status = health.get("status") if isinstance(health, dict) else None
        add(
            Invariant(
                "health_reflects_degradation",
                status is not None and status != STATUS_OK,
                f"run health is {status!r}"
                + ("" if status != STATUS_OK else " despite fired faults"),
            )
        )

    drift_ok = completed and _drift_equal(tracker.drift_reference(), baseline_drift)
    add(
        Invariant(
            "drift_monitor_continuity",
            drift_ok,
            "drift reference identical to the baseline's after faults"
            + (" and resume" if kill_day_offset is not None else "")
            if drift_ok
            else "drift-monitor reference diverged (or was lost) under chaos",
        )
    )

    if profile:
        add(_worker_span_invariant(manifest, completed))
    return report_out


def _count_worker_spans(spans: object) -> int:
    total = 0
    for span in spans if isinstance(spans, list) else []:
        if isinstance(span, dict):
            if span.get("name") == "segugio_worker_task":
                total += 1
            total += _count_worker_spans(span.get("children"))
    return total


def _worker_span_invariant(
    manifest: Dict[str, object], completed: bool
) -> Invariant:
    """Worker spans survive faults or are cleanly quarantined.

    A profiled chaos run must account for every supervised pool task: the
    attempt that completed each task contributes exactly one merged
    ``segugio_worker_task`` span (so merged span count == the pool's task
    count, per label), nothing goes missing, and any quarantined sidecar
    record (a retried attempt's spill, e.g. after ``worker_kill`` broke
    the pool mid-round) is surfaced in run health as the
    ``worker_spans_quarantined`` warning — degraded observability is
    reported, never silent (DESIGN.md §15).
    """
    resources = manifest.get("resources")
    workers = resources.get("workers") if isinstance(resources, dict) else None
    pool = resources.get("pool") if isinstance(resources, dict) else None
    workers = workers if isinstance(workers, dict) else {}
    pool = pool if isinstance(pool, dict) else {}
    n_spans = _count_worker_spans(manifest.get("spans"))
    n_merged = sum(int(s.get("n_merged", 0) or 0) for s in workers.values())
    n_quarantined = sum(
        int(s.get("n_quarantined", 0) or 0) for s in workers.values()
    )
    n_missing = sum(int(s.get("n_missing", 0) or 0) for s in workers.values())
    per_label_ok = all(
        int(workers.get(label, {}).get("n_merged", -1) or -1)
        == int(stats.get("n_tasks", 0) or 0)
        for label, stats in pool.items()
        if isinstance(stats, dict)
    )
    health = manifest.get("health")
    reasons = health.get("reasons") if isinstance(health, dict) else None
    loss_flagged = any(
        isinstance(reason, dict)
        and reason.get("rule") == "worker_spans_quarantined"
        for reason in (reasons if isinstance(reasons, list) else [])
    )
    ok = (
        completed
        and n_merged > 0
        and n_spans == n_merged
        and n_missing == 0
        and per_label_ok
        and (n_quarantined == 0 or loss_flagged)
    )
    detail = (
        f"{n_spans} worker span(s) merged, {n_quarantined} quarantined, "
        f"{n_missing} missing"
        + (
            "; quarantine surfaced in run health"
            if n_quarantined and loss_flagged
            else ""
        )
    )
    if not ok:
        if n_spans != n_merged or not per_label_ok:
            detail += "; merged span count disagrees with pool task accounting"
        if n_missing:
            detail += "; completed task(s) lost their sidecar record"
        if n_quarantined and not loss_flagged:
            detail += "; quarantine not reflected in run health"
    return Invariant("worker_spans_accounted", ok, detail)

"""Evaluation harness: the paper's experimental protocols and artifacts.

* :mod:`repro.eval.harness` — reusable protocol pieces: leak-free test-set
  selection, the train/hide/classify/score loop, and the
  :class:`repro.eval.harness.RocExperiment` result container.
* :mod:`repro.eval.experiments` — one driver per paper table/figure
  (Table I-IV, Fig. 3, 6, 7, 8, 10, 11, 12, the pruning stats, the
  cross-blacklist test, and the LBP/co-occurrence pilot comparisons).
* :mod:`repro.eval.crossval` — same-day stratified cross-validation.
* :mod:`repro.eval.sweeps` — sensitivity sweeps over the fixed design
  parameters (train/test gap, activity lookback n, pDNS window W).
* :mod:`repro.eval.reporting` — ASCII rendering of tables, ROC series, and
  histograms; :mod:`repro.eval.figures` — ASCII ROC plots and sparklines.
"""

from repro.eval.crossval import CrossValidationResult, cross_validate_day
from repro.eval.harness import RocExperiment, TestSplit, cross_day_experiment, select_test_split

__all__ = [
    "CrossValidationResult",
    "RocExperiment",
    "TestSplit",
    "cross_day_experiment",
    "cross_validate_day",
    "select_test_split",
]

"""Sensitivity sweeps over Segugio's fixed design parameters.

The paper fixes the activity lookback at n = 14 days, the pDNS window at
W = 5 months, and evaluates train/test gaps of 13-24 days without sweeping
them.  These drivers vary one knob at a time over the same world and
report the accuracy trend — the ablation evidence DESIGN.md §5 calls for.

Each sweep returns ``[(value, RocExperiment), ...]`` ordered by value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.pipeline import SegugioConfig
from repro.eval.harness import RocExperiment, cross_day_experiment
from repro.synth.scenario import Scenario

SweepResult = List[Tuple[float, RocExperiment]]


def _variant(base: SegugioConfig, **overrides) -> SegugioConfig:
    from dataclasses import replace

    return replace(base, **overrides)


def sweep_train_test_gap(
    scenario: Scenario,
    isp: str = "isp1",
    gaps: Sequence[int] = (3, 8, 13, 20),
    config: Optional[SegugioConfig] = None,
    seed: int = 0,
) -> SweepResult:
    """Accuracy as the train/test separation grows (model staleness).

    The paper's experiments use gaps up to 24 days and report sustained
    accuracy; the sweep shows where (if anywhere) the model ages out.
    """
    base = config if config is not None else SegugioConfig()
    results: SweepResult = []
    train_ctx = scenario.context(isp, scenario.eval_day(0))
    for gap in gaps:
        experiment = cross_day_experiment(
            train_ctx,
            scenario.context(isp, scenario.eval_day(int(gap))),
            name=f"gap={gap}d",
            config=base,
            seed=seed,
        )
        results.append((float(gap), experiment))
    return results


def sweep_activity_window(
    scenario: Scenario,
    isp: str = "isp1",
    gap: int = 13,
    windows: Sequence[int] = (3, 7, 14),
    config: Optional[SegugioConfig] = None,
    seed: int = 0,
) -> SweepResult:
    """Accuracy vs. the F2 lookback n (paper: n = 14)."""
    base = config if config is not None else SegugioConfig()
    train_ctx = scenario.context(isp, scenario.eval_day(0))
    test_ctx = scenario.context(isp, scenario.eval_day(gap))
    results: SweepResult = []
    for window in windows:
        experiment = cross_day_experiment(
            train_ctx,
            test_ctx,
            name=f"n={window}d",
            config=_variant(base, activity_window=int(window)),
            seed=seed,
        )
        results.append((float(window), experiment))
    return results


def sweep_pdns_window(
    scenario: Scenario,
    isp: str = "isp1",
    gap: int = 13,
    windows: Sequence[int] = (14, 60, 150),
    config: Optional[SegugioConfig] = None,
    seed: int = 0,
) -> SweepResult:
    """Accuracy vs. the F3 pDNS history length W (paper: ~5 months)."""
    base = config if config is not None else SegugioConfig()
    train_ctx = scenario.context(isp, scenario.eval_day(0))
    test_ctx = scenario.context(isp, scenario.eval_day(gap))
    results: SweepResult = []
    for window in windows:
        experiment = cross_day_experiment(
            train_ctx,
            test_ctx,
            name=f"W={window}d",
            config=_variant(base, pdns_window_days=int(window)),
            seed=seed,
        )
        results.append((float(window), experiment))
    return results


def sweep_summary(results: SweepResult, label: str) -> str:
    """One-line-per-point report of a sweep."""
    lines = [f"sweep: {label}"]
    for value, experiment in results:
        lines.append(
            f"  {label}={value:g}: AUC={experiment.roc.auc():.4f} "
            f"TP@0.1%FP={experiment.roc.tpr_at(0.001):.3f} "
            f"TP@1%FP={experiment.roc.tpr_at(0.01):.3f}"
        )
    return "\n".join(lines)

"""Same-day cross-validation of the behavior-based classifier.

The paper's headline experiments are cross-day, but §VII notes the
evaluation also included cross-validation.  This driver runs stratified
k-fold validation *within* one observation day with the same ground-truth
hygiene as everything else: the test fold's labels are hidden before
machine labeling, pruning, and feature measurement, the model trains on
the remaining known domains, and the fold's domains are scored as
unknowns.  Folds are pooled on benign-calibrated ranks (each fold trains
its own model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.graph import BehaviorGraph
from repro.core.labeling import BENIGN, MALWARE, label_domains
from repro.core.pipeline import ObservationContext, Segugio, SegugioConfig
from repro.eval.harness import TestSplit, score_split
from repro.ml.folds import stratified_kfold
from repro.ml.metrics import RocCurve, roc_curve


@dataclass
class CrossValidationResult:
    """Pooled k-fold scores for one day."""

    roc: RocCurve
    y_true: np.ndarray
    scores: np.ndarray
    n_folds: int
    fold_aucs: List[float]

    def summary(self) -> str:
        return (
            f"{self.n_folds}-fold CV: AUC={self.roc.auc():.4f} "
            f"TP@0.1%FP={self.roc.tpr_at(0.001):.3f} "
            f"(per-fold AUC {min(self.fold_aucs):.3f}-{max(self.fold_aucs):.3f})"
        )


def cross_validate_day(
    context: ObservationContext,
    n_folds: int = 3,
    config: Optional[SegugioConfig] = None,
    seed: int = 0,
    min_degree: int = 2,
) -> CrossValidationResult:
    """Stratified k-fold over the day's known domains."""
    rng = np.random.default_rng(seed)
    graph = BehaviorGraph.from_trace(context.trace)
    domain_labels = label_domains(
        graph, context.blacklist, context.whitelist, as_of_day=context.day
    )
    present = graph.domain_ids()
    degrees = graph.domain_degrees()
    eligible = present[degrees[present] >= min_degree]
    known = eligible[
        (domain_labels[eligible] == MALWARE)
        | (domain_labels[eligible] == BENIGN)
    ]
    if known.size < n_folds * 2:
        raise ValueError("not enough known domains for cross-validation")
    y = (domain_labels[known] == MALWARE).astype(np.int64)
    if y.sum() < n_folds:
        raise ValueError("too few malware domains for the requested folds")

    all_y: List[np.ndarray] = []
    calibrated: List[np.ndarray] = []
    fold_aucs: List[float] = []
    for train_idx, test_idx in stratified_kfold(y, n_folds, rng):
        del train_idx  # training uses everything *not hidden*, below
        fold_ids = known[test_idx]
        split = TestSplit(
            malware_ids=fold_ids[y[test_idx] == 1],
            benign_ids=fold_ids[y[test_idx] == 0],
        )
        model = Segugio(config)
        model.fit(context, exclude_domains=split.all_ids)
        report = model.classify(context, hide_domains=split.all_ids)
        y_fold, s_fold, _, _ = score_split(report, split)
        fold_aucs.append(roc_curve(y_fold, s_fold).auc())
        benign_sorted = np.sort(s_fold[y_fold == 0])
        ranks = np.searchsorted(benign_sorted, s_fold, side="left")
        calibrated.append(ranks / max(benign_sorted.size, 1) - 1.0)
        all_y.append(y_fold)

    y_all = np.concatenate(all_y)
    s_all = np.concatenate(calibrated)
    return CrossValidationResult(
        roc=roc_curve(y_all, s_all),
        y_true=y_all,
        scores=s_all,
        n_folds=n_folds,
        fold_aucs=fold_aucs,
    )
